#!/bin/sh
# Rebuilds everything, runs the full test suite and every experiment bench,
# and records the transcripts EXPERIMENTS.md refers to.  The concurrent
# analysis service is additionally stress-tested under ThreadSanitizer.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Data-race check: parallel exploration and the service concurrency tests
# under TSan.  test_parallel_statespace is the heaviest workload: many
# exploration lanes over one shared arena + semantics, plus concurrent
# service jobs each deriving with multiple lanes.
cmake -B build-tsan -G Ninja -DCHOREO_SANITIZE=thread
cmake --build build-tsan --target test_parallel_statespace test_service \
  test_metrics test_util test_quotient
./build-tsan/tests/test_parallel_statespace 2>&1 | tee tsan_output.txt
./build-tsan/tests/test_service 2>&1 | tee -a tsan_output.txt
./build-tsan/tests/test_metrics 2>&1 | tee -a tsan_output.txt
./build-tsan/tests/test_util \
  --gtest_filter='ThreadPool.*:StripedMap.*:SegmentedVector.*' \
  2>&1 | tee -a tsan_output.txt
# Quotient-direct derivation shares one canonicalizer memo across the
# expansion lanes; the lane-count determinism checks run under TSan too.
./build-tsan/tests/test_quotient 2>&1 | tee -a tsan_output.txt

# Memory-safety check: one quotient-direct derivation (the canonical
# rewrite path: spine flattening, sibling sorting, balanced rebuild and
# the memo) end to end under ASan+UBSan.
cmake -B build-asan -G Ninja -DCHOREO_SANITIZE=address,undefined
cmake --build build-asan --target pepa_workbench test_quotient
./build-asan/src/tools/pepa_workbench models/file.pepa --quotient --aggregate \
  --states 2>&1 | tee asan_output.txt
./build-asan/tests/test_quotient 2>&1 | tee -a asan_output.txt

# Machine-readable bench artefacts (BENCH_statespace.json, BENCH_service.json).
scripts/bench_report.sh
