#!/bin/sh
# Rebuilds everything, runs the full test suite and every experiment bench,
# and records the transcripts EXPERIMENTS.md refers to.  The concurrent
# analysis service is additionally stress-tested under ThreadSanitizer.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Data-race check: parallel exploration and the service concurrency tests
# under TSan.  test_parallel_statespace is the heaviest workload: many
# exploration lanes over one shared arena + semantics, plus concurrent
# service jobs each deriving with multiple lanes.
cmake -B build-tsan -G Ninja -DCHOREO_SANITIZE=thread
cmake --build build-tsan --target test_parallel_statespace test_service \
  test_metrics test_util
./build-tsan/tests/test_parallel_statespace 2>&1 | tee tsan_output.txt
./build-tsan/tests/test_service 2>&1 | tee -a tsan_output.txt
./build-tsan/tests/test_metrics 2>&1 | tee -a tsan_output.txt
./build-tsan/tests/test_util \
  --gtest_filter='ThreadPool.*:StripedMap.*:SegmentedVector.*' \
  2>&1 | tee -a tsan_output.txt

# Machine-readable bench artefacts (BENCH_statespace.json, BENCH_service.json).
scripts/bench_report.sh
