#!/bin/sh
# Rebuilds everything, runs the full test suite and every experiment bench,
# and records the transcripts EXPERIMENTS.md refers to.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
