#!/bin/sh
# Regenerates the committed machine-readable benchmark artefacts:
#
#   BENCH_statespace.json  -- state-space exploration (model, states,
#                             seconds, states/sec, lane-count sweep, the
#                             lanes x size sweep over the pepa::families
#                             parametric models up to 10^6+ states, and the
#                             quotient-direct lane: full chains of 10^6 to
#                             4e10 states derived as their tiny
#                             strong-equivalence quotients, with a
#                             memory_reduction = full/quotient column)
#   BENCH_service.json     -- service scheduler throughput (workers,
#                             cold/warm cache, jobs/sec, p50/p99 latency)
#   BENCH_measures.json    -- per-action measure lookup cost on the
#                             CSR-indexed transition system vs. a flat scan
#   BENCH_fluid.json       -- fluid (mean-field ODE) backend scaling: solve
#                             cost flat in the client count up to 10^6, and
#                             agreement with the exact population chain
#   BENCH_sweep.json       -- design-space sweep amortization: one
#                             derive-once sweep vs K independent jobs on the
#                             Tomcat model, plus the scaling of the advantage
#                             with the state-space size
#
# The bench binaries emit the records themselves when CHOREO_BENCH_JSON
# names a file (an env var because google-benchmark rejects unknown argv);
# --benchmark_filter skips the google-benchmark timing loops so only the
# report sections run.  See docs/performance.md for how to read the numbers.
#
# An existing build/ directory is reused with whatever generator configured
# it; a fresh checkout gets the CMake default.
set -e
cd "$(dirname "$0")/.."
cmake -B build
cmake --build build --target bench_statespace bench_service_throughput \
  bench_measures bench_fluid bench_sweep

CHOREO_BENCH_JSON="$PWD/BENCH_statespace.json" \
  ./build/bench/bench_statespace "--benchmark_filter=^$"
CHOREO_BENCH_JSON="$PWD/BENCH_service.json" \
  ./build/bench/bench_service_throughput "--benchmark_filter=^$"
CHOREO_BENCH_JSON="$PWD/BENCH_measures.json" \
  ./build/bench/bench_measures "--benchmark_filter=^$"
CHOREO_BENCH_JSON="$PWD/BENCH_fluid.json" \
  ./build/bench/bench_fluid "--benchmark_filter=^$"
CHOREO_BENCH_JSON="$PWD/BENCH_sweep.json" \
  ./build/bench/bench_sweep "--benchmark_filter=^$"

echo "wrote BENCH_statespace.json, BENCH_service.json, BENCH_measures.json," \
  "BENCH_fluid.json and BENCH_sweep.json"
