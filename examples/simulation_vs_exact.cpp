// Exact numerical solution vs stochastic simulation (the trade-off the
// paper's Section 1.1 discusses: exact answers and state-space explosion on
// one side, confidence intervals and scalability on the other).
//
// Analyses the PDA handover net both ways and prints the agreement.
//
// Build & run:  ./examples/simulation_vs_exact
#include <iostream>
#include <memory>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "sim/replicate.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace choreo;

  const auto build_net = [] {
    uml::Model model = chor::pda_handover_model();
    return chor::extract_activity_graph(model.activity_graphs()[0]).net;
  };

  // Exact: derive the marking graph and solve the CTMC.
  pepanet::PepaNet net = build_net();
  pepanet::NetSemantics semantics(net);
  const auto space = pepanet::NetStateSpace::derive(semantics);
  const auto solved = ctmc::steady_state(space.generator());

  // Simulated: 16 independent replications with 95% confidence intervals.
  sim::ReplicateOptions options;
  options.replications = 16;
  options.run.warmup_time = 200.0;
  options.run.horizon = 20000.0;
  options.seed = 2024;
  const auto simulated = sim::replicate(
      [&] { return std::make_unique<sim::NetSystem>(build_net()); }, options);

  util::TextTable table({"activity", "exact throughput", "simulated (95% CI)",
                         "CI covers exact"});
  for (const char* name : {"download_file_1", "handover_1",
                           "continue_download_1", "abort_download_1"}) {
    const auto action = *net.arena().find_action(name);
    const double exact =
        pepanet::action_throughput(space, solved.distribution, action);
    const auto interval = simulated.throughput(action);
    table.add_row({name, util::format_double(exact),
                   util::format_double(interval.low()) + " .. " +
                       util::format_double(interval.high()),
                   interval.contains(exact) ? "yes" : "NO"});
  }
  std::cout << "exact solution: " << space.marking_count() << " markings, "
            << ctmc::method_name(solved.method_used) << "\n"
            << "simulation: " << options.replications << " replications x "
            << options.run.horizon << " time units\n\n"
            << table;
  return 0;
}
