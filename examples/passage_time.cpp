// Passage-time analysis of the PDA handover scenario (the ipc-style
// analysis named in the paper's tool ecosystem, Section 6).
//
// "How long from starting a download at transmitter 1 until the download
// is dropped for the first time?" -- the first-passage time to the first
// *abort event*.  Passage to an event is reduced to passage to a state by
// redirecting every abort-labelled transition of the marking graph to a
// fresh observer state.
//
// Build & run:  ./examples/passage_time
#include <iostream>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/passage.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace choreo;

struct FirstDropChain {
  ctmc::Generator generator;
  std::size_t observer;  // the state entered on the first abort event
};

/// The marking graph with every abort_download transition redirected to a
/// fresh absorbing observer state.
FirstDropChain first_drop_chain(const chor::PdaParams& params) {
  uml::Model model = chor::pda_handover_model(params);
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  pepanet::NetSemantics semantics(extraction.net);
  const auto space = pepanet::NetStateSpace::derive(semantics);

  const std::size_t observer = space.marking_count();
  std::vector<ctmc::RatedTransition> transitions;
  for (const auto& t : space.transitions()) {
    const std::string& action = extraction.net.arena().action_name(t.action);
    const bool is_abort = action.find("abort_download") != std::string::npos;
    transitions.push_back({t.source, is_abort ? observer : t.target, t.rate});
  }
  return {ctmc::Generator::build(observer + 1, transitions), observer};
}

}  // namespace

int main() {
  // Mean time to the first dropped download, per handover rate: slower
  // handovers postpone the risky event.
  util::TextTable means({"handover rate", "mean time to first drop (s)"});
  for (double rate : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    chor::PdaParams params;
    params.handover_rate = rate;
    const FirstDropChain chain = first_drop_chain(params);
    means.add_row_values(
        util::format_double(rate),
        {ctmc::mean_passage_time(chain.generator, 0, {chain.observer})});
  }
  std::cout << means << '\n';

  // The passage-time CDF at the default rates (what ipc would plot as a
  // passage-time distribution).
  const FirstDropChain chain = first_drop_chain({});
  std::vector<double> initial(chain.generator.state_count(), 0.0);
  initial[0] = 1.0;
  const std::vector<double> times{1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0};
  const auto cdf =
      ctmc::passage_cdf(chain.generator, initial, {chain.observer}, times);
  const auto pdf =
      ctmc::passage_pdf(chain.generator, initial, {chain.observer}, times);
  util::TextTable table({"t (s)", "P[first drop <= t]", "density f(t)"});
  for (std::size_t i = 0; i < times.size(); ++i) {
    table.add_row_values(util::format_double(times[i]), {cdf[i], pdf[i]});
  }
  std::cout << table;
  return 0;
}
