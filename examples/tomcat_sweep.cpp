// The paper's servlet-caching study (Figures 8-9) as a design-space
// sweep: how fast must the direct servlet lookup be for the optimisation
// to pay off?
//
// The Tomcat model with the resident-servlet optimisation replaces the
// locate/translate/compile chain by a single lookup at rate `locs`
// (models/tomcat_cached.pepa).  Sweeping `locs` from "as slow as the full
// chain" to "effectively free" traces the response-throughput curve the
// designer reads the break-even point from — and because every point
// shares the rate-stripped structure, the state space is derived exactly
// once for the whole curve.
//
// Build & run:  ./examples/tomcat_sweep [MODEL.pepa]
#include <iostream>
#include <string>

#include "pepa/parser.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace choreo;
  const std::string path =
      argc > 1 ? argv[1] : "models/tomcat_cached.pepa";
  try {
    pepa::Model model = pepa::parse_model_file(path);

    // The servlet-lookup rate from 2/s (slower than the execute stage)
    // to 200/s (faster than every other stage), geometrically spaced the
    // way the paper's figures sample their axes.
    sweep::SweepSpec spec;
    spec.axes.push_back(sweep::Axis::logspace("locs", 2.0, 200.0, 13));
    const sweep::SweepTable table = sweep::sweep(model, spec);

    std::cout << "swept " << table.rows.size() << " lookup rates against "
              << table.state_count << " shared states ("
              << table.derivations << " derivation)\n\n";

    // The response throughput is the curve of interest: the rate at which
    // clients get pages back (paper Figure 9's quantity).
    std::size_t response = 0;
    for (std::size_t m = 0; m < table.measures.size(); ++m) {
      if (table.measures[m] == "throughput:response") response = m;
    }
    util::TextTable curve({"locs (1/s)", "response throughput (1/s)",
                           "% of plateau"});
    const double plateau = table.rows.back().measures[response];
    for (const sweep::SweepRow& row : table.rows) {
      curve.add_row({util::format_double(row.values[0]),
                     util::format_double(row.measures[response]),
                     util::format_double(row.measures[response] / plateau *
                                         100.0)});
    }
    std::cout << curve
              << "\nthe curve saturates once lookup outpaces execution: "
                 "past locs ~ 40/s the paper's optimisation has already "
                 "bought nearly all of its throughput\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "tomcat_sweep: " << error.what() << '\n';
    return 1;
  }
}
