// The paper's Tomcat JSP study (Figures 8-9): a client generating HTTP
// requests against a server that locates, translates, compiles and executes
// JSP pages -- and the "simple but very profitable" optimisation in which
// the compiled servlet stays resident and subsequent requests bypass the
// translate and compile stages.
//
// Prints the steady-state probabilities reflected onto both state diagrams
// and quantifies the optimisation "from the user's point of view in terms
// of the reduction in the delay spent waiting for the response".
//
// Build & run:  ./examples/tomcat_server
#include <iostream>

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Outcome {
  double response_throughput = 0.0;
  double waiting_probability = 0.0;
  choreo::uml::Model model;
};

Outcome analyse_variant(bool cached, std::size_t clients) {
  using namespace choreo;
  chor::TomcatParams params;
  params.clients = clients;
  Outcome outcome{0.0, 0.0, chor::tomcat_model(cached, params)};
  const auto report = chor::analyse(outcome.model);
  const auto& machines = report.state_machines.at(0);
  for (const auto& [action, value] : machines.throughputs) {
    if (action == "response") outcome.response_throughput = value;
  }
  // P[client 1 waits] straight from the reflected tag.
  const uml::StateMachine& client = outcome.model.state_machines()[0];
  outcome.waiting_probability =
      client.states()[*client.find_state("WaitForResponse")].tags.get_double(
          "probability", 0.0);
  return outcome;
}

}  // namespace

int main() {
  using namespace choreo;

  // Single client, both server variants: the paper's comparison.
  const Outcome uncached = analyse_variant(false, 1);
  const Outcome cached = analyse_variant(true, 1);

  std::cout << "== server state probabilities (1 client) ==\n";
  for (const Outcome* outcome : {&uncached, &cached}) {
    const uml::StateMachine& server = outcome->model.state_machines().back();
    std::cout << (outcome == &uncached ? "-- full JSP lifecycle --\n"
                                       : "-- direct servlet lookup --\n");
    util::TextTable table({"state", "probability"});
    for (const auto& state : server.states()) {
      table.add_row_values(state.name, {state.tags.get_double("probability", 0)});
    }
    std::cout << table << '\n';
  }

  util::TextTable compare({"measure", "uncached", "cached", "improvement"});
  compare.add_row({"response throughput (1/s)",
                   util::format_double(uncached.response_throughput),
                   util::format_double(cached.response_throughput),
                   util::format_double(cached.response_throughput /
                                       uncached.response_throughput) + "x"});
  compare.add_row({"P[client waiting]",
                   util::format_double(uncached.waiting_probability),
                   util::format_double(cached.waiting_probability),
                   util::format_double(uncached.waiting_probability /
                                       cached.waiting_probability) + "x"});
  // Mean response delay per request (waiting probability over throughput,
  // by Little's law applied to the waiting "station").
  const double delay_uncached =
      uncached.waiting_probability / uncached.response_throughput;
  const double delay_cached =
      cached.waiting_probability / cached.response_throughput;
  compare.add_row({"mean waiting delay (s)", util::format_double(delay_uncached),
                   util::format_double(delay_cached),
                   util::format_double(delay_uncached / delay_cached) + "x"});
  std::cout << "== the locate-servlet optimisation ==\n" << compare << '\n';

  // More clients saturate the server and widen the gap.
  util::TextTable scaling({"clients", "uncached resp/s", "cached resp/s",
                           "cached/uncached"});
  for (std::size_t clients : {1u, 2u, 3u, 4u}) {
    const Outcome u = analyse_variant(false, clients);
    const Outcome c = analyse_variant(true, clients);
    scaling.add_row_values(
        std::to_string(clients),
        {u.response_throughput, c.response_throughput,
         c.response_throughput / u.response_throughput});
  }
  std::cout << "== scaling with client population ==\n" << scaling;
  return 0;
}
