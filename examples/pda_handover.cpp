// The paper's Section 5 case study: a PDA user on a moving train downloads
// dynamically generated content; as the train moves, the connection is
// handed over to the next transmitter, and the handover may drop the
// download (50/50 in the paper).
//
// Runs the whole Figure-4 pipeline through the file-based API and prints
// the throughput annotations of Figure 7, then a sensitivity sweep over
// the handover rate.
//
// Build & run:  ./examples/pda_handover
#include <iostream>

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "uml/xmi.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "xml/parse.hpp"
#include "xml/write.hpp"

int main() {
  using namespace choreo;

  // Build the Figure-5 diagram (a ring of two transmitters; see DESIGN.md)
  // and write it to disk as a project file with some layout data, exactly
  // what a Poseidon user would hand to Choreographer.
  uml::Model model = chor::pda_handover_model();
  xml::Document project = uml::to_xmi(model);
  project.root()
      .add_element("Poseidon.layout")
      .add_element("node")
      .set_attr("ref", "n1")
      .set_attr("x", "120")
      .set_attr("y", "80");
  const std::string input = "pda_project.xmi";
  const std::string output = "pda_project_analysed.xmi";
  xml::write_file(project, input);

  // The full pipeline: preprocess, extract, solve, reflect, postprocess.
  const chor::AnalysisReport report = chor::analyse_project_file(input, output);
  const auto& result = report.activity_graphs.at(0);
  std::cout << "analysed '" << result.graph_name << "': "
            << result.marking_count << " markings, "
            << result.transition_count << " marking-graph transitions\n\n";

  util::TextTable table({"activity", "throughput (1/s)"});
  for (const auto& [action, value] : result.throughputs) {
    table.add_row_values(action, {value});
  }
  std::cout << table << '\n';
  std::cout << "annotated project written to " << output
            << " (layout preserved)\n\n";

  // Sensitivity: slower handovers throttle the whole session.
  util::TextTable sweep(
      {"handover rate", "download throughput", "abort throughput"});
  for (double handover_rate : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    chor::PdaParams params;
    params.handover_rate = handover_rate;
    uml::Model swept = chor::pda_handover_model(params);
    const auto swept_report = chor::analyse(swept);
    double download = 0.0, abort = 0.0;
    for (const auto& [action, value] :
         swept_report.activity_graphs[0].throughputs) {
      if (action == "download_file_1") download = value;
      if (action == "abort_download_1") abort = value;
    }
    sweep.add_row_values(util::format_double(handover_rate), {download, abort});
  }
  std::cout << sweep;
  return 0;
}
