// Quickstart: the choreo libraries in five steps.
//
//   1. parse a PEPA model (the paper's File component, Section 2.2),
//   2. derive its state space,
//   3. build and solve the CTMC,
//   4. compute throughput and steady-state measures,
//   5. print a report.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/table.hpp"

int main() {
  using namespace choreo;

  // 1. The File protocol of the paper's Section 2.2, with a reader that
  //    drives the passive activities.
  pepa::Model model = pepa::parse_model(R"(
    r_o = 2.0;  r_r = 1.8;  r_w = 1.2;  r_c = 3.0;

    File      = (openread, r_o).InStream + (openwrite, r_o).OutStream;
    InStream  = (read, r_r).InStream + (close, r_c).File;
    OutStream = (write, r_w).OutStream + (close, r_c).File;

    @system File;
  )");

  // 2. Explore the derivation graph.
  pepa::Semantics semantics(model.arena());
  const pepa::StateSpace space = pepa::StateSpace::derive(semantics, model.system());
  std::cout << "state space: " << space.state_count() << " states, "
            << space.transitions().size() << " transitions\n";
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    std::cout << "  state " << s << " = "
              << pepa::to_string(model.arena(), space.state_term(s)) << '\n';
  }

  // 3. Solve the CTMC for the steady-state distribution.
  const ctmc::SolveResult solved = ctmc::steady_state(space.generator());
  std::cout << "solved with " << ctmc::method_name(solved.method_used) << " in "
            << solved.iterations << " iteration(s), residual "
            << solved.residual << "\n\n";

  // 4 & 5. Measures: activity throughput and derivative probabilities.
  util::TextTable throughputs({"activity", "throughput (1/s)"});
  for (const auto& [action, value] :
       pepa::all_throughputs(space, solved.distribution, model.arena())) {
    throughputs.add_row_values(model.arena().action_name(action), {value});
  }
  std::cout << throughputs << '\n';

  util::TextTable probabilities({"derivative", "steady-state probability"});
  for (const char* name : {"File", "InStream", "OutStream"}) {
    const auto constant = model.arena().find_constant(name);
    probabilities.add_row_values(
        name, {pepa::state_probability(space, solved.distribution, model.arena(),
                                       *constant)});
  }
  std::cout << probabilities;
  return 0;
}
