// Transient analysis: how quickly does the Tomcat system settle?
//
// Steady-state numbers (the paper's measure) say nothing about the warm-up
// transient a user experiences right after deployment.  Uniformisation
// gives the time-dependent state distribution, from which we plot the
// probability that the client is waiting at time t, for both server
// variants, until each converges to its steady-state value.
//
// Build & run:  ./examples/transient_warmup
#include <iostream>

#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "pepa/measures.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace choreo;

struct Prepared {
  pepa::Model model;
  pepa::StateSpace space;
  std::vector<bool> waiting;  // per state: is the client waiting?
};

Prepared prepare(bool cached) {
  chor::StatechartExtraction extraction =
      chor::extract_state_machines(chor::tomcat_model(cached));
  pepa::Semantics semantics(extraction.model.arena());
  auto space = pepa::StateSpace::derive(semantics, extraction.model.system());
  const auto waiting_constant =
      *extraction.model.arena().find_constant("WaitForResponse");
  std::vector<bool> waiting(space.state_count());
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    waiting[s] = pepa::occupies(extraction.model.arena(), space.state_term(s),
                                waiting_constant);
  }
  return {std::move(extraction.model), std::move(space), std::move(waiting)};
}

double waiting_probability(const Prepared& prepared,
                           const std::vector<double>& distribution) {
  double sum = 0.0;
  for (std::size_t s = 0; s < distribution.size(); ++s) {
    if (prepared.waiting[s]) sum += distribution[s];
  }
  return sum;
}

}  // namespace

int main() {
  const Prepared uncached = prepare(false);
  const Prepared cached = prepare(true);

  const auto g_uncached = uncached.space.generator();
  const auto g_cached = cached.space.generator();
  const double steady_uncached = waiting_probability(
      uncached, ctmc::steady_state(g_uncached).distribution);
  const double steady_cached =
      waiting_probability(cached, ctmc::steady_state(g_cached).distribution);

  util::TextTable table(
      {"t (s)", "P[waiting] uncached", "P[waiting] cached"});
  for (double t : {0.0, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const auto at_t_uncached = ctmc::transient_from_state(g_uncached, 0, t);
    const auto at_t_cached = ctmc::transient_from_state(g_cached, 0, t);
    table.add_row_values(
        util::format_double(t),
        {waiting_probability(uncached, at_t_uncached.distribution),
         waiting_probability(cached, at_t_cached.distribution)});
  }
  table.add_row({"steady state", util::format_double(steady_uncached),
                 util::format_double(steady_cached)});
  std::cout << table
            << "\nshape: the uncached server's waiting probability climbs to"
               " its high plateau;\nthe cached one settles quickly at a much"
               " lower level\n";
  return 0;
}
