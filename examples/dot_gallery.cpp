// Writes GraphViz renderings of the paper's models: the annotated activity
// diagram and state machines, the extracted PEPA net, its marking graph,
// and the client/server derivation graph.  Render with e.g.
//
//   dot -Tsvg pda_activity.dot -o pda_activity.svg
//
// Build & run:  ./examples/dot_gallery [output-dir]
#include <fstream>
#include <iostream>
#include <string>

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "pepa/dot.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_dot.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/dot.hpp"

namespace {
void write(const std::string& path, const std::string& contents) {
  std::ofstream stream(path, std::ios::binary);
  stream << contents;
  std::cout << "wrote " << path << '\n';
}
}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";

  // The PDA activity diagram, analysed so throughput tags show up.
  uml::Model pda = chor::pda_handover_model();
  chor::analyse(pda);
  write(dir + "pda_activity.dot", uml::to_dot(pda.activity_graphs()[0]));

  // Its extracted PEPA net and marking graph.
  auto extraction = chor::extract_activity_graph(
      chor::pda_handover_model().activity_graphs()[0]);
  write(dir + "pda_net.dot", pepanet::structure_to_dot(extraction.net));
  pepanet::NetSemantics net_semantics(extraction.net);
  const auto markings = pepanet::NetStateSpace::derive(net_semantics);
  write(dir + "pda_markings.dot",
        pepanet::marking_graph_to_dot(extraction.net, markings));

  // The Tomcat state machines (with reflected probabilities) and the
  // derivation graph of their composition.
  uml::Model tomcat = chor::tomcat_model(false);
  chor::analyse(tomcat);
  write(dir + "tomcat_client.dot", uml::to_dot(tomcat.state_machines()[0]));
  write(dir + "tomcat_server.dot", uml::to_dot(tomcat.state_machines()[1]));
  auto statechart = chor::extract_state_machines(chor::tomcat_model(false));
  pepa::Semantics semantics(statechart.model.arena());
  const auto space =
      pepa::StateSpace::derive(semantics, statechart.model.system());
  write(dir + "tomcat_derivation.dot",
        pepa::to_dot(statechart.model.arena(), space));
  return 0;
}
