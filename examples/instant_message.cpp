// The paper's Figure 2 end to end: an instant-message file written at one
// location, transmitted (a <<move>> activity), and read at another.
//
// Shows the full Choreographer chain on an in-memory model:
//   UML activity diagram  ->  XMI  ->  PEPA net  ->  CTMC  ->  throughputs
//   ->  reflected (annotated) XMI.
//
// Build & run:  ./examples/instant_message [output.xmi]
#include <iostream>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "choreographer/reflect.hpp"
#include "ctmc/steady_state.hpp"
#include "pepanet/net_printer.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/xmi.hpp"
#include "util/table.hpp"
#include "xml/write.hpp"

int main(int argc, char** argv) {
  using namespace choreo;

  // The Figure 2 diagram (write, transmit <<move>>, read, plus the archive
  // return move that closes the cycle -- see DESIGN.md).
  uml::Model model = chor::instant_message_model();

  std::cout << "== UML model as XMI ==\n"
            << xml::to_string(uml::to_xmi(model)) << '\n';

  // Extraction: the Section 3 mapping.
  chor::ActivityExtraction extraction =
      chor::extract_activity_graph(model.activity_graphs()[0]);
  std::cout << "== extracted PEPA net ==\n"
            << pepanet::to_string(extraction.net) << '\n';

  // Derivation and numerical solution.
  pepanet::NetSemantics semantics(extraction.net);
  const auto space = pepanet::NetStateSpace::derive(semantics);
  const auto solved = ctmc::steady_state(space.generator());
  std::cout << "marking graph: " << space.marking_count() << " markings\n";
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    std::cout << "  M" << m << ": "
              << pepanet::marking_to_string(extraction.net, space.marking(m))
              << '\n';
  }
  std::cout << '\n';

  // Throughput of every activity (what Choreographer writes back onto the
  // diagram, Figures 6-7 of the paper).
  util::TextTable table({"activity", "throughput (1/s)"});
  chor::Throughputs throughputs;
  for (const auto& name : extraction.action_names) {
    if (!name) continue;
    const auto action = *extraction.net.arena().find_action(*name);
    const double value =
        pepanet::action_throughput(space, solved.distribution, action);
    table.add_row_values(*name, {value});
    throughputs.emplace_back(*name, value);
  }
  std::cout << table << '\n';

  // Reflection: annotate the diagram and emit the result.
  chor::reflect_throughputs(model.activity_graphs()[0], throughputs);
  const xml::Document annotated = uml::to_xmi(model);
  if (argc > 1) {
    xml::write_file(annotated, argv[1]);
    std::cout << "annotated XMI written to " << argv[1] << '\n';
  } else {
    std::cout << "== annotated XMI (throughput tags) ==\n"
              << xml::to_string(annotated);
  }
  return 0;
}
