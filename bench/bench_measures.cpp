// E6b: per-action measure lookup cost on the CSR-indexed transition system.
//
// Report: steady-state throughput of ONE action queried against transition
// systems of growing total size, holding the action's own degree fixed.
// With the action-keyed CSR index the query walks only the action's slice,
// so its cost is independent of the total transition count; the flat scan
// the measures used before the index grows linearly with it.
// Benchmarks: indexed query vs. flat scan at each size.
#include "bench_common.hpp"

#include <cstddef>
#include <vector>

#include "explore/transition_system.hpp"
#include "pepa/statespace.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

/// Number of transitions carrying the probed action, at every total size.
constexpr std::size_t kProbedDegree = 1024;
/// Action ids 1..kOtherActions carry the remaining transitions.
constexpr std::size_t kOtherActions = 63;
constexpr std::size_t kOutDegree = 8;

/// A synthetic transition system with `total` transitions over
/// total/kOutDegree states: action 0 appears on exactly kProbedDegree of
/// them (evenly spread), the rest cycle through the other action ids.
explore::TransitionSystem<pepa::StateTransition> synthetic_system(
    std::size_t total) {
  explore::TransitionSystem<pepa::StateTransition> system;
  system.reserve(total);
  const std::size_t states = total / kOutDegree;
  const std::size_t probe_stride = total / kProbedDegree;
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t source = i / kOutDegree;
    const std::size_t target = (source * 31 + i) % states;
    const pepa::ActionId action =
        i % probe_stride == 0
            ? 0
            : static_cast<pepa::ActionId>(1 + i % kOtherActions);
    system.push_back({source, target, action, 1.0 + 0.001 * (i % 7)});
  }
  system.finalize(states);
  return system;
}

std::vector<double> uniform_distribution(std::size_t states) {
  return std::vector<double>(states, 1.0 / static_cast<double>(states));
}

/// The pre-index implementation: scan every transition, filter on action.
double flat_scan_throughput(
    const explore::TransitionSystem<pepa::StateTransition>& system,
    const std::vector<double>& distribution, pepa::ActionId action) {
  double sum = 0.0;
  for (const pepa::StateTransition& t : system.transitions()) {
    if (t.action == action) sum += distribution[t.source] * t.rate;
  }
  return sum;
}

void report() {
  util::TextTable table({"transitions", "action degree", "indexed ns/query",
                         "flat scan ns/query", "speedup"});
  for (const std::size_t total : {std::size_t{1} << 14, std::size_t{1} << 17,
                                  std::size_t{1} << 20}) {
    const auto system = synthetic_system(total);
    const auto distribution = uniform_distribution(system.state_count());
    const std::size_t repeats = 200;

    util::Stopwatch timer;
    double sink = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
      sink += system.action_throughput(distribution, 0);
    }
    const double indexed_ns = timer.seconds() * 1e9 / repeats;

    timer.restart();
    for (std::size_t r = 0; r < repeats; ++r) {
      sink -= flat_scan_throughput(system, distribution, 0);
    }
    const double flat_ns = timer.seconds() * 1e9 / repeats;
    benchmark::DoNotOptimize(sink);

    table.add_row({std::to_string(total), std::to_string(kProbedDegree),
                   util::format_double(indexed_ns),
                   util::format_double(flat_ns),
                   util::format_double(flat_ns / indexed_ns)});
    bench::json_record(bench::JsonObject()
                           .field("experiment", "measure_lookup")
                           .field("transitions", total)
                           .field("action_degree", kProbedDegree)
                           .field("indexed_ns_per_query", indexed_ns)
                           .field("flat_scan_ns_per_query", flat_ns));
  }
  std::cout << "per-action throughput query, fixed action degree, growing "
               "transition system\n"
            << table << '\n';
}

void BM_ActionThroughputIndexed(benchmark::State& state) {
  const auto system = synthetic_system(static_cast<std::size_t>(state.range(0)));
  const auto distribution = uniform_distribution(system.state_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.action_throughput(distribution, 0));
  }
}
BENCHMARK(BM_ActionThroughputIndexed)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_ActionThroughputFlatScan(benchmark::State& state) {
  const auto system = synthetic_system(static_cast<std::size_t>(state.range(0)));
  const auto distribution = uniform_distribution(system.state_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat_scan_throughput(system, distribution, 0));
  }
}
BENCHMARK(BM_ActionThroughputFlatScan)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv, "E6b: per-action measure lookup cost",
                            report);
}
