// E6a (paper Section 1.1): state-space explosion.
//
// Report: how the CTMC size grows with the model -- transmitters in the
// handover ring, tokens in a multi-message net, and clients against the
// Tomcat server -- demonstrating the "susceptibility to state-space
// explosion" the paper names as the cost of exact numerical solution.
// Benchmarks: marking-graph derivation throughput.
#include "bench_common.hpp"

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

/// A ring of `places` places with `tokens` messages hopping around it; each
/// extra token multiplies the marking count.
std::string ring_net(std::size_t places, std::size_t tokens) {
  std::string source =
      "Msg = (work, 1.0).Ready;\n"
      "Ready = (hop, 2.0).Msg;\n"
      "@token Msg;\n";
  for (std::size_t p = 0; p < places; ++p) {
    source += "@place ring" + std::to_string(p) + " {";
    for (std::size_t c = 0; c < tokens; ++c) {
      source += " cell Msg";
      if (p == 0) source += " = Msg";  // all tokens start at ring0
      source += ";";
    }
    source += " }\n";
  }
  for (std::size_t p = 0; p < places; ++p) {
    source += "@transition hop (rate infty) from ring" + std::to_string(p) +
              " to ring" + std::to_string((p + 1) % places) + ";\n";
  }
  return source;
}

void report() {
  // 1. Handover ring: linear growth (one token).
  util::TextTable ring({"transmitters", "markings", "transitions",
                        "derive ms"});
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    chor::PdaParams params;
    params.transmitters = n;
    uml::Model model = chor::pda_handover_model(params);
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    pepanet::NetSemantics semantics(extraction.net);
    util::Stopwatch timer;
    const auto space = pepanet::NetStateSpace::derive(semantics);
    ring.add_row_values(std::to_string(n),
                        {static_cast<double>(space.marking_count()),
                         static_cast<double>(space.transitions().size()),
                         timer.milliseconds()});
  }
  std::cout << "one mobile token (linear):\n" << ring << '\n';

  // 2. Token population: combinatorial growth.
  util::TextTable tokens({"tokens", "markings", "transitions", "derive ms"});
  for (std::size_t t : {1u, 2u, 3u, 4u, 5u}) {
    auto parsed = pepanet::parse_net(ring_net(3, t));
    pepanet::NetSemantics semantics(parsed.net);
    util::Stopwatch timer;
    const auto space = pepanet::NetStateSpace::derive(semantics);
    tokens.add_row_values(std::to_string(t),
                          {static_cast<double>(space.marking_count()),
                           static_cast<double>(space.transitions().size()),
                           timer.milliseconds()});
  }
  std::cout << "token population on a 3-place ring (combinatorial):\n"
            << tokens << '\n';

  // 3. Client population against the Tomcat server.
  util::TextTable clients({"clients", "states", "transitions", "derive ms"});
  for (std::size_t c : {1u, 2u, 4u, 6u, 8u}) {
    chor::TomcatParams params;
    params.clients = c;
    const uml::Model model = chor::tomcat_model(false, params);
    auto extraction = chor::extract_state_machines(model);
    pepa::Semantics semantics(extraction.model.arena());
    util::Stopwatch timer;
    const auto space =
        pepa::StateSpace::derive(semantics, extraction.model.system());
    clients.add_row_values(std::to_string(c),
                           {static_cast<double>(space.state_count()),
                            static_cast<double>(space.transitions().size()),
                            timer.milliseconds()});
  }
  std::cout << "Tomcat client population:\n" << clients << '\n';
}

void BM_DeriveRing(benchmark::State& state) {
  const std::string source =
      ring_net(3, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto parsed = pepanet::parse_net(source);
    pepanet::NetSemantics semantics(parsed.net);
    const auto space = pepanet::NetStateSpace::derive(semantics);
    benchmark::DoNotOptimize(space.marking_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeriveRing)->DenseRange(1, 4)->Complexity();

void BM_DeriveInterleavedClients(benchmark::State& state) {
  std::string source = "C = (req, 1.0).(wait, 2.0).(think, 3.0).C;\nS = C";
  for (int i = 1; i < state.range(0); ++i) source += " || C";
  source += ";\n@system S;";
  for (auto _ : state) {
    auto model = pepa::parse_model(source);
    pepa::Semantics semantics(model.arena());
    const auto space = pepa::StateSpace::derive(semantics, model.system());
    benchmark::DoNotOptimize(space.state_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeriveInterleavedClients)->DenseRange(2, 8, 2)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "E6a: state-space explosion (Section 1.1)", report);
}
