// E6a (paper Section 1.1): state-space explosion.
//
// Report: how the CTMC size grows with the model -- transmitters in the
// handover ring, tokens in a multi-message net, and clients against the
// Tomcat server -- demonstrating the "susceptibility to state-space
// explosion" the paper names as the cost of exact numerical solution.
// A final table sweeps the exploration lane count over the largest models;
// the derived graphs are identical at every lane count, only the wall
// clock changes (and only on hosts with spare cores -- see
// docs/performance.md).
// Benchmarks: marking-graph derivation throughput.
#include "bench_common.hpp"

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "pepa/families.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {
using namespace choreo;

/// A ring of `places` places with `tokens` messages hopping around it; each
/// extra token multiplies the marking count.
std::string ring_net(std::size_t places, std::size_t tokens) {
  std::string source =
      "Msg = (work, 1.0).Ready;\n"
      "Ready = (hop, 2.0).Msg;\n"
      "@token Msg;\n";
  for (std::size_t p = 0; p < places; ++p) {
    source += "@place ring" + std::to_string(p) + " {";
    for (std::size_t c = 0; c < tokens; ++c) {
      source += " cell Msg";
      if (p == 0) source += " = Msg";  // all tokens start at ring0
      source += ";";
    }
    source += " }\n";
  }
  for (std::size_t p = 0; p < places; ++p) {
    source += "@transition hop (rate infty) from ring" + std::to_string(p) +
              " to ring" + std::to_string((p + 1) % places) + ";\n";
  }
  return source;
}

void report() {
  // 1. Handover ring: linear growth (one token).
  util::TextTable ring({"transmitters", "markings", "transitions",
                        "derive ms"});
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    chor::PdaParams params;
    params.transmitters = n;
    uml::Model model = chor::pda_handover_model(params);
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    pepanet::NetSemantics semantics(extraction.net);
    util::Stopwatch timer;
    const auto space = pepanet::NetStateSpace::derive(semantics);
    const double seconds = timer.seconds();
    ring.add_row_values(std::to_string(n),
                        {static_cast<double>(space.marking_count()),
                         static_cast<double>(space.transitions().size()),
                         seconds * 1e3});
    bench::json_record(
        bench::JsonObject()
            .field("model", "pda_handover[" + std::to_string(n) + "tx]")
            .field("threads", std::size_t{1})
            .field("states", space.marking_count())
            .field("transitions", space.transitions().size())
            .field("seconds", seconds)
            .field("states_per_second",
                   static_cast<double>(space.marking_count()) / seconds));
  }
  std::cout << "one mobile token (linear):\n" << ring << '\n';

  // 2. Token population: combinatorial growth.
  util::TextTable tokens({"tokens", "markings", "transitions", "derive ms"});
  for (std::size_t t : {1u, 2u, 3u, 4u, 5u}) {
    auto parsed = pepanet::parse_net(ring_net(3, t));
    pepanet::NetSemantics semantics(parsed.net);
    util::Stopwatch timer;
    const auto space = pepanet::NetStateSpace::derive(semantics);
    const double seconds = timer.seconds();
    tokens.add_row_values(std::to_string(t),
                          {static_cast<double>(space.marking_count()),
                           static_cast<double>(space.transitions().size()),
                           seconds * 1e3});
    bench::json_record(
        bench::JsonObject()
            .field("model", "ring3[" + std::to_string(t) + "tok]")
            .field("threads", std::size_t{1})
            .field("states", space.marking_count())
            .field("transitions", space.transitions().size())
            .field("seconds", seconds)
            .field("states_per_second",
                   static_cast<double>(space.marking_count()) / seconds));
  }
  std::cout << "token population on a 3-place ring (combinatorial):\n"
            << tokens << '\n';

  // 3. Client population against the Tomcat server.
  util::TextTable clients({"clients", "states", "transitions", "derive ms"});
  for (std::size_t c : {1u, 2u, 4u, 6u, 8u}) {
    chor::TomcatParams params;
    params.clients = c;
    const uml::Model model = chor::tomcat_model(false, params);
    auto extraction = chor::extract_state_machines(model);
    pepa::Semantics semantics(extraction.model.arena());
    util::Stopwatch timer;
    const auto space =
        pepa::StateSpace::derive(semantics, extraction.model.system());
    const double seconds = timer.seconds();
    clients.add_row_values(std::to_string(c),
                           {static_cast<double>(space.state_count()),
                            static_cast<double>(space.transitions().size()),
                            seconds * 1e3});
    bench::json_record(
        bench::JsonObject()
            .field("model", "tomcat[" + std::to_string(c) + "cl]")
            .field("threads", std::size_t{1})
            .field("states", space.state_count())
            .field("transitions", space.transitions().size())
            .field("seconds", seconds)
            .field("states_per_second",
                   static_cast<double>(space.state_count()) / seconds));
  }
  std::cout << "Tomcat client population:\n" << clients << '\n';

  // 4. Exploration lanes over the largest models.  Derivation is
  // level-synchronous and deterministic: every lane count yields the same
  // graph, so only "derive ms" may move.
  util::ThreadPool pool(4);
  util::TextTable lanes({"model", "lanes", "states", "derive ms",
                         "states/s"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    chor::PdaParams params;
    params.transmitters = 128;
    uml::Model model = chor::pda_handover_model(params);
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    pepanet::NetSemantics semantics(extraction.net);
    pepanet::NetDeriveOptions options;
    options.threads = threads;
    options.pool = threads > 1 ? &pool : nullptr;
    util::Stopwatch timer;
    const auto space = pepanet::NetStateSpace::derive(semantics, options);
    const double seconds = timer.seconds();
    const double rate = static_cast<double>(space.marking_count()) / seconds;
    lanes.add_row_values("pda_handover[128tx] x" + std::to_string(threads),
                         {static_cast<double>(threads),
                          static_cast<double>(space.marking_count()),
                          seconds * 1e3, rate});
    bench::json_record(bench::JsonObject()
                           .field("model", "pda_handover[128tx]")
                           .field("threads", threads)
                           .field("states", space.marking_count())
                           .field("transitions", space.transitions().size())
                           .field("seconds", seconds)
                           .field("states_per_second", rate));
  }
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    chor::TomcatParams params;
    params.clients = 8;
    const uml::Model model = chor::tomcat_model(false, params);
    auto extraction = chor::extract_state_machines(model);
    pepa::Semantics semantics(extraction.model.arena());
    pepa::DeriveOptions options;
    options.threads = threads;
    options.pool = threads > 1 ? &pool : nullptr;
    util::Stopwatch timer;
    const auto space = pepa::StateSpace::derive(
        semantics, extraction.model.system(), options);
    const double seconds = timer.seconds();
    const double rate = static_cast<double>(space.state_count()) / seconds;
    lanes.add_row_values("tomcat[8cl] x" + std::to_string(threads),
                         {static_cast<double>(threads),
                          static_cast<double>(space.state_count()),
                          seconds * 1e3, rate});
    bench::json_record(bench::JsonObject()
                           .field("model", "tomcat[8cl]")
                           .field("threads", threads)
                           .field("states", space.state_count())
                           .field("transitions", space.transitions().size())
                           .field("seconds", seconds)
                           .field("states_per_second", rate));
  }
  std::cout << "exploration lanes (identical graphs at every lane count):\n"
            << lanes << '\n';

  // 5. Lanes × size over the parametric families (pepa::families): three
  // decades of state count per family, the largest honestly reaching 10^6+
  // states — each derived count is checked against the family's closed-form
  // reachable-state formula, not eyeballed.  The 10^6 points run at lanes
  // {1, 8} only to bound the report's wall clock; the smaller sizes sweep
  // the full lane set.
  struct SweepPoint {
    std::string label;
    std::size_t expected_states;
    std::function<pepa::Model()> build;
    std::vector<std::size_t> lane_counts;
  };
  const std::vector<std::size_t> all_lanes{1, 2, 4, 8};
  const std::vector<std::size_t> big_lanes{1, 8};
  const SweepPoint sweep_points[] = {
      {"client_server[8cl,8sv]", pepa::client_server_states(8, 8),
       [] { return pepa::client_server(8, {.servers = 8}); }, all_lanes},
      {"client_server[10cl,10sv]", pepa::client_server_states(10, 10),
       [] { return pepa::client_server(10, {.servers = 10}); }, all_lanes},
      {"client_server[11cl,11sv]", pepa::client_server_states(11, 11),
       [] { return pepa::client_server(11, {.servers = 11}); }, big_lanes},
      {"pda_handover[10pda,4tx]", pepa::pda_handover_states(10, 4),
       [] { return pepa::pda_handover(10, {.transmitters = 4}); }, all_lanes},
      {"pda_handover[14pda,4tx]", pepa::pda_handover_states(14, 4),
       [] { return pepa::pda_handover(14, {.transmitters = 4}); }, all_lanes},
      {"pda_handover[16pda,4tx]", pepa::pda_handover_states(16, 4),
       [] { return pepa::pda_handover(16, {.transmitters = 4}); }, big_lanes},
      {"ring[14st]", pepa::ring_states(14),
       [] { return pepa::ring(14); }, all_lanes},
      {"ring[17st]", pepa::ring_states(17),
       [] { return pepa::ring(17); }, all_lanes},
      {"ring[20st]", pepa::ring_states(20),
       [] { return pepa::ring(20); }, big_lanes},
  };
  util::ThreadPool sweep_pool(7);  // 8 lanes = 7 workers + the caller
  util::TextTable sweep({"model", "lanes", "states", "derive ms", "states/s"});
  for (const SweepPoint& point : sweep_points) {
    for (const std::size_t threads : point.lane_counts) {
      pepa::Model model = point.build();
      pepa::Semantics semantics(model.arena());
      pepa::DeriveOptions options;
      options.threads = threads;
      options.pool = threads > 1 ? &sweep_pool : nullptr;
      util::Stopwatch timer;
      const auto space =
          pepa::StateSpace::derive(semantics, model.system(), options);
      const double seconds = timer.seconds();
      CHOREO_ASSERT(space.state_count() == point.expected_states);
      const double rate = static_cast<double>(space.state_count()) / seconds;
      sweep.add_row_values(point.label + " x" + std::to_string(threads),
                           {static_cast<double>(threads),
                            static_cast<double>(space.state_count()),
                            seconds * 1e3, rate});
      bench::json_record(bench::JsonObject()
                             .field("model", point.label)
                             .field("threads", threads)
                             .field("states", space.state_count())
                             .field("transitions", space.transitions().size())
                             .field("seconds", seconds)
                             .field("states_per_second", rate));
    }
  }
  std::cout << "lanes x size over the parametric families (counts verified"
               " against the closed forms):\n"
            << sweep << '\n';

  // 6. Quotient-direct derivation (DeriveOptions::aggregate): populations
  // whose full chains sit at or far beyond 10^6 states but whose
  // strong-equivalence quotients are tiny.  The full counts come from the
  // closed forms — the whole point is that the full chains need never be
  // derived (client_server[1000cl,4sv]'s 4.2e10 states could not be) —
  // and each quotient count is checked against its closed form.  The
  // "reduction" column is states-of-full / states-of-quotient, which is
  // also the peak-memory ratio: the engine's budget accounting charges
  // only interned (canonical) states.
  struct QuotientPoint {
    std::string label;
    std::size_t full_states;
    std::size_t quotient_states;
    std::function<pepa::Model()> build;
  };
  const QuotientPoint quotient_points[] = {
      {"client_server[1500cl,2sv]", pepa::client_server_states(1500, 2),
       pepa::client_server_quotient_states(1500, 2),
       [] { return pepa::client_server(1500, {.servers = 2}); }},
      {"client_server[1000cl,4sv]", pepa::client_server_states(1000, 4),
       pepa::client_server_quotient_states(1000, 4),
       [] { return pepa::client_server(1000, {.servers = 4}); }},
      {"pda_handover[18pda,2tx]", pepa::pda_handover_states(18, 2),
       pepa::pda_handover_quotient_states(18, 2),
       [] { return pepa::pda_handover(18, {.transmitters = 2}); }},
  };
  util::TextTable quotient_table({"model", "full states", "quotient",
                                  "reduction", "derive ms"});
  for (const QuotientPoint& point : quotient_points) {
    pepa::Model model = point.build();
    pepa::Semantics semantics(model.arena());
    pepa::DeriveOptions options;
    options.aggregate = true;
    util::Stopwatch timer;
    const auto space =
        pepa::StateSpace::derive(semantics, model.system(), options);
    const double seconds = timer.seconds();
    CHOREO_ASSERT(space.state_count() == point.quotient_states);
    const double reduction = static_cast<double>(point.full_states) /
                             static_cast<double>(point.quotient_states);
    quotient_table.add_row_values(
        point.label, {static_cast<double>(point.full_states),
                      static_cast<double>(space.state_count()), reduction,
                      seconds * 1e3});
    bench::json_record(bench::JsonObject()
                           .field("model", point.label + " quotient")
                           .field("threads", std::size_t{1})
                           .field("states", space.state_count())
                           .field("transitions", space.transitions().size())
                           .field("full_states", point.full_states)
                           .field("memory_reduction", reduction)
                           .field("seconds", seconds)
                           .field("states_per_second",
                                  static_cast<double>(space.state_count()) /
                                      seconds));
  }
  std::cout << "quotient-direct derivation (full counts from the closed"
               " forms; reduction = full/quotient = the memory ratio):\n"
            << quotient_table << '\n';
}

void BM_DeriveRing(benchmark::State& state) {
  const std::string source =
      ring_net(3, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto parsed = pepanet::parse_net(source);
    pepanet::NetSemantics semantics(parsed.net);
    const auto space = pepanet::NetStateSpace::derive(semantics);
    benchmark::DoNotOptimize(space.marking_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeriveRing)->DenseRange(1, 4)->Complexity();

void BM_DeriveInterleavedClients(benchmark::State& state) {
  std::string source = "C = (req, 1.0).(wait, 2.0).(think, 3.0).C;\nS = C";
  for (int i = 1; i < state.range(0); ++i) source += " || C";
  source += ";\n@system S;";
  for (auto _ : state) {
    auto model = pepa::parse_model(source);
    pepa::Semantics semantics(model.arena());
    const auto space = pepa::StateSpace::derive(semantics, model.system());
    benchmark::DoNotOptimize(space.state_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeriveInterleavedClients)->DenseRange(2, 8, 2)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "E6a: state-space explosion (Section 1.1)", report);
}
