// Design-space sweep amortization: derive once, re-solve K times.
//
// Report, part 1 (sweep_amortization): the Tomcat servlet-caching model
// (paper Figures 8-9) swept over the servlet-lookup rate at K = 10, 100
// and 1000 points.  The baseline runs K independent jobs — parse, derive,
// solve, measure per point, exactly what K manifest lines cost — while
// the sweep engine derives the shared rate-stripped structure once and
// rebinds only the rate payload per point.
//
// Report, part 2 (sweep_scaling): the same comparison on a replicated
// client/server model whose state space grows with the population.  Here
// the per-point solve is real work at every point, so the amortization is
// bounded: skipping parse + derivation + dedup holds a ~2x per-point
// advantage as the state space grows from 10^2 to 4·10^3 states.
#include "bench_common.hpp"

#include <cstddef>
#include <string>

#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

/// models/tomcat_cached.pepa with the servlet-lookup rate substituted, so
/// the baseline can re-parse the model per point the way K independent
/// manifest jobs would.
std::string tomcat_source(double locs) {
  return util::msg(
      "req = 5.0; offp = 2.0; locs = ", util::format_double(locs),
      "; exec = 10.0; resp = 25.0;\n"
      "GenerateRequest  = (request, req).WaitForResponse;\n"
      "WaitForResponse  = (response, infty).ProcessResponse;\n"
      "ProcessResponse  = (offlineProcessing, offp).GenerateRequest;\n"
      "ServerIdle       = (request, infty).ProcessRequest;\n"
      "ProcessRequest   = (locateservlet, locs).CompiledJavaCode;\n"
      "CompiledJavaCode = (execute, exec).SendHTTPResponse;\n"
      "SendHTTPResponse = (response, resp).ServerIdle;\n"
      "System = GenerateRequest <request, response> ServerIdle;\n"
      "@system System;\n");
}

/// A replicated client/server model: the state space grows with `clients`,
/// so the single shared derivation is the dominant baseline cost.
std::string client_server_source(std::size_t clients, double rate) {
  return util::msg(
      "r = ", util::format_double(rate),
      "; s = 2.0; t = 1.5;\n"
      "Client = (request, r).Wait;\n"
      "Wait   = (response, infty).Think;\n"
      "Think  = (think, t).Client;\n"
      "Server = (request, infty).Serve;\n"
      "Serve  = (response, s).Server;\n"
      "System = Client[", clients, "] <request, response> Server[2];\n"
      "@system System;\n");
}

struct Comparison {
  std::size_t points = 0;
  std::size_t states = 0;
  double baseline_seconds = 0.0;
  double sweep_seconds = 0.0;
  std::size_t derivations = 0;
  double speedup() const {
    return sweep_seconds > 0.0 ? baseline_seconds / sweep_seconds : 0.0;
  }
};

/// One independent job at one point: parse, derive, solve, measure — the
/// cost of one manifest line.
double independent_job(const std::string& source) {
  pepa::Model model = pepa::parse_model(source, "<bench>");
  pepa::Semantics semantics(model.arena());
  const auto space = pepa::StateSpace::derive(semantics, model.system());
  const auto solved = ctmc::steady_state(space.generator());
  double total = 0.0;
  for (const auto& [action, value] :
       pepa::all_throughputs(space, solved.distribution, model.arena())) {
    total += value;
  }
  return total;
}

template <typename SourceAt>
Comparison compare(const std::string& base_source, const sweep::SweepSpec& spec,
                   SourceAt source_at) {
  Comparison comparison;
  comparison.points = spec.point_count();

  util::Stopwatch timer;
  double sink = 0.0;
  for (std::size_t p = 0; p < comparison.points; ++p) {
    sink += independent_job(source_at(spec.point(p)[0]));
  }
  benchmark::DoNotOptimize(sink);
  comparison.baseline_seconds = timer.seconds();

  timer.restart();
  pepa::Model model = pepa::parse_model(base_source, "<bench>");
  const sweep::SweepTable table = sweep::sweep(model, spec);
  comparison.sweep_seconds = timer.seconds();
  comparison.states = table.state_count;
  comparison.derivations = table.derivations;
  return comparison;
}

void report() {
  // Part 1: the Tomcat model at K = 10, 100, 1000.
  util::TextTable amortization({"points", "states", "baseline ms", "sweep ms",
                                "baseline us/pt", "sweep us/pt", "speedup"});
  for (const std::size_t points :
       {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
    sweep::SweepSpec spec;
    spec.axes.push_back(sweep::Axis::linear("locs", 5.0, 100.0, points));
    const Comparison run = compare(tomcat_source(40.0), spec, tomcat_source);
    amortization.add_row(
        {std::to_string(run.points), std::to_string(run.states),
         util::format_double(run.baseline_seconds * 1e3),
         util::format_double(run.sweep_seconds * 1e3),
         util::format_double(run.baseline_seconds / run.points * 1e6),
         util::format_double(run.sweep_seconds / run.points * 1e6),
         util::format_double(run.speedup())});
    bench::json_record(bench::JsonObject()
                           .field("experiment", "sweep_amortization")
                           .field("model", "tomcat_cached")
                           .field("points", run.points)
                           .field("states", run.states)
                           .field("derivations", run.derivations)
                           .field("baseline_seconds", run.baseline_seconds)
                           .field("sweep_seconds", run.sweep_seconds)
                           .field("baseline_seconds_per_point",
                                  run.baseline_seconds / run.points)
                           .field("sweep_seconds_per_point",
                                  run.sweep_seconds / run.points)
                           .field("speedup", run.speedup()));
  }
  std::cout << "Tomcat servlet-caching model: K independent jobs vs one "
               "derive-once sweep\n"
            << amortization << '\n';

  // Part 2: state spaces that grow with the population.
  util::TextTable scaling({"clients", "states", "baseline ms", "sweep ms",
                           "speedup"});
  for (const std::size_t clients :
       {std::size_t{4}, std::size_t{6}, std::size_t{8}}) {
    sweep::SweepSpec spec;
    spec.axes.push_back(sweep::Axis::linear("r", 0.5, 4.0, 20));
    const Comparison run =
        compare(client_server_source(clients, 1.0), spec,
                [&](double rate) { return client_server_source(clients, rate); });
    scaling.add_row({std::to_string(clients), std::to_string(run.states),
                     util::format_double(run.baseline_seconds * 1e3),
                     util::format_double(run.sweep_seconds * 1e3),
                     util::format_double(run.speedup())});
    bench::json_record(bench::JsonObject()
                           .field("experiment", "sweep_scaling")
                           .field("model", "client_server")
                           .field("clients", clients)
                           .field("points", run.points)
                           .field("states", run.states)
                           .field("derivations", run.derivations)
                           .field("baseline_seconds", run.baseline_seconds)
                           .field("sweep_seconds", run.sweep_seconds)
                           .field("speedup", run.speedup()));
  }
  std::cout << "replicated client/server: with the solve dominating, skipping "
               "parse+derive still holds ~2x (20 points)\n"
            << scaling << '\n';
}

void BM_IndependentJob(benchmark::State& state) {
  const std::string source = tomcat_source(40.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(independent_job(source));
  }
}
BENCHMARK(BM_IndependentJob);

void BM_SweepPoint(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));
  pepa::Model model = pepa::parse_model(tomcat_source(40.0), "<bench>");
  sweep::SweepSpec spec;
  spec.axes.push_back(sweep::Axis::linear("locs", 5.0, 100.0, points));
  for (auto _ : state) {
    const sweep::SweepTable table = sweep::sweep(model, spec);
    benchmark::DoNotOptimize(table.rows.back().measures[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points));
}
BENCHMARK(BM_SweepPoint)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "Design-space sweeps: derive once, re-solve K "
                            "times vs K independent jobs",
                            report);
}
