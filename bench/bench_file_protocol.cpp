// E1 (paper Figure 1): the file activity diagram without mobility.
//
// Report: per-activity throughput of the open/read/write/close protocol
// and the protocol invariants (opens balance closes).  Benchmarks: the
// PEPA parse -> derive -> solve chain on the File model.
#include "bench_common.hpp"

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

void report() {
  util::TextTable table({"activity", "throughput (1/s)"});
  uml::Model model = chor::file_activity_model();
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  pepanet::NetSemantics semantics(extraction.net);
  const auto space = pepanet::NetStateSpace::derive(semantics);
  const auto solved = ctmc::steady_state(space.generator());
  double opens = 0.0, closes = 0.0;
  for (const auto& name : extraction.action_names) {
    if (!name) continue;
    const double value = pepanet::action_throughput(
        space, solved.distribution, *extraction.net.arena().find_action(*name));
    table.add_row_values(*name, {value});
    if (name->rfind("open", 0) == 0) opens += value;
    if (name->rfind("close", 0) == 0) closes += value;
  }
  std::cout << "single place (no mobility), " << space.marking_count()
            << " markings\n"
            << table << "invariant: opens (" << opens << ") == closes ("
            << closes << ")\n\n";
}

const char* kFilePepa = R"(
  File      = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
  InStream  = (read, 1.8).InStream + (close, 3.0).File;
  OutStream = (write, 1.2).OutStream + (close, 3.0).File;
  @system File;
)";

void BM_ParseFileModel(benchmark::State& state) {
  for (auto _ : state) {
    auto model = pepa::parse_model(kFilePepa);
    benchmark::DoNotOptimize(model.definitions().size());
  }
}
BENCHMARK(BM_ParseFileModel);

void BM_DeriveAndSolveFileModel(benchmark::State& state) {
  for (auto _ : state) {
    auto model = pepa::parse_model(kFilePepa);
    pepa::Semantics semantics(model.arena());
    const auto space = pepa::StateSpace::derive(semantics, model.system());
    const auto solved = ctmc::steady_state(space.generator());
    benchmark::DoNotOptimize(solved.distribution[0]);
  }
}
BENCHMARK(BM_DeriveAndSolveFileModel);

void BM_ExtractFileDiagram(benchmark::State& state) {
  const uml::Model model = chor::file_activity_model();
  for (auto _ : state) {
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    benchmark::DoNotOptimize(extraction.net.place_count());
  }
}
BENCHMARK(BM_ExtractFileDiagram);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv, "E1: file protocol (Figure 1)", report);
}
