// E6b (paper Section 1.1): solver characteristics -- exact numerical
// solution vs stochastic simulation.
//
// Report: for growing instances of the Tomcat model, the time and accuracy
// of the direct and iterative steady-state solvers, and of simulation with
// confidence intervals (whose cost is ~flat in state-space size but whose
// answer is approximate).  Benchmarks: each solver on a fixed chain.
#include "bench_common.hpp"

#include <memory>

#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "sim/replicate.hpp"
#include "sim/system.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

pepa::Model tomcat_pepa(std::size_t clients) {
  chor::TomcatParams params;
  params.clients = clients;
  const uml::Model model = chor::tomcat_model(false, params);
  return std::move(chor::extract_state_machines(model).model);
}

void report() {
  // Exact solvers across sizes: time and residual.
  util::TextTable table({"clients", "states", "method", "solve ms",
                         "iterations", "residual"});
  for (std::size_t clients : {2u, 4u, 6u, 8u}) {
    pepa::Model model = tomcat_pepa(clients);
    pepa::Semantics semantics(model.arena());
    const auto space = pepa::StateSpace::derive(semantics, model.system());
    const auto generator = space.generator();
    for (ctmc::Method method :
         {ctmc::Method::kDenseLU, ctmc::Method::kJacobi,
          ctmc::Method::kGaussSeidel, ctmc::Method::kSor, ctmc::Method::kPower}) {
      if (method == ctmc::Method::kDenseLU && generator.state_count() > 4000) {
        continue;  // O(n^3) dense solve is the point being made
      }
      ctmc::SolveOptions options;
      options.method = method;
      options.tolerance = 1e-10;
      util::Stopwatch timer;
      try {
        const auto solved = ctmc::steady_state(generator, options);
        table.add_row({std::to_string(clients),
                       std::to_string(generator.state_count()),
                       ctmc::method_name(method),
                       util::format_double(timer.milliseconds()),
                       std::to_string(solved.iterations),
                       util::format_double(solved.residual)});
      } catch (const util::NumericError&) {
        // A method failing to converge is itself a data point.
        table.add_row({std::to_string(clients),
                       std::to_string(generator.state_count()),
                       ctmc::method_name(method),
                       util::format_double(timer.milliseconds()),
                       "no convergence", "-"});
      }
    }
  }
  std::cout << table << '\n';

  // Simulation vs exact: approximate answers, CI widths, flat cost.
  util::TextTable sim_table({"clients", "exact resp tput", "simulated (95% CI)",
                             "CI width", "sim ms"});
  for (std::size_t clients : {2u, 4u, 6u}) {
    pepa::Model model = tomcat_pepa(clients);
    pepa::Semantics semantics(model.arena());
    const auto space = pepa::StateSpace::derive(semantics, model.system());
    const auto solved = ctmc::steady_state(space.generator());
    const auto response = *model.arena().find_action("response");
    const double exact =
        pepa::action_throughput(space, solved.distribution, response);

    sim::ReplicateOptions options;
    options.replications = 8;
    options.run.warmup_time = 100.0;
    options.run.horizon = 4000.0;
    options.seed = 31337;
    util::Stopwatch timer;
    const auto simulated = sim::replicate(
        [&] { return std::make_unique<sim::PepaSystem>(tomcat_pepa(clients)); },
        options);
    const auto interval = simulated.throughput(response);
    sim_table.add_row(
        {std::to_string(clients), util::format_double(exact),
         util::format_double(interval.low()) + " .. " +
             util::format_double(interval.high()),
         util::format_double(2 * interval.half_width),
         util::format_double(timer.milliseconds())});
  }
  std::cout << sim_table << '\n';
}

void BM_Solver(benchmark::State& state) {
  pepa::Model model = tomcat_pepa(6);
  pepa::Semantics semantics(model.arena());
  const auto space = pepa::StateSpace::derive(semantics, model.system());
  const auto generator = space.generator();
  ctmc::SolveOptions options;
  options.method = static_cast<ctmc::Method>(state.range(0));
  for (auto _ : state) {
    const auto solved = ctmc::steady_state(generator, options);
    benchmark::DoNotOptimize(solved.distribution[0]);
  }
  state.SetLabel(ctmc::method_name(options.method));
}
BENCHMARK(BM_Solver)
    ->Arg(static_cast<int>(ctmc::Method::kDenseLU))
    ->Arg(static_cast<int>(ctmc::Method::kJacobi))
    ->Arg(static_cast<int>(ctmc::Method::kGaussSeidel))
    ->Arg(static_cast<int>(ctmc::Method::kSor))
    ->Arg(static_cast<int>(ctmc::Method::kPower));

void BM_SimulationTrajectory(benchmark::State& state) {
  sim::PepaSystem system(tomcat_pepa(6));
  util::Xoshiro256 rng(5);
  sim::RunOptions options;
  options.horizon = 1000.0;
  for (auto _ : state) {
    const auto result = sim::run_trajectory(system, rng, options);
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_SimulationTrajectory);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(
      argc, argv, "E6b: solver characteristics (Section 1.1)", report);
}
