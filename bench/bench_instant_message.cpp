// E2 (paper Figure 2 and Section 2.2): the instant-message PEPA net.
//
// Report: the extracted net structure (2 places, transmit firing), the
// equivalence of the extracted net with a hand-written .pepanet model, and
// the transmit-throughput series as the transmit rate sweeps (the message
// passing "figure" of Section 2.2).  Benchmarks: extraction and marking-
// graph derivation.
#include "bench_common.hpp"

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/net_printer.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

double transmit_throughput(double transmit_rate) {
  chor::InstantMessageParams params;
  params.transmit_rate = transmit_rate;
  uml::Model model = chor::instant_message_model(params);
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  pepanet::NetSemantics semantics(extraction.net);
  const auto space = pepanet::NetStateSpace::derive(semantics);
  const auto solved = ctmc::steady_state(space.generator());
  return pepanet::action_throughput(
      space, solved.distribution,
      *extraction.net.arena().find_action("transmit"));
}

void report() {
  uml::Model model = chor::instant_message_model();
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  std::cout << "extracted net:\n" << pepanet::to_string(extraction.net) << '\n';

  util::TextTable series({"transmit rate", "transmit throughput (1/s)"});
  for (double rate : {0.1, 0.2, 0.35, 0.7, 1.4, 2.8, 5.6}) {
    series.add_row_values(util::format_double(rate),
                          {transmit_throughput(rate)});
  }
  std::cout << series
            << "shape: saturates as transmit stops being the bottleneck\n\n";
}

void BM_ExtractInstantMessage(benchmark::State& state) {
  const uml::Model model = chor::instant_message_model();
  for (auto _ : state) {
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    benchmark::DoNotOptimize(extraction.net.transition_count());
  }
}
BENCHMARK(BM_ExtractInstantMessage);

void BM_DeriveMarkingGraph(benchmark::State& state) {
  const uml::Model model = chor::instant_message_model();
  for (auto _ : state) {
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    pepanet::NetSemantics semantics(extraction.net);
    const auto space = pepanet::NetStateSpace::derive(semantics);
    benchmark::DoNotOptimize(space.marking_count());
  }
}
BENCHMARK(BM_DeriveMarkingGraph);

void BM_ParsePepanetText(benchmark::State& state) {
  const char* source = R"(
    InstantMessage = (write, 1.2).Written;
    Written        = (transmit, 0.7).File;
    File           = (openread, 2.0).InStream;
    InStream       = (read, 1.8).InStream + (close, 3.0).Done;
    Done           = (archive, 5.0).InstantMessage;
    FileReader     = (openread, infty).(read, infty).(close, infty).FileReader;
    @token InstantMessage;
    @place p1 { cell InstantMessage = InstantMessage; }
    @place p2 { cell InstantMessage; static FileReader; }
    @transition transmit (rate infty) from p1 to p2;
    @transition archive (rate infty) from p2 to p1;
  )";
  for (auto _ : state) {
    auto parsed = pepanet::parse_net(source);
    benchmark::DoNotOptimize(parsed.net.place_count());
  }
}
BENCHMARK(BM_ParsePepanetText);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "E2: instant message net (Figure 2)", report);
}
