// E3 (paper Figures 5-7): the PDA-on-a-train handover case study.
//
// Report: the Figure-7 throughput annotations (per-activity throughput of
// the extracted PEPA net) at the paper's 50/50 handover outcome, plus the
// sweeps over handover rate and success probability that characterise the
// scenario.  Benchmarks: the full extract+derive+solve pipeline.
#include "bench_common.hpp"

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "uml/xmi.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

chor::AnalysisReport analyse_pda(const chor::PdaParams& params) {
  uml::Model model = chor::pda_handover_model(params);
  return chor::analyse(model);
}

double throughput_of(const chor::AnalysisReport& report, const char* name) {
  for (const auto& [action, value] : report.activity_graphs[0].throughputs) {
    if (action == name) return value;
  }
  return 0.0;
}

void report() {
  // Figure 7: the annotated activity diagram (one hop shown; the second hop
  // is symmetric).
  const auto base = analyse_pda({});
  util::TextTable annotations({"activity", "throughput (1/s)"});
  for (const auto& [action, value] : base.activity_graphs[0].throughputs) {
    if (util::ends_with(action, "_1")) annotations.add_row_values(action, {value});
  }
  std::cout << "markings: " << base.activity_graphs[0].marking_count << '\n'
            << annotations
            << "paper's 50/50 outcome: continue == abort throughput\n\n";

  // Sweep 1: the handover rate throttles everything downstream.
  util::TextTable rate_sweep({"handover rate", "download tput",
                              "handover tput", "abort tput"});
  for (double rate : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    chor::PdaParams params;
    params.handover_rate = rate;
    const auto swept = analyse_pda(params);
    rate_sweep.add_row_values(
        util::format_double(rate),
        {throughput_of(swept, "download_file_1"),
         throughput_of(swept, "handover_1"),
         throughput_of(swept, "abort_download_1")});
  }
  std::cout << rate_sweep << '\n';

  // Sweep 2: the success probability (continue vs abort rates) moves the
  // outcome split without changing the handover throughput.
  util::TextTable outcome_sweep({"P[success]", "continue tput", "abort tput",
                                 "handover tput"});
  for (double success : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    chor::PdaParams params;
    const double total = params.continue_rate + params.abort_rate;
    params.continue_rate = total * success;
    params.abort_rate = total * (1.0 - success);
    const auto swept = analyse_pda(params);
    outcome_sweep.add_row_values(
        util::format_double(success),
        {throughput_of(swept, "continue_download_1"),
         throughput_of(swept, "abort_download_1"),
         throughput_of(swept, "handover_1")});
  }
  std::cout << outcome_sweep << '\n';
}

void BM_FullPipeline(benchmark::State& state) {
  chor::PdaParams params;
  params.transmitters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto report = analyse_pda(params);
    benchmark::DoNotOptimize(report.activity_graphs[0].marking_count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullPipeline)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_ProjectFilePipeline(benchmark::State& state) {
  // The Figure-4 file-level pipeline: XMI in, annotated XMI out.
  uml::Model model = chor::pda_handover_model();
  const std::string input = "bench_pda_in.xmi";
  const std::string output = "bench_pda_out.xmi";
  uml::write_xmi_file(model, input);
  for (auto _ : state) {
    const auto report = chor::analyse_project_file(input, output);
    benchmark::DoNotOptimize(report.activity_graphs.size());
  }
}
BENCHMARK(BM_ProjectFilePipeline);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "E3: PDA handover case study (Figures 5-7)", report);
}
