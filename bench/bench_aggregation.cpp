// E8 (extension; DESIGN.md section 5): exact aggregation by Markov
// bisimulation -- the PEPA-workbench answer to state-space explosion.
//
// Report: for N replicated Tomcat clients, the full chain vs the bisimilar
// quotient (size, lumping time, solve times, and the agreement of the
// aggregated steady states).  The quotient grows with the *population
// vector* (polynomial) while the full chain grows with the interleaving
// (exponential-ish), so aggregation extends the reach of exact solution.
#include "bench_common.hpp"

#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/lumping.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

pepa::Model tomcat_pepa(std::size_t clients, bool cached) {
  chor::TomcatParams params;
  params.clients = clients;
  const uml::Model model = chor::tomcat_model(cached, params);
  return std::move(chor::extract_state_machines(model).model);
}

void report() {
  util::TextTable table({"clients", "full states", "blocks", "lump ms",
                         "solve full ms", "solve quotient ms", "max |err|"});
  for (std::size_t clients : {2u, 3u, 4u, 5u, 6u, 7u}) {
    pepa::Model model = tomcat_pepa(clients, false);
    pepa::Semantics semantics(model.arena());
    const auto space = pepa::StateSpace::derive(semantics, model.system());
    const auto generator = space.generator();

    util::Stopwatch lump_timer;
    const auto lumping = ctmc::compute_lumping(generator);
    const double lump_ms = lump_timer.milliseconds();

    util::Stopwatch full_timer;
    const auto pi_full = ctmc::steady_state(generator).distribution;
    const double full_ms = full_timer.milliseconds();

    util::Stopwatch quotient_timer;
    const auto quotient = lumping.quotient(generator);
    const auto pi_quotient = ctmc::steady_state(quotient).distribution;
    const double quotient_ms = quotient_timer.milliseconds();

    const auto aggregated = lumping.aggregate(pi_full);
    double max_error = 0.0;
    for (std::size_t b = 0; b < lumping.block_count; ++b) {
      max_error = std::max(max_error, std::abs(aggregated[b] - pi_quotient[b]));
    }
    table.add_row_values(std::to_string(clients),
                         {static_cast<double>(generator.state_count()),
                          static_cast<double>(lumping.block_count), lump_ms,
                          full_ms, quotient_ms, max_error});
  }
  std::cout << table
            << "shape: blocks grow polynomially (population vector) while"
               " full states grow\ncombinatorially; the quotient steady"
               " state is exact to rounding\n\n";
}

void BM_ComputeLumping(benchmark::State& state) {
  pepa::Model model = tomcat_pepa(static_cast<std::size_t>(state.range(0)), false);
  pepa::Semantics semantics(model.arena());
  const auto space = pepa::StateSpace::derive(semantics, model.system());
  const auto generator = space.generator();
  for (auto _ : state) {
    const auto lumping = ctmc::compute_lumping(generator);
    benchmark::DoNotOptimize(lumping.block_count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComputeLumping)->DenseRange(2, 6, 2)->Complexity();

void BM_SolveFullVsQuotient(benchmark::State& state) {
  pepa::Model model = tomcat_pepa(6, false);
  pepa::Semantics semantics(model.arena());
  const auto space = pepa::StateSpace::derive(semantics, model.system());
  const auto generator = space.generator();
  const bool use_quotient = state.range(0) != 0;
  const auto lumping = ctmc::compute_lumping(generator);
  const auto quotient = lumping.quotient(generator);
  for (auto _ : state) {
    const auto pi =
        ctmc::steady_state(use_quotient ? quotient : generator).distribution;
    benchmark::DoNotOptimize(pi[0]);
  }
  state.SetLabel(use_quotient ? "quotient" : "full");
}
BENCHMARK(BM_SolveFullVsQuotient)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "E8: exact aggregation (Markov bisimulation)",
                            report);
}
