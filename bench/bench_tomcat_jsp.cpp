// E4 (paper Figures 8-9): the Tomcat JSP client/server study and the
// direct-servlet-lookup optimisation.
//
// Report: client/server steady-state probabilities, the with/without
// optimisation comparison ("the reduction in the delay spent waiting for
// the response from the server"), and the client-population sweep.
// Benchmarks: state-machine extraction and CTMC solution as the client
// population grows.
#include "bench_common.hpp"

#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "ctmc/passage.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

struct Variant {
  double response_throughput = 0.0;
  double waiting_probability = 0.0;
  std::size_t states = 0;
};

Variant analyse_variant(bool cached, std::size_t clients) {
  chor::TomcatParams params;
  params.clients = clients;
  uml::Model model = chor::tomcat_model(cached, params);
  const auto report = chor::analyse(model);
  Variant variant;
  variant.states = report.state_machines.at(0).state_count;
  for (const auto& [action, value] : report.state_machines[0].throughputs) {
    if (action == "response") variant.response_throughput = value;
  }
  const uml::StateMachine& client = model.state_machines()[0];
  variant.waiting_probability =
      client.states()[*client.find_state("WaitForResponse")].tags.get_double(
          "probability", 0.0);
  return variant;
}

/// Response-time distribution: the first passage from "request just sent"
/// to "response received", i.e. from the post-request state to any state
/// where the client occupies ProcessResponse.  The mean is the paper's
/// "delay spent waiting for the response"; the 90th percentile comes from
/// the passage CDF.
struct ResponseTime {
  double mean = 0.0;
  double p90 = 0.0;
};

ResponseTime response_time(bool cached) {
  auto extraction = chor::extract_state_machines(chor::tomcat_model(cached));
  pepa::Semantics semantics(extraction.model.arena());
  const auto space =
      pepa::StateSpace::derive(semantics, extraction.model.system());
  const auto& arena = extraction.model.arena();

  // Source: the (unique) target of the initial state's 'request' move.
  const auto request = *arena.find_action("request");
  std::size_t source = 0;
  for (const auto& t : space.transitions()) {
    if (t.source == 0 && t.action == request) source = t.target;
  }
  // Targets: client in ProcessResponse.
  const auto processing = *arena.find_constant("ProcessResponse");
  std::vector<std::size_t> targets;
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    if (pepa::occupies(arena, space.state_term(s), processing)) {
      targets.push_back(s);
    }
  }

  const auto generator = space.generator();
  ResponseTime result;
  result.mean = ctmc::mean_passage_time(generator, source, targets);
  std::vector<double> initial(space.state_count(), 0.0);
  initial[source] = 1.0;
  // 90th percentile by bisection on the passage CDF.
  double lo = 0.0, hi = result.mean * 8.0 + 1.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double cdf =
        ctmc::passage_cdf(generator, initial, targets, {mid})[0];
    (cdf < 0.9 ? lo : hi) = mid;
  }
  result.p90 = 0.5 * (lo + hi);
  return result;
}

void report() {
  // The paper's headline comparison at one client.
  const Variant uncached = analyse_variant(false, 1);
  const Variant cached = analyse_variant(true, 1);
  util::TextTable headline({"measure", "uncached", "cached", "factor"});
  headline.add_row_values("response throughput (1/s)",
                          {uncached.response_throughput,
                           cached.response_throughput,
                           cached.response_throughput /
                               uncached.response_throughput});
  headline.add_row_values("P[client waiting]",
                          {uncached.waiting_probability,
                           cached.waiting_probability,
                           uncached.waiting_probability /
                               cached.waiting_probability});
  const double delay_u = uncached.waiting_probability / uncached.response_throughput;
  const double delay_c = cached.waiting_probability / cached.response_throughput;
  headline.add_row_values("mean waiting delay (s)",
                          {delay_u, delay_c, delay_u / delay_c});
  std::cout << headline
            << "shape: the cache bypasses translate+compile, the two slowest"
               " stages\n\n";

  // The paper quantifies the optimisation "in terms of the reduction in
  // the delay spent waiting for the response": the response-time passage
  // distribution, request sent -> response received.
  const ResponseTime rt_uncached = response_time(false);
  const ResponseTime rt_cached = response_time(true);
  util::TextTable response({"response time", "uncached", "cached", "factor"});
  response.add_row_values("mean (s)", {rt_uncached.mean, rt_cached.mean,
                                       rt_uncached.mean / rt_cached.mean});
  response.add_row_values("90th percentile (s)",
                          {rt_uncached.p90, rt_cached.p90,
                           rt_uncached.p90 / rt_cached.p90});
  std::cout << response << '\n';

  // The population sweep: saturation widens the gap.
  util::TextTable sweep({"clients", "states (uncached)", "uncached resp/s",
                         "cached resp/s", "factor"});
  for (std::size_t clients = 1; clients <= 6; ++clients) {
    const Variant u = analyse_variant(false, clients);
    const Variant c = analyse_variant(true, clients);
    sweep.add_row_values(std::to_string(clients),
                         {static_cast<double>(u.states), u.response_throughput,
                          c.response_throughput,
                          c.response_throughput / u.response_throughput});
  }
  std::cout << sweep << '\n';
}

void BM_TomcatExtractAndSolve(benchmark::State& state) {
  chor::TomcatParams params;
  params.clients = static_cast<std::size_t>(state.range(0));
  const uml::Model model = chor::tomcat_model(false, params);
  for (auto _ : state) {
    auto extraction = chor::extract_state_machines(model);
    pepa::Semantics semantics(extraction.model.arena());
    const auto space =
        pepa::StateSpace::derive(semantics, extraction.model.system());
    const auto solved = ctmc::steady_state(space.generator());
    benchmark::DoNotOptimize(solved.distribution[0]);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TomcatExtractAndSolve)->DenseRange(1, 6)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(
      argc, argv, "E4: Tomcat JSP client/server (Figures 8-9)", report);
}
