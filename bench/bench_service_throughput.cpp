// Service-layer throughput: the concurrent analysis scheduler over a
// manifest of the two paper case studies (PDA handover, Tomcat JSP).
//
// Report: jobs/sec and p50/p99 job latency for a cold cache (every job
// solves) vs a warm cache (every job replays), at 1..4 workers.  The
// quantiles come from the service's own choreo_job_seconds histogram,
// read through the snapshot/quantile API the way a dashboard would.
// Benchmarks: one scheduler round trip over the manifest, cold and warm.
#include "bench_common.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "choreographer/paper_models.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "uml/xmi.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

/// `copies` PDA + Tomcat pairs, each pair with its own rate override so
/// every job has a distinct cache key: a cold round solves every job,
/// while resubmitting the same manifest replays all of them.
std::vector<service::JobRequest> paper_manifest(std::size_t copies) {
  std::vector<service::JobRequest> manifest;
  for (std::size_t i = 0; i < copies; ++i) {
    const double rate = 1.0 + 0.25 * static_cast<double>(i);

    service::JobRequest pda;
    pda.name = "pda-" + std::to_string(i);
    pda.project = uml::to_xmi(chor::pda_handover_model());
    pda.options.rates.emplace_back("handover_1", rate);
    manifest.push_back(std::move(pda));

    service::JobRequest tomcat;
    tomcat.name = "tomcat-" + std::to_string(i);
    tomcat.project = uml::to_xmi(chor::tomcat_model(true));
    tomcat.options.rates.emplace_back("request", rate);
    manifest.push_back(std::move(tomcat));
  }
  return manifest;
}

/// Submits the whole manifest to `scheduler` and waits for every job.
/// Returns the wall-clock seconds for the round.
double run_round(service::Scheduler& scheduler,
                 const std::vector<service::JobRequest>& manifest) {
  util::Stopwatch timer;
  std::vector<service::JobHandle> handles;
  handles.reserve(manifest.size());
  for (const service::JobRequest& request : manifest) {
    handles.push_back(scheduler.submit(request));
  }
  for (service::JobHandle& handle : handles) {
    const service::JobResult result = handle.wait();
    if (result.status != service::JobStatus::kDone) {
      std::cerr << "job failed: " << result.error << '\n';
    }
  }
  return timer.seconds();
}

struct RoundStats {
  double jobs_per_second = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
};

/// One measured round against `cache` (primed or not).  The scheduler gets
/// a registry of its own so the latency histogram holds exactly this
/// round's observations; the cache hit rate is read as a delta on the
/// cache's registry, which persists across the priming round.
RoundStats measure_round(service::ResultCache& cache,
                         service::Registry& cache_registry,
                         std::size_t workers,
                         const std::vector<service::JobRequest>& manifest) {
  const std::uint64_t hits_before =
      cache_registry.counter("choreo_cache_hits_total", "").value();
  const std::uint64_t misses_before =
      cache_registry.counter("choreo_cache_misses_total", "").value();

  service::Registry round_registry;
  service::SchedulerOptions options;
  options.workers = workers;
  options.queue_capacity = 16;
  options.cache = &cache;
  options.registry = &round_registry;
  double seconds = 0.0;
  {
    service::Scheduler scheduler(options);
    seconds = run_round(scheduler, manifest);
  }

  const service::Histogram& latency =
      round_registry.histogram("choreo_job_seconds", "");
  const std::uint64_t hits =
      cache_registry.counter("choreo_cache_hits_total", "").value() -
      hits_before;
  const std::uint64_t misses =
      cache_registry.counter("choreo_cache_misses_total", "").value() -
      misses_before;
  RoundStats stats;
  stats.jobs_per_second = static_cast<double>(manifest.size()) / seconds;
  stats.p50_ms = latency.quantile(0.5) * 1e3;
  stats.p99_ms = latency.quantile(0.99) * 1e3;
  const std::uint64_t lookups = hits + misses;
  stats.hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(lookups);
  return stats;
}

void prime_cache(service::ResultCache& cache, std::size_t workers,
                 const std::vector<service::JobRequest>& manifest) {
  service::Registry priming_registry;
  service::SchedulerOptions options;
  options.workers = workers;
  options.queue_capacity = 16;
  options.cache = &cache;
  options.registry = &priming_registry;
  service::Scheduler scheduler(options);
  run_round(scheduler, manifest);
}

void report() {
  const std::vector<service::JobRequest> manifest = paper_manifest(16);
  util::TextTable table(
      {"config", "jobs", "jobs/s", "p50 (ms)", "p99 (ms)", "hit rate"});
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const bool warm : {false, true}) {
      service::Registry cache_registry;
      service::ResultCache cache({.registry = &cache_registry});
      if (warm) prime_cache(cache, workers, manifest);
      const RoundStats stats =
          measure_round(cache, cache_registry, workers, manifest);
      table.add_row_values(
          std::to_string(workers) + (warm ? "w warm" : "w cold"),
          {static_cast<double>(manifest.size()), stats.jobs_per_second,
           stats.p50_ms, stats.p99_ms, stats.hit_rate});
      bench::json_record(
          bench::JsonObject()
              .field("model", "paper_manifest[16 pairs]")
              .field("workers", workers)
              .field("warm_cache", warm)
              .field("jobs", manifest.size())
              .field("seconds",
                     static_cast<double>(manifest.size()) /
                         stats.jobs_per_second)
              .field("jobs_per_second", stats.jobs_per_second)
              .field("p50_ms", stats.p50_ms)
              .field("p99_ms", stats.p99_ms)
              .field("cache_hit_rate", stats.hit_rate));
    }
  }
  std::cout << table << '\n';
}

void bench_round(benchmark::State& state, bool warm) {
  const std::vector<service::JobRequest> manifest = paper_manifest(4);
  for (auto _ : state) {
    state.PauseTiming();
    service::Registry registry;
    service::ResultCache cache({.registry = &registry});
    if (warm) prime_cache(cache, 2, manifest);
    service::SchedulerOptions options;
    options.workers = 2;
    options.cache = &cache;
    options.registry = &registry;
    service::Scheduler scheduler(options);
    state.ResumeTiming();

    run_round(scheduler, manifest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(manifest.size()));
}

void BM_ServiceColdCache(benchmark::State& state) {
  bench_round(state, /*warm=*/false);
}
BENCHMARK(BM_ServiceColdCache)->Unit(benchmark::kMillisecond);

void BM_ServiceWarmCache(benchmark::State& state) {
  bench_round(state, /*warm=*/true);
}
BENCHMARK(BM_ServiceWarmCache)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "service throughput (scheduler + result cache)",
                            report);
}
