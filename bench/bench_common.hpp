// Shared plumbing for the experiment benches.
//
// Every bench binary reproduces one of the paper's evaluation artefacts
// (see DESIGN.md section 4): it first prints the paper-style report table,
// then runs its google-benchmark timings.  `for b in build/bench/*; do $b;
// done` therefore regenerates every table and figure of EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <string>

namespace choreo::bench {

/// Prints the experiment banner, runs `report`, then google-benchmark.
inline int run(int argc, char** argv, const std::string& experiment,
               const std::function<void()>& report) {
  std::cout << "==================================================\n"
            << "  " << experiment << '\n'
            << "==================================================\n";
  report();
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace choreo::bench
