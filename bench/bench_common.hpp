// Shared plumbing for the experiment benches.
//
// Every bench binary reproduces one of the paper's evaluation artefacts
// (see DESIGN.md section 4): it first prints the paper-style report table,
// then runs its google-benchmark timings.  `for b in build/bench/*; do $b;
// done` therefore regenerates every table and figure of EXPERIMENTS.md.
//
// Machine-readable output: report code may append records via json_record();
// when the CHOREO_BENCH_JSON environment variable names a file, run() writes
// the collected records there as a JSON array after the report.  An
// environment variable is used instead of a flag because google-benchmark
// rejects argv it does not recognise.  scripts/bench_report.sh drives this
// to regenerate the committed BENCH_*.json artefacts.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace choreo::bench {

/// Builder for one flat JSON record ({"key": value, ...}).
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value) {
    return raw(key, '"' + value + '"');
  }
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, double value) {
    std::ostringstream formatted;
    formatted.precision(17);
    formatted << value;
    return raw(key, formatted.str());
  }
  JsonObject& field(const std::string& key, std::size_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObject& raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"' + key + "\": " + value;
    return *this;
  }
  std::string body_;
};

/// Records collected during the report, flushed by run().
inline std::vector<std::string>& json_records() {
  static std::vector<std::string> records;
  return records;
}

inline void json_record(const JsonObject& object) {
  json_records().push_back(object.str());
}

/// Writes the collected records to $CHOREO_BENCH_JSON, if set.
inline void flush_json_records() {
  const char* path = std::getenv("CHOREO_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write CHOREO_BENCH_JSON file '" << path << "'\n";
    return;
  }
  out << "[\n";
  for (std::size_t i = 0; i < json_records().size(); ++i) {
    out << "  " << json_records()[i]
        << (i + 1 < json_records().size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::cout << "wrote " << json_records().size() << " records to " << path
            << '\n';
}

/// Prints the experiment banner, runs `report`, then google-benchmark.
inline int run(int argc, char** argv, const std::string& experiment,
               const std::function<void()>& report) {
  std::cout << "==================================================\n"
            << "  " << experiment << '\n'
            << "==================================================\n";
  report();
  flush_json_records();
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace choreo::bench
