// Fluid (mean-field ODE) backend scaling: population-level solving whose
// cost is independent of the client count.
//
// Report, part 1 (fluid_scaling): the client/server family from 10 to 10^6
// clients, solved by the fluid backend.  The vector form has dimension 4
// at every N, so build + integration stay milliseconds while the exact
// chain would be unbuildable long before 10^6.
//
// Report, part 2 (fluid_vs_exact): at N where the exact population
// (count-vector) chain is still solvable, the fluid throughput converges
// to the exact one (the documented tolerance ladder of
// docs/architecture.md) while the exact solve cost grows with N.
#include "bench_common.hpp"

#include <cstddef>
#include <vector>

#include "ctmc/steady_state.hpp"
#include "fluid/analysis.hpp"
#include "fluid/population.hpp"
#include "pepa/families.hpp"
#include "pepa/measures.hpp"
#include "pepa/semantics.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

struct FluidRun {
  std::size_t dimension = 0;
  double build_seconds = 0.0;
  double solve_seconds = 0.0;
  std::size_t steps = 0;
  double throughput = 0.0;
};

FluidRun solve_fluid(std::size_t clients) {
  FluidRun run;
  util::Stopwatch timer;
  auto model = pepa::client_server(
      clients, {.servers = std::max<std::size_t>(1, clients / 5)});
  pepa::Semantics semantics(model.arena());
  const auto request = *model.arena().find_action("request");
  run.build_seconds = timer.seconds();

  timer.restart();
  const auto fluid = fluid::solve_steady(semantics, model.system());
  run.solve_seconds = timer.seconds();
  run.dimension = fluid.form.dimension();
  run.steps = fluid.stats.steps;
  for (const auto& [action, value] : fluid.throughputs) {
    if (action == request) run.throughput = value;
  }
  return run;
}

void report() {
  // Part 1: cost flat in N up to a million clients.
  util::TextTable scaling({"clients", "dimension", "build ms", "solve ms",
                           "ode steps", "throughput (1/s)"});
  for (const std::size_t clients :
       {std::size_t{10}, std::size_t{100}, std::size_t{1000},
        std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    const FluidRun run = solve_fluid(clients);
    scaling.add_row({std::to_string(clients), std::to_string(run.dimension),
                     util::format_double(run.build_seconds * 1e3),
                     util::format_double(run.solve_seconds * 1e3),
                     std::to_string(run.steps),
                     util::format_double(run.throughput)});
    bench::json_record(bench::JsonObject()
                           .field("experiment", "fluid_scaling")
                           .field("clients", clients)
                           .field("dimension", run.dimension)
                           .field("build_seconds", run.build_seconds)
                           .field("solve_seconds", run.solve_seconds)
                           .field("ode_steps", run.steps)
                           .field("throughput", run.throughput));
  }
  std::cout << "fluid solve of client_server(N, servers = N/5): cost is "
               "independent of N\n"
            << scaling << '\n';

  // Part 2: agreement with (and cost against) the exact population chain.
  util::TextTable accuracy({"clients", "exact states", "exact ms", "fluid ms",
                            "relative error"});
  for (const std::size_t clients :
       {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
    auto model = pepa::client_server(
        clients, {.servers = std::max<std::size_t>(1, clients / 5)});
    pepa::Semantics semantics(model.arena());
    const auto request = *model.arena().find_action("request");

    util::Stopwatch timer;
    const auto form = fluid::VectorForm::build(semantics, model.system());
    const auto population = fluid::derive_population(form);
    const auto exact = ctmc::steady_state(population.generator());
    const double exact_throughput =
        population.action_throughput(exact.distribution, request);
    const double exact_seconds = timer.seconds();

    const FluidRun run = solve_fluid(clients);
    const double error =
        std::abs(run.throughput - exact_throughput) / exact_throughput;
    accuracy.add_row({std::to_string(clients),
                      std::to_string(population.state_count()),
                      util::format_double(exact_seconds * 1e3),
                      util::format_double(run.solve_seconds * 1e3),
                      util::format_double(error)});
    bench::json_record(bench::JsonObject()
                           .field("experiment", "fluid_vs_exact")
                           .field("clients", clients)
                           .field("exact_states", population.state_count())
                           .field("exact_seconds", exact_seconds)
                           .field("fluid_seconds", run.solve_seconds)
                           .field("relative_error", error));
  }
  std::cout << "fluid vs the exact population (count-vector) chain\n"
            << accuracy << '\n';
}

void BM_FluidSolve(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_fluid(clients).throughput);
  }
}
BENCHMARK(BM_FluidSolve)->Arg(10)->Arg(1000)->Arg(1'000'000);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv,
                            "Fluid backend: population-level mean-field "
                            "solving, cost flat in N",
                            report);
}
