// E5 (paper Figure 4): the extraction/reflection pipeline itself.
//
// Report: round-trip fidelity -- the layout subtree survives byte-for-byte
// and the structural XMI round-trips losslessly -- plus pipeline latency
// per stage as the model grows.  Benchmarks: preprocess, XMI read/write,
// extraction, and the end-to-end project pipeline.
#include "bench_common.hpp"

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "uml/layout.hpp"
#include "uml/xmi.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "xml/parse.hpp"
#include "xml/write.hpp"

namespace {
using namespace choreo;

xml::Document project_with_layout(std::size_t transmitters) {
  chor::PdaParams params;
  params.transmitters = transmitters;
  xml::Document document = uml::to_xmi(chor::pda_handover_model(params));
  xml::Node& layout = document.root().add_element("Poseidon.layout");
  for (std::size_t i = 0; i < transmitters * 7; ++i) {
    layout.add_element("node")
        .set_attr("ref", "n" + std::to_string(i))
        .set_attr("x", std::to_string(40 * i))
        .set_attr("y", std::to_string(60 + 10 * (i % 7)));
  }
  return document;
}

void report() {
  // Fidelity checks.
  const xml::Document project = project_with_layout(2);
  const auto split = uml::preprocess(project);
  const auto merged = uml::postprocess(split.model, split.layout);
  const bool layout_identical =
      merged.root().find_child("Poseidon.layout")->deep_equals(
          *project.root().find_child("Poseidon.layout"));
  const xml::Document once = uml::to_xmi(uml::from_xmi(split.model));
  const xml::Document twice = uml::to_xmi(uml::from_xmi(once));
  const bool structure_stable = once.root().deep_equals(twice.root());
  std::cout << "layout preserved byte-for-byte: "
            << (layout_identical ? "yes" : "NO") << '\n'
            << "XMI read/write is a round-trip:  "
            << (structure_stable ? "yes" : "NO") << "\n\n";

  // Per-stage latency as the model grows.
  util::TextTable table({"transmitters", "XMI bytes", "parse ms", "extract ms",
                         "solve ms", "reflect+write ms", "total ms"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const xml::Document document = project_with_layout(n);
    const std::string text = xml::to_string(document);

    util::Stopwatch total;
    util::Stopwatch stage;
    const xml::Document parsed = xml::parse_document(text);
    const auto parts = uml::preprocess(parsed);
    uml::Model model = uml::from_xmi(parts.model);
    const double parse_ms = stage.milliseconds();

    stage.restart();
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    const double extract_ms = stage.milliseconds();

    stage.restart();
    const auto report = chor::analyse(model);
    const double solve_ms = stage.milliseconds();

    stage.restart();
    const xml::Document annotated =
        uml::postprocess(uml::to_xmi(model), parts.layout);
    const std::string out = xml::to_string(annotated);
    const double write_ms = stage.milliseconds();

    table.add_row_values(std::to_string(n),
                         {static_cast<double>(text.size()), parse_ms,
                          extract_ms, solve_ms, write_ms,
                          total.milliseconds()});
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(report.activity_graphs.size());
  }
  std::cout << table << '\n';
}

void BM_Preprocess(benchmark::State& state) {
  const xml::Document project = project_with_layout(8);
  for (auto _ : state) {
    auto split = uml::preprocess(project);
    benchmark::DoNotOptimize(split.layout.size());
  }
}
BENCHMARK(BM_Preprocess);

void BM_XmiParse(benchmark::State& state) {
  const std::string text = xml::to_string(project_with_layout(8));
  for (auto _ : state) {
    const auto document = xml::parse_document(text);
    benchmark::DoNotOptimize(document.root().children().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_XmiParse);

void BM_XmiWrite(benchmark::State& state) {
  const xml::Document document = project_with_layout(8);
  for (auto _ : state) {
    const std::string text = xml::to_string(document);
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_XmiWrite);

void BM_EndToEndProject(benchmark::State& state) {
  const xml::Document project =
      project_with_layout(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const xml::Document annotated = chor::analyse_project(project);
    benchmark::DoNotOptimize(annotated.root().children().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EndToEndProject)->Arg(2)->Arg(4)->Arg(8)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(
      argc, argv, "E5: extraction/reflection pipeline (Figure 4)", report);
}
