// E7 (DESIGN.md section 5): ablations of the handover encoding.
//
// The paper says "the handover must happen (because the train is moving)
// but it is not certain to succeed", with the two outcomes equally likely.
// Two design choices are probed:
//
//   1. outcome encoding -- a *race* between continue/abort activities after
//      the move (our default) vs an explicit pair of prioritised firings;
//      the outcome split must track the rate ratio in both encodings;
//   2. firing-rate discipline -- the label-vs-token bounded-capacity rule:
//      making the net-transition label the bottleneck must cap the
//      handover throughput regardless of how eager the token is.
#include "bench_common.hpp"

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "ctmc/steady_state.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {
using namespace choreo;

/// Outcome-as-firings encoding: success and failure are two distinct net
/// transitions of the same priority racing for the token.
std::string firing_outcome_net(double success_rate, double failure_rate) {
  return
      "Session = (download, 2.0).(detect, 1.0).(search, 4.0).AtRisk;\n"
      "AtRisk  = (handover_ok, " + util::format_double(success_rate) + ").Continue"
      " + (handover_fail, " + util::format_double(failure_rate) + ").Abort;\n"
      "Continue = (resume, 2.0).Ret;\n"
      "Abort    = (restart, 2.0).Ret;\n"
      "Ret      = (back, 1000.0).Session;\n"
      "@token Session;\n"
      "@place t1 { cell Session = Session; }\n"
      "@place t2 { cell Session; }\n"
      "@transition handover_ok (rate infty) from t1 to t2;\n"
      "@transition handover_fail (rate infty) from t1 to t2;\n"
      "@transition back (rate infty) from t2 to t1;\n";
}

struct Split {
  double success = 0.0;
  double failure = 0.0;
};

Split firing_split(double success_rate, double failure_rate) {
  auto parsed =
      pepanet::parse_net(firing_outcome_net(success_rate, failure_rate));
  pepanet::NetSemantics semantics(parsed.net);
  const auto space = pepanet::NetStateSpace::derive(semantics);
  const auto solved = ctmc::steady_state(space.generator());
  Split split;
  split.success = pepanet::action_throughput(
      space, solved.distribution, *parsed.net.arena().find_action("handover_ok"));
  split.failure = pepanet::action_throughput(
      space, solved.distribution,
      *parsed.net.arena().find_action("handover_fail"));
  return split;
}

Split race_split(double success_rate, double failure_rate) {
  chor::PdaParams params;
  params.continue_rate = success_rate;
  params.abort_rate = failure_rate;
  uml::Model model = chor::pda_handover_model(params);
  const auto report = chor::analyse(model);
  Split split;
  for (const auto& [action, value] : report.activity_graphs[0].throughputs) {
    if (action == "continue_download_1") split.success = value;
    if (action == "abort_download_1") split.failure = value;
  }
  return split;
}

void report() {
  // Ablation 1: the success fraction under the two encodings.
  util::TextTable outcome({"rate ratio s:f", "race P[success]",
                           "firing P[success]"});
  for (double success : {1.0, 2.0, 4.0}) {
    const Split race = race_split(success, 1.0);
    const Split firing = firing_split(success, 1.0);
    outcome.add_row_values(
        util::format_double(success) + ":1",
        {race.success / (race.success + race.failure),
         firing.success / (firing.success + firing.failure)});
  }
  std::cout << outcome
            << "both encodings track the rate ratio (s/(s+1)); the firing"
               " encoding needs two net\ntransitions and is only expressible"
               " in the .pepanet language, not in the paper's\nsingle-<<move>>"
               " diagram notation -- which is why the extractor uses the"
               " race.\n\n";

  // Ablation 2: the bounded-capacity label.  Cap the handover firing at the
  // net-transition label and watch throughput saturate.
  util::TextTable capacity({"token handover rate", "label rate",
                            "handover throughput"});
  for (double token_rate : {0.5, 2.0, 8.0, 32.0}) {
    for (double label_rate : {0.5, 100.0}) {
      const std::string source =
          "Session = (work, 10.0).Hop;\n"
          "Hop = (hop, " + util::format_double(token_rate) + ").Back;\n"
          "Back = (hop_back, 1000.0).Session;\n"
          "@token Session;\n"
          "@place a { cell Session = Session; }\n"
          "@place b { cell Session; }\n"
          "@transition hop (rate " + util::format_double(label_rate) +
          ") from a to b;\n"
          "@transition hop_back (rate infty) from b to a;\n";
      auto parsed = pepanet::parse_net(source);
      pepanet::NetSemantics semantics(parsed.net);
      const auto space = pepanet::NetStateSpace::derive(semantics);
      const auto solved = ctmc::steady_state(space.generator());
      capacity.add_row_values(
          util::format_double(token_rate),
          {label_rate,
           pepanet::action_throughput(space, solved.distribution,
                                      *parsed.net.arena().find_action("hop"))});
    }
  }
  std::cout << capacity
            << "shape: with label rate 0.5 the firing saturates at 0.5;"
               " with 100 the token drives it\n\n";
}

void BM_RaceEncoding(benchmark::State& state) {
  for (auto _ : state) {
    const Split split = race_split(2.0, 1.0);
    benchmark::DoNotOptimize(split.success);
  }
}
BENCHMARK(BM_RaceEncoding);

void BM_FiringEncoding(benchmark::State& state) {
  for (auto _ : state) {
    const Split split = firing_split(2.0, 1.0);
    benchmark::DoNotOptimize(split.success);
  }
}
BENCHMARK(BM_FiringEncoding);

}  // namespace

int main(int argc, char** argv) {
  return choreo::bench::run(argc, argv, "E7: handover encoding ablations",
                            report);
}
