# Empty dependencies file for simulation_vs_exact.
# This may be replaced when dependencies are built.
