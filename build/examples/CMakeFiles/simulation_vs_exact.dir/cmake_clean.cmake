file(REMOVE_RECURSE
  "CMakeFiles/simulation_vs_exact.dir/simulation_vs_exact.cpp.o"
  "CMakeFiles/simulation_vs_exact.dir/simulation_vs_exact.cpp.o.d"
  "simulation_vs_exact"
  "simulation_vs_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_vs_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
