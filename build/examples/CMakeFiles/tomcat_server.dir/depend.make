# Empty dependencies file for tomcat_server.
# This may be replaced when dependencies are built.
