file(REMOVE_RECURSE
  "CMakeFiles/tomcat_server.dir/tomcat_server.cpp.o"
  "CMakeFiles/tomcat_server.dir/tomcat_server.cpp.o.d"
  "tomcat_server"
  "tomcat_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomcat_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
