# Empty dependencies file for transient_warmup.
# This may be replaced when dependencies are built.
