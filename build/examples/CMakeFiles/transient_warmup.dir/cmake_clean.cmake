file(REMOVE_RECURSE
  "CMakeFiles/transient_warmup.dir/transient_warmup.cpp.o"
  "CMakeFiles/transient_warmup.dir/transient_warmup.cpp.o.d"
  "transient_warmup"
  "transient_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
