# Empty compiler generated dependencies file for pda_handover.
# This may be replaced when dependencies are built.
