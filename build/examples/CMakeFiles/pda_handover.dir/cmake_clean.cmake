file(REMOVE_RECURSE
  "CMakeFiles/pda_handover.dir/pda_handover.cpp.o"
  "CMakeFiles/pda_handover.dir/pda_handover.cpp.o.d"
  "pda_handover"
  "pda_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pda_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
