file(REMOVE_RECURSE
  "CMakeFiles/passage_time.dir/passage_time.cpp.o"
  "CMakeFiles/passage_time.dir/passage_time.cpp.o.d"
  "passage_time"
  "passage_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passage_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
