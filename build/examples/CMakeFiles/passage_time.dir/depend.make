# Empty dependencies file for passage_time.
# This may be replaced when dependencies are built.
