file(REMOVE_RECURSE
  "CMakeFiles/instant_message.dir/instant_message.cpp.o"
  "CMakeFiles/instant_message.dir/instant_message.cpp.o.d"
  "instant_message"
  "instant_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instant_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
