# Empty compiler generated dependencies file for instant_message.
# This may be replaced when dependencies are built.
