file(REMOVE_RECURSE
  "CMakeFiles/dot_gallery.dir/dot_gallery.cpp.o"
  "CMakeFiles/dot_gallery.dir/dot_gallery.cpp.o.d"
  "dot_gallery"
  "dot_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
