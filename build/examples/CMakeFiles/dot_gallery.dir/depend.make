# Empty dependencies file for dot_gallery.
# This may be replaced when dependencies are built.
