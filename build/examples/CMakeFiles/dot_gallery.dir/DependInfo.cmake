
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dot_gallery.cpp" "examples/CMakeFiles/dot_gallery.dir/dot_gallery.cpp.o" "gcc" "examples/CMakeFiles/dot_gallery.dir/dot_gallery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/choreographer/CMakeFiles/choreo_chor.dir/DependInfo.cmake"
  "/root/repo/build/src/uml/CMakeFiles/choreo_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/choreo_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pepanet/CMakeFiles/choreo_pepanet.dir/DependInfo.cmake"
  "/root/repo/build/src/pepa/CMakeFiles/choreo_pepa.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/choreo_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
