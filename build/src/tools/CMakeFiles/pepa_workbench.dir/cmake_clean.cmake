file(REMOVE_RECURSE
  "CMakeFiles/pepa_workbench.dir/pepa_workbench.cpp.o"
  "CMakeFiles/pepa_workbench.dir/pepa_workbench.cpp.o.d"
  "pepa_workbench"
  "pepa_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pepa_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
