# Empty dependencies file for pepa_workbench.
# This may be replaced when dependencies are built.
