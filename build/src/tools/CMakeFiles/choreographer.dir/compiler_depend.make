# Empty compiler generated dependencies file for choreographer.
# This may be replaced when dependencies are built.
