file(REMOVE_RECURSE
  "CMakeFiles/choreographer.dir/choreographer_cli.cpp.o"
  "CMakeFiles/choreographer.dir/choreographer_cli.cpp.o.d"
  "choreographer"
  "choreographer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreographer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
