file(REMOVE_RECURSE
  "libchoreo_sim.a"
)
