
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/batch.cpp" "src/sim/CMakeFiles/choreo_sim.dir/batch.cpp.o" "gcc" "src/sim/CMakeFiles/choreo_sim.dir/batch.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/choreo_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/choreo_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/replicate.cpp" "src/sim/CMakeFiles/choreo_sim.dir/replicate.cpp.o" "gcc" "src/sim/CMakeFiles/choreo_sim.dir/replicate.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/choreo_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/choreo_sim.dir/system.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/choreo_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/choreo_sim.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pepa/CMakeFiles/choreo_pepa.dir/DependInfo.cmake"
  "/root/repo/build/src/pepanet/CMakeFiles/choreo_pepanet.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/choreo_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
