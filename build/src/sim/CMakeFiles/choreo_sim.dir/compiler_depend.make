# Empty compiler generated dependencies file for choreo_sim.
# This may be replaced when dependencies are built.
