file(REMOVE_RECURSE
  "CMakeFiles/choreo_sim.dir/batch.cpp.o"
  "CMakeFiles/choreo_sim.dir/batch.cpp.o.d"
  "CMakeFiles/choreo_sim.dir/engine.cpp.o"
  "CMakeFiles/choreo_sim.dir/engine.cpp.o.d"
  "CMakeFiles/choreo_sim.dir/replicate.cpp.o"
  "CMakeFiles/choreo_sim.dir/replicate.cpp.o.d"
  "CMakeFiles/choreo_sim.dir/system.cpp.o"
  "CMakeFiles/choreo_sim.dir/system.cpp.o.d"
  "CMakeFiles/choreo_sim.dir/transient.cpp.o"
  "CMakeFiles/choreo_sim.dir/transient.cpp.o.d"
  "libchoreo_sim.a"
  "libchoreo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
