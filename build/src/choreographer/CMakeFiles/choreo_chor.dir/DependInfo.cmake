
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/choreographer/dom_extract.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/dom_extract.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/dom_extract.cpp.o.d"
  "/root/repo/src/choreographer/extract_activity.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/extract_activity.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/extract_activity.cpp.o.d"
  "/root/repo/src/choreographer/extract_statechart.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/extract_statechart.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/extract_statechart.cpp.o.d"
  "/root/repo/src/choreographer/measures_spec.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/measures_spec.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/measures_spec.cpp.o.d"
  "/root/repo/src/choreographer/names.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/names.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/names.cpp.o.d"
  "/root/repo/src/choreographer/paper_models.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/paper_models.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/paper_models.cpp.o.d"
  "/root/repo/src/choreographer/pipeline.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/pipeline.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/pipeline.cpp.o.d"
  "/root/repo/src/choreographer/rates.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/rates.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/rates.cpp.o.d"
  "/root/repo/src/choreographer/reflect.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/reflect.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/reflect.cpp.o.d"
  "/root/repo/src/choreographer/sensitivity.cpp" "src/choreographer/CMakeFiles/choreo_chor.dir/sensitivity.cpp.o" "gcc" "src/choreographer/CMakeFiles/choreo_chor.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uml/CMakeFiles/choreo_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/pepanet/CMakeFiles/choreo_pepanet.dir/DependInfo.cmake"
  "/root/repo/build/src/pepa/CMakeFiles/choreo_pepa.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/choreo_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/choreo_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
