file(REMOVE_RECURSE
  "CMakeFiles/choreo_chor.dir/dom_extract.cpp.o"
  "CMakeFiles/choreo_chor.dir/dom_extract.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/extract_activity.cpp.o"
  "CMakeFiles/choreo_chor.dir/extract_activity.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/extract_statechart.cpp.o"
  "CMakeFiles/choreo_chor.dir/extract_statechart.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/measures_spec.cpp.o"
  "CMakeFiles/choreo_chor.dir/measures_spec.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/names.cpp.o"
  "CMakeFiles/choreo_chor.dir/names.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/paper_models.cpp.o"
  "CMakeFiles/choreo_chor.dir/paper_models.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/pipeline.cpp.o"
  "CMakeFiles/choreo_chor.dir/pipeline.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/rates.cpp.o"
  "CMakeFiles/choreo_chor.dir/rates.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/reflect.cpp.o"
  "CMakeFiles/choreo_chor.dir/reflect.cpp.o.d"
  "CMakeFiles/choreo_chor.dir/sensitivity.cpp.o"
  "CMakeFiles/choreo_chor.dir/sensitivity.cpp.o.d"
  "libchoreo_chor.a"
  "libchoreo_chor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_chor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
