file(REMOVE_RECURSE
  "libchoreo_chor.a"
)
