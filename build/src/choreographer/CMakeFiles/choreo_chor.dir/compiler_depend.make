# Empty compiler generated dependencies file for choreo_chor.
# This may be replaced when dependencies are built.
