file(REMOVE_RECURSE
  "libchoreo_util.a"
)
