# Empty dependencies file for choreo_util.
# This may be replaced when dependencies are built.
