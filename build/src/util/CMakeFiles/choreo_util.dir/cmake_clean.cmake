file(REMOVE_RECURSE
  "CMakeFiles/choreo_util.dir/error.cpp.o"
  "CMakeFiles/choreo_util.dir/error.cpp.o.d"
  "CMakeFiles/choreo_util.dir/rng.cpp.o"
  "CMakeFiles/choreo_util.dir/rng.cpp.o.d"
  "CMakeFiles/choreo_util.dir/stats.cpp.o"
  "CMakeFiles/choreo_util.dir/stats.cpp.o.d"
  "CMakeFiles/choreo_util.dir/strings.cpp.o"
  "CMakeFiles/choreo_util.dir/strings.cpp.o.d"
  "CMakeFiles/choreo_util.dir/table.cpp.o"
  "CMakeFiles/choreo_util.dir/table.cpp.o.d"
  "CMakeFiles/choreo_util.dir/thread_pool.cpp.o"
  "CMakeFiles/choreo_util.dir/thread_pool.cpp.o.d"
  "libchoreo_util.a"
  "libchoreo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
