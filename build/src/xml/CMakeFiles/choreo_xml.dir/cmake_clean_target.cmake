file(REMOVE_RECURSE
  "libchoreo_xml.a"
)
