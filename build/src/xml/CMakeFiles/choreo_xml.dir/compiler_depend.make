# Empty compiler generated dependencies file for choreo_xml.
# This may be replaced when dependencies are built.
