
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/dom.cpp" "src/xml/CMakeFiles/choreo_xml.dir/dom.cpp.o" "gcc" "src/xml/CMakeFiles/choreo_xml.dir/dom.cpp.o.d"
  "/root/repo/src/xml/parse.cpp" "src/xml/CMakeFiles/choreo_xml.dir/parse.cpp.o" "gcc" "src/xml/CMakeFiles/choreo_xml.dir/parse.cpp.o.d"
  "/root/repo/src/xml/query.cpp" "src/xml/CMakeFiles/choreo_xml.dir/query.cpp.o" "gcc" "src/xml/CMakeFiles/choreo_xml.dir/query.cpp.o.d"
  "/root/repo/src/xml/write.cpp" "src/xml/CMakeFiles/choreo_xml.dir/write.cpp.o" "gcc" "src/xml/CMakeFiles/choreo_xml.dir/write.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
