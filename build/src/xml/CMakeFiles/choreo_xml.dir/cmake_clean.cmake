file(REMOVE_RECURSE
  "CMakeFiles/choreo_xml.dir/dom.cpp.o"
  "CMakeFiles/choreo_xml.dir/dom.cpp.o.d"
  "CMakeFiles/choreo_xml.dir/parse.cpp.o"
  "CMakeFiles/choreo_xml.dir/parse.cpp.o.d"
  "CMakeFiles/choreo_xml.dir/query.cpp.o"
  "CMakeFiles/choreo_xml.dir/query.cpp.o.d"
  "CMakeFiles/choreo_xml.dir/write.cpp.o"
  "CMakeFiles/choreo_xml.dir/write.cpp.o.d"
  "libchoreo_xml.a"
  "libchoreo_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
