file(REMOVE_RECURSE
  "CMakeFiles/choreo_ctmc.dir/absorption.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/absorption.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/generator.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/generator.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/labelled_lumping.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/labelled_lumping.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/lumping.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/lumping.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/passage.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/passage.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/prism_export.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/prism_export.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/rewards.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/rewards.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/sparse.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/sparse.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/steady_state.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/steady_state.cpp.o.d"
  "CMakeFiles/choreo_ctmc.dir/transient.cpp.o"
  "CMakeFiles/choreo_ctmc.dir/transient.cpp.o.d"
  "libchoreo_ctmc.a"
  "libchoreo_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
