# Empty dependencies file for choreo_ctmc.
# This may be replaced when dependencies are built.
