file(REMOVE_RECURSE
  "libchoreo_ctmc.a"
)
