
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/absorption.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/absorption.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/absorption.cpp.o.d"
  "/root/repo/src/ctmc/generator.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/generator.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/generator.cpp.o.d"
  "/root/repo/src/ctmc/labelled_lumping.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/labelled_lumping.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/labelled_lumping.cpp.o.d"
  "/root/repo/src/ctmc/lumping.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/lumping.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/lumping.cpp.o.d"
  "/root/repo/src/ctmc/passage.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/passage.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/passage.cpp.o.d"
  "/root/repo/src/ctmc/prism_export.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/prism_export.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/prism_export.cpp.o.d"
  "/root/repo/src/ctmc/rewards.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/rewards.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/rewards.cpp.o.d"
  "/root/repo/src/ctmc/sparse.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/sparse.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/sparse.cpp.o.d"
  "/root/repo/src/ctmc/steady_state.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/steady_state.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/steady_state.cpp.o.d"
  "/root/repo/src/ctmc/transient.cpp" "src/ctmc/CMakeFiles/choreo_ctmc.dir/transient.cpp.o" "gcc" "src/ctmc/CMakeFiles/choreo_ctmc.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
