# Empty dependencies file for choreo_uml.
# This may be replaced when dependencies are built.
