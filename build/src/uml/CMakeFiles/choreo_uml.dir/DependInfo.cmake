
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uml/dot.cpp" "src/uml/CMakeFiles/choreo_uml.dir/dot.cpp.o" "gcc" "src/uml/CMakeFiles/choreo_uml.dir/dot.cpp.o.d"
  "/root/repo/src/uml/layout.cpp" "src/uml/CMakeFiles/choreo_uml.dir/layout.cpp.o" "gcc" "src/uml/CMakeFiles/choreo_uml.dir/layout.cpp.o.d"
  "/root/repo/src/uml/model.cpp" "src/uml/CMakeFiles/choreo_uml.dir/model.cpp.o" "gcc" "src/uml/CMakeFiles/choreo_uml.dir/model.cpp.o.d"
  "/root/repo/src/uml/xmi.cpp" "src/uml/CMakeFiles/choreo_uml.dir/xmi.cpp.o" "gcc" "src/uml/CMakeFiles/choreo_uml.dir/xmi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/choreo_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
