file(REMOVE_RECURSE
  "CMakeFiles/choreo_uml.dir/dot.cpp.o"
  "CMakeFiles/choreo_uml.dir/dot.cpp.o.d"
  "CMakeFiles/choreo_uml.dir/layout.cpp.o"
  "CMakeFiles/choreo_uml.dir/layout.cpp.o.d"
  "CMakeFiles/choreo_uml.dir/model.cpp.o"
  "CMakeFiles/choreo_uml.dir/model.cpp.o.d"
  "CMakeFiles/choreo_uml.dir/xmi.cpp.o"
  "CMakeFiles/choreo_uml.dir/xmi.cpp.o.d"
  "libchoreo_uml.a"
  "libchoreo_uml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_uml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
