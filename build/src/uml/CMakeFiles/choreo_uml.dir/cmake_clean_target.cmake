file(REMOVE_RECURSE
  "libchoreo_uml.a"
)
