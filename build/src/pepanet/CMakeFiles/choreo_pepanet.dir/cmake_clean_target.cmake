file(REMOVE_RECURSE
  "libchoreo_pepanet.a"
)
