# Empty compiler generated dependencies file for choreo_pepanet.
# This may be replaced when dependencies are built.
