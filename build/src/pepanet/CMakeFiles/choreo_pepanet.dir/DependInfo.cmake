
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pepanet/net.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net.cpp.o.d"
  "/root/repo/src/pepanet/net_dot.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net_dot.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net_dot.cpp.o.d"
  "/root/repo/src/pepanet/net_parser.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net_parser.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net_parser.cpp.o.d"
  "/root/repo/src/pepanet/net_printer.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net_printer.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/net_printer.cpp.o.d"
  "/root/repo/src/pepanet/netaggregate.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/netaggregate.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/netaggregate.cpp.o.d"
  "/root/repo/src/pepanet/netsemantics.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/netsemantics.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/netsemantics.cpp.o.d"
  "/root/repo/src/pepanet/netstatespace.cpp" "src/pepanet/CMakeFiles/choreo_pepanet.dir/netstatespace.cpp.o" "gcc" "src/pepanet/CMakeFiles/choreo_pepanet.dir/netstatespace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pepa/CMakeFiles/choreo_pepa.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/choreo_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
