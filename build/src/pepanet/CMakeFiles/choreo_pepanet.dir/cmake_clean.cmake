file(REMOVE_RECURSE
  "CMakeFiles/choreo_pepanet.dir/net.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/net.cpp.o.d"
  "CMakeFiles/choreo_pepanet.dir/net_dot.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/net_dot.cpp.o.d"
  "CMakeFiles/choreo_pepanet.dir/net_parser.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/net_parser.cpp.o.d"
  "CMakeFiles/choreo_pepanet.dir/net_printer.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/net_printer.cpp.o.d"
  "CMakeFiles/choreo_pepanet.dir/netaggregate.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/netaggregate.cpp.o.d"
  "CMakeFiles/choreo_pepanet.dir/netsemantics.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/netsemantics.cpp.o.d"
  "CMakeFiles/choreo_pepanet.dir/netstatespace.cpp.o"
  "CMakeFiles/choreo_pepanet.dir/netstatespace.cpp.o.d"
  "libchoreo_pepanet.a"
  "libchoreo_pepanet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_pepanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
