file(REMOVE_RECURSE
  "libchoreo_pepa.a"
)
