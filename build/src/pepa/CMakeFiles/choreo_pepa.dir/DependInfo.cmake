
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pepa/aggregate.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/aggregate.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/aggregate.cpp.o.d"
  "/root/repo/src/pepa/ast.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/ast.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/ast.cpp.o.d"
  "/root/repo/src/pepa/dot.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/dot.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/dot.cpp.o.d"
  "/root/repo/src/pepa/measures.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/measures.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/measures.cpp.o.d"
  "/root/repo/src/pepa/model.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/model.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/model.cpp.o.d"
  "/root/repo/src/pepa/parser.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/parser.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/parser.cpp.o.d"
  "/root/repo/src/pepa/printer.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/printer.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/printer.cpp.o.d"
  "/root/repo/src/pepa/rate.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/rate.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/rate.cpp.o.d"
  "/root/repo/src/pepa/semantics.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/semantics.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/semantics.cpp.o.d"
  "/root/repo/src/pepa/statespace.cpp" "src/pepa/CMakeFiles/choreo_pepa.dir/statespace.cpp.o" "gcc" "src/pepa/CMakeFiles/choreo_pepa.dir/statespace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/choreo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/choreo_ctmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
