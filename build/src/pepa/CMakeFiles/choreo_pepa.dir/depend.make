# Empty dependencies file for choreo_pepa.
# This may be replaced when dependencies are built.
