file(REMOVE_RECURSE
  "CMakeFiles/choreo_pepa.dir/aggregate.cpp.o"
  "CMakeFiles/choreo_pepa.dir/aggregate.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/ast.cpp.o"
  "CMakeFiles/choreo_pepa.dir/ast.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/dot.cpp.o"
  "CMakeFiles/choreo_pepa.dir/dot.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/measures.cpp.o"
  "CMakeFiles/choreo_pepa.dir/measures.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/model.cpp.o"
  "CMakeFiles/choreo_pepa.dir/model.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/parser.cpp.o"
  "CMakeFiles/choreo_pepa.dir/parser.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/printer.cpp.o"
  "CMakeFiles/choreo_pepa.dir/printer.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/rate.cpp.o"
  "CMakeFiles/choreo_pepa.dir/rate.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/semantics.cpp.o"
  "CMakeFiles/choreo_pepa.dir/semantics.cpp.o.d"
  "CMakeFiles/choreo_pepa.dir/statespace.cpp.o"
  "CMakeFiles/choreo_pepa.dir/statespace.cpp.o.d"
  "libchoreo_pepa.a"
  "libchoreo_pepa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choreo_pepa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
