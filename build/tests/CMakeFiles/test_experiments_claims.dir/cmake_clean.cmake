file(REMOVE_RECURSE
  "CMakeFiles/test_experiments_claims.dir/test_experiments_claims.cpp.o"
  "CMakeFiles/test_experiments_claims.dir/test_experiments_claims.cpp.o.d"
  "test_experiments_claims"
  "test_experiments_claims.pdb"
  "test_experiments_claims[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
