# Empty dependencies file for test_experiments_claims.
# This may be replaced when dependencies are built.
