file(REMOVE_RECURSE
  "CMakeFiles/test_pepanet.dir/test_pepanet.cpp.o"
  "CMakeFiles/test_pepanet.dir/test_pepanet.cpp.o.d"
  "test_pepanet"
  "test_pepanet.pdb"
  "test_pepanet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
