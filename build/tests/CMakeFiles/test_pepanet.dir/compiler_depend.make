# Empty compiler generated dependencies file for test_pepanet.
# This may be replaced when dependencies are built.
