file(REMOVE_RECURSE
  "CMakeFiles/test_pepa_statespace.dir/test_pepa_statespace.cpp.o"
  "CMakeFiles/test_pepa_statespace.dir/test_pepa_statespace.cpp.o.d"
  "test_pepa_statespace"
  "test_pepa_statespace.pdb"
  "test_pepa_statespace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepa_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
