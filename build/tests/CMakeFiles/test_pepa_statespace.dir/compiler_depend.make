# Empty compiler generated dependencies file for test_pepa_statespace.
# This may be replaced when dependencies are built.
