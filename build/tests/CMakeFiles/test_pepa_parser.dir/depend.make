# Empty dependencies file for test_pepa_parser.
# This may be replaced when dependencies are built.
