file(REMOVE_RECURSE
  "CMakeFiles/test_pepa_parser.dir/test_pepa_parser.cpp.o"
  "CMakeFiles/test_pepa_parser.dir/test_pepa_parser.cpp.o.d"
  "test_pepa_parser"
  "test_pepa_parser.pdb"
  "test_pepa_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepa_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
