# Empty dependencies file for test_measures_spec.
# This may be replaced when dependencies are built.
