file(REMOVE_RECURSE
  "CMakeFiles/test_measures_spec.dir/test_measures_spec.cpp.o"
  "CMakeFiles/test_measures_spec.dir/test_measures_spec.cpp.o.d"
  "test_measures_spec"
  "test_measures_spec.pdb"
  "test_measures_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measures_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
