# Empty dependencies file for test_pepa_rate.
# This may be replaced when dependencies are built.
