file(REMOVE_RECURSE
  "CMakeFiles/test_pepa_rate.dir/test_pepa_rate.cpp.o"
  "CMakeFiles/test_pepa_rate.dir/test_pepa_rate.cpp.o.d"
  "test_pepa_rate"
  "test_pepa_rate.pdb"
  "test_pepa_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepa_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
