# Empty compiler generated dependencies file for test_ctmc_advanced.
# This may be replaced when dependencies are built.
