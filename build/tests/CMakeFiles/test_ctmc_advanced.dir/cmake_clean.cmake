file(REMOVE_RECURSE
  "CMakeFiles/test_ctmc_advanced.dir/test_ctmc_advanced.cpp.o"
  "CMakeFiles/test_ctmc_advanced.dir/test_ctmc_advanced.cpp.o.d"
  "test_ctmc_advanced"
  "test_ctmc_advanced.pdb"
  "test_ctmc_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctmc_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
