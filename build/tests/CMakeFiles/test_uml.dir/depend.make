# Empty dependencies file for test_uml.
# This may be replaced when dependencies are built.
