file(REMOVE_RECURSE
  "CMakeFiles/test_uml.dir/test_uml.cpp.o"
  "CMakeFiles/test_uml.dir/test_uml.cpp.o.d"
  "test_uml"
  "test_uml.pdb"
  "test_uml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
