file(REMOVE_RECURSE
  "CMakeFiles/test_pepanet_properties.dir/test_pepanet_properties.cpp.o"
  "CMakeFiles/test_pepanet_properties.dir/test_pepanet_properties.cpp.o.d"
  "test_pepanet_properties"
  "test_pepanet_properties.pdb"
  "test_pepanet_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepanet_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
