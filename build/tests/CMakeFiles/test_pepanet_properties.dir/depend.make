# Empty dependencies file for test_pepanet_properties.
# This may be replaced when dependencies are built.
