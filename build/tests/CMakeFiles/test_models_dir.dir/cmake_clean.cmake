file(REMOVE_RECURSE
  "CMakeFiles/test_models_dir.dir/test_models_dir.cpp.o"
  "CMakeFiles/test_models_dir.dir/test_models_dir.cpp.o.d"
  "test_models_dir"
  "test_models_dir.pdb"
  "test_models_dir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
