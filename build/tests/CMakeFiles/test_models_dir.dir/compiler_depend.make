# Empty compiler generated dependencies file for test_models_dir.
# This may be replaced when dependencies are built.
