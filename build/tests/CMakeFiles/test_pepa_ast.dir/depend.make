# Empty dependencies file for test_pepa_ast.
# This may be replaced when dependencies are built.
