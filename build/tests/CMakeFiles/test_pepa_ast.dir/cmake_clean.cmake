file(REMOVE_RECURSE
  "CMakeFiles/test_pepa_ast.dir/test_pepa_ast.cpp.o"
  "CMakeFiles/test_pepa_ast.dir/test_pepa_ast.cpp.o.d"
  "test_pepa_ast"
  "test_pepa_ast.pdb"
  "test_pepa_ast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepa_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
