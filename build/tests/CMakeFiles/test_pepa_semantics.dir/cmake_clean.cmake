file(REMOVE_RECURSE
  "CMakeFiles/test_pepa_semantics.dir/test_pepa_semantics.cpp.o"
  "CMakeFiles/test_pepa_semantics.dir/test_pepa_semantics.cpp.o.d"
  "test_pepa_semantics"
  "test_pepa_semantics.pdb"
  "test_pepa_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepa_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
