# Empty dependencies file for test_pepa_semantics.
# This may be replaced when dependencies are built.
