file(REMOVE_RECURSE
  "CMakeFiles/test_aggregate.dir/test_aggregate.cpp.o"
  "CMakeFiles/test_aggregate.dir/test_aggregate.cpp.o.d"
  "test_aggregate"
  "test_aggregate.pdb"
  "test_aggregate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
