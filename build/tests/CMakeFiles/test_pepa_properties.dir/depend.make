# Empty dependencies file for test_pepa_properties.
# This may be replaced when dependencies are built.
