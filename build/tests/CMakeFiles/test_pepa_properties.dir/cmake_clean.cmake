file(REMOVE_RECURSE
  "CMakeFiles/test_pepa_properties.dir/test_pepa_properties.cpp.o"
  "CMakeFiles/test_pepa_properties.dir/test_pepa_properties.cpp.o.d"
  "test_pepa_properties"
  "test_pepa_properties.pdb"
  "test_pepa_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pepa_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
