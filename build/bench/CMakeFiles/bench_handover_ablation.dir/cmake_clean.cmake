file(REMOVE_RECURSE
  "CMakeFiles/bench_handover_ablation.dir/bench_handover_ablation.cpp.o"
  "CMakeFiles/bench_handover_ablation.dir/bench_handover_ablation.cpp.o.d"
  "bench_handover_ablation"
  "bench_handover_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_handover_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
