# Empty dependencies file for bench_handover_ablation.
# This may be replaced when dependencies are built.
