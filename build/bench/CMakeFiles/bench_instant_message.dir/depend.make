# Empty dependencies file for bench_instant_message.
# This may be replaced when dependencies are built.
