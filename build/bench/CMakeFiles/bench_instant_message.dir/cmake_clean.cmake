file(REMOVE_RECURSE
  "CMakeFiles/bench_instant_message.dir/bench_instant_message.cpp.o"
  "CMakeFiles/bench_instant_message.dir/bench_instant_message.cpp.o.d"
  "bench_instant_message"
  "bench_instant_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instant_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
