file(REMOVE_RECURSE
  "CMakeFiles/bench_tomcat_jsp.dir/bench_tomcat_jsp.cpp.o"
  "CMakeFiles/bench_tomcat_jsp.dir/bench_tomcat_jsp.cpp.o.d"
  "bench_tomcat_jsp"
  "bench_tomcat_jsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tomcat_jsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
