# Empty dependencies file for bench_tomcat_jsp.
# This may be replaced when dependencies are built.
