# Empty dependencies file for bench_file_protocol.
# This may be replaced when dependencies are built.
