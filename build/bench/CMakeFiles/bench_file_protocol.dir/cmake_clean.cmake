file(REMOVE_RECURSE
  "CMakeFiles/bench_file_protocol.dir/bench_file_protocol.cpp.o"
  "CMakeFiles/bench_file_protocol.dir/bench_file_protocol.cpp.o.d"
  "bench_file_protocol"
  "bench_file_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
