# Empty compiler generated dependencies file for bench_pda_handover.
# This may be replaced when dependencies are built.
