file(REMOVE_RECURSE
  "CMakeFiles/bench_pda_handover.dir/bench_pda_handover.cpp.o"
  "CMakeFiles/bench_pda_handover.dir/bench_pda_handover.cpp.o.d"
  "bench_pda_handover"
  "bench_pda_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pda_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
