// Strong-equivalence aggregation of PEPA-net marking graphs (see
// pepa/aggregate.hpp for the plain-PEPA counterpart).
#pragma once

#include "ctmc/labelled_lumping.hpp"
#include "pepanet/netstatespace.hpp"

namespace choreo::pepanet {

/// Coarsest strong-equivalence aggregation of a marking graph.
ctmc::LabelledLumping aggregate(const NetStateSpace& space);

}  // namespace choreo::pepanet
