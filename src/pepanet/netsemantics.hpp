// Operational semantics of PEPA nets over markings.
//
// Two kinds of change of state (paper Section 2.2):
//   - *transitions* (A_t): ordinary PEPA activities inside one place.  The
//     place context (the cooperation fold of its slots, vacant cells being
//     inert) performs a one-step derivative; firing action types are
//     suppressed locally.
//   - *firings* (A_f, Definitions 2-6): a net transition t with firing type
//     alpha fires by selecting an *enabling* (one token with an alpha
//     derivative per input place), an *output* (one vacant cell per output
//     place) and a type-preserving bijection between them; markings update
//     by moving each selected token, evolved by its alpha-derivative, into
//     its assigned cell.  Only transitions of maximal priority among those
//     with concession may fire (Definition 5).
//
// Firing rates follow the apparent-rate discipline (see DESIGN.md §5.1):
// the label rate of t cooperates (bounded-capacity min) with each selected
// token's apparent alpha-rate; each token's choice among several alpha
// derivatives contributes its proportional share; and the equiprobable
// output/bijection variants of one enabling split the enabling's rate
// equally.
#pragma once

#include <cstdint>
#include <vector>

#include "pepa/semantics.hpp"
#include "pepanet/net.hpp"

namespace choreo::pepanet {

/// One move of the marking graph.
struct NetMove {
  enum class Kind : std::uint8_t { kLocal, kFiring };
  Kind kind = Kind::kLocal;
  pepa::ActionId action = 0;
  pepa::Rate rate;
  Marking target;
  /// kLocal: the place whose context moved; kFiring: unused (=0).
  PlaceId place = 0;
  /// kFiring: which net transition fired; kLocal: unused (=0).
  NetTransitionId transition = 0;
};

class NetSemantics {
 public:
  explicit NetSemantics(PepaNet& net) : net_(net), pepa_(net.arena()) {}

  PepaNet& net() noexcept { return net_; }
  pepa::Semantics& pepa() noexcept { return pepa_; }

  /// All moves (local transitions and enabled firings) from `marking`.
  std::vector<NetMove> moves(const Marking& marking);

  /// Whether net transition `t` has concession for its firing type in
  /// `marking` (Definition 4), ignoring priorities.
  bool has_concession(const Marking& marking, NetTransitionId t);

  /// Builds the context term of `place` from the marking (vacant -> Stop):
  /// the cooperation fold of its slots and statics.  For a net with a
  /// single place and no net transitions this term IS the whole system,
  /// which lets plain-PEPA backends (e.g. the fluid ODE) bypass the
  /// marking graph.
  pepa::ProcessId place_context(const Marking& marking, PlaceId place);

 private:
  void collect_local_moves(const Marking& marking, PlaceId place,
                           std::vector<NetMove>& out);
  void collect_firings(const Marking& marking, NetTransitionId t,
                       std::vector<NetMove>& out);

  PepaNet& net_;
  pepa::Semantics pepa_;
};

/// Hash functor for markings (FNV-style over slot ids).
struct MarkingHash {
  std::size_t operator()(const Marking& marking) const noexcept;
};

}  // namespace choreo::pepanet
