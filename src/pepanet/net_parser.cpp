#include "pepanet/net_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "pepa/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::pepanet {

namespace {

/// Finds the offset where net declarations begin: the first '@' (outside
/// comments) followed by token/place/transition.  '@system' belongs to the
/// embedded PEPA model.  Returns npos when there are no net declarations.
std::size_t find_net_section(std::string_view source) {
  std::size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '%' || c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) {
        ++i;
      }
      i += 2;
      continue;
    }
    if (c == '@') {
      std::size_t j = i + 1;
      while (j < source.size() &&
             std::isspace(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      std::size_t k = j;
      while (k < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[k])) ||
              source[k] == '_')) {
        ++k;
      }
      const std::string_view word = source.substr(j, k - j);
      if (word == "token" || word == "place" || word == "transition") return i;
    }
    ++i;
  }
  return std::string_view::npos;
}

/// Minimal tokeniser for the declaration section.
class NetLexer {
 public:
  NetLexer(std::string_view source, std::string source_name, std::size_t line0)
      : source_(source), source_name_(std::move(source_name)), line_(line0) {}

  struct Token {
    enum class Kind { kIdent, kNumber, kSymbol, kEnd } kind = Kind::kEnd;
    std::string text;
    double number = 0.0;
    std::size_t line = 1;
  };

  Token next() {
    skip_trivia();
    Token token;
    token.line = line_;
    if (i_ >= source_.size()) return token;
    const char c = source_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t begin = i_;
      while (i_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[i_])) ||
              source_[i_] == '_')) {
        advance();
      }
      token.kind = Token::Kind::kIdent;
      token.text = std::string(source_.substr(begin, i_ - begin));
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t begin = i_;
      while (i_ < source_.size() &&
             (std::isdigit(static_cast<unsigned char>(source_[i_])) ||
              source_[i_] == '.' || source_[i_] == 'e' || source_[i_] == 'E' ||
              ((source_[i_] == '+' || source_[i_] == '-') &&
               (source_[i_ - 1] == 'e' || source_[i_ - 1] == 'E')))) {
        advance();
      }
      token.kind = Token::Kind::kNumber;
      token.text = std::string(source_.substr(begin, i_ - begin));
      token.number = std::stod(token.text);
      return token;
    }
    token.kind = Token::Kind::kSymbol;
    token.text = std::string(1, c);
    advance();
    return token;
  }

  Token peek() {
    const std::size_t save_i = i_;
    const std::size_t save_line = line_;
    Token token = next();
    i_ = save_i;
    line_ = save_line;
    return token;
  }

  [[noreturn]] void fail(const Token& at, const std::string& message) const {
    throw util::ParseError(source_name_, at.line, 1, message);
  }

 private:
  void advance() {
    if (source_[i_] == '\n') ++line_;
    ++i_;
  }
  void skip_trivia() {
    while (i_ < source_.size()) {
      const char c = source_[i_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && i_ + 1 < source_.size() && source_[i_ + 1] == '/') {
        while (i_ < source_.size() && source_[i_] != '\n') advance();
      } else if (c == '%' || c == '#') {
        while (i_ < source_.size() && source_[i_] != '\n') advance();
      } else if (c == '/' && i_ + 1 < source_.size() && source_[i_ + 1] == '*') {
        advance();
        advance();
        while (i_ + 1 < source_.size() &&
               !(source_[i_] == '*' && source_[i_ + 1] == '/')) {
          advance();
        }
        if (i_ + 1 < source_.size()) {
          advance();
          advance();
        }
      } else {
        return;
      }
    }
  }

  std::string_view source_;
  std::string source_name_;
  std::size_t i_ = 0;
  std::size_t line_;
};

using Token = NetLexer::Token;

class NetParser {
 public:
  NetParser(std::string_view declarations, std::string source_name,
            std::size_t line0, pepa::Model model)
      : lexer_(declarations, std::move(source_name), line0),
        parameters_(model.parameters()),
        net_(std::move(model.arena())) {}

  ParsedNet run() {
    while (true) {
      const Token token = lexer_.next();
      if (token.kind == Token::Kind::kEnd) break;
      if (token.kind != Token::Kind::kSymbol || token.text != "@") {
        lexer_.fail(token, util::msg("expected a net declaration ('@'), found '",
                                     token.text, "'"));
      }
      const Token keyword = expect_ident("a declaration keyword");
      if (keyword.text == "token") {
        parse_token_decl();
      } else if (keyword.text == "place") {
        parse_place_decl();
      } else if (keyword.text == "transition") {
        parse_transition_decl();
      } else {
        lexer_.fail(keyword,
                    util::msg("unknown declaration '@", keyword.text, "'"));
      }
    }
    // Cooperation structure, once all firing types are known (they must be
    // excluded from the shared alphabets): explicit 'sync' declarations win,
    // places without them get the shared-alphabet default.
    for (PlaceId place = 0; place < net_.place_count(); ++place) {
      if (!explicit_syncs_[place].empty()) {
        net_.set_coop_sets(place, explicit_syncs_[place]);
      } else {
        net_.use_shared_alphabet_cooperation(place);
      }
    }
    net_.validate();
    ParsedNet parsed;
    parsed.net = std::move(net_);
    parsed.parameters = std::move(parameters_);
    return parsed;
  }

 private:
  Token expect_ident(const char* what) {
    const Token token = lexer_.next();
    if (token.kind != Token::Kind::kIdent) {
      lexer_.fail(token, util::msg("expected ", what));
    }
    return token;
  }
  void expect_symbol(std::string_view text) {
    const Token token = lexer_.next();
    if (token.kind != Token::Kind::kSymbol || token.text != text) {
      lexer_.fail(token, util::msg("expected '", text, "'"));
    }
  }

  pepa::ProcessId constant_term(const Token& name) {
    auto constant = net_.arena().find_constant(name.text);
    if (!constant || !net_.arena().is_defined(*constant)) {
      lexer_.fail(name, util::msg("'", name.text,
                                  "' is not a defined PEPA process"));
    }
    return net_.arena().constant(*constant);
  }

  void parse_token_decl() {
    const Token name = expect_ident("a token type name");
    const pepa::ProcessId initial = constant_term(name);
    expect_symbol(";");
    net_.add_token_type(name.text, initial);
  }

  void parse_place_decl() {
    const Token name = expect_ident("a place name");
    const PlaceId place = net_.add_place(name.text);
    explicit_syncs_.emplace_back();
    expect_symbol("{");
    while (true) {
      const Token token = lexer_.next();
      if (token.kind == Token::Kind::kSymbol && token.text == "}") return;
      if (token.kind != Token::Kind::kIdent) {
        lexer_.fail(token, "expected 'cell', 'static' or '}'");
      }
      if (token.text == "cell") {
        const Token type_name = expect_ident("a token type name");
        auto type = net_.find_token_type(type_name.text);
        if (!type) {
          lexer_.fail(type_name, util::msg("unknown token type '",
                                           type_name.text, "'"));
        }
        pepa::ProcessId initial = kVacant;
        Token separator = lexer_.next();
        if (separator.kind == Token::Kind::kSymbol && separator.text == "=") {
          initial = constant_term(expect_ident("an initial process name"));
          separator = lexer_.next();
        }
        if (separator.kind != Token::Kind::kSymbol || separator.text != ";") {
          lexer_.fail(separator, "expected ';' after cell declaration");
        }
        net_.add_cell(place, *type, initial);
      } else if (token.text == "static") {
        const pepa::ProcessId initial =
            constant_term(expect_ident("a process name"));
        expect_symbol(";");
        net_.add_static(place, initial);
      } else if (token.text == "sync") {
        // Explicit cooperation set for the next fold boundary (slot i vs
        // the fold of slots i+1..); overrides the shared-alphabet default
        // for the whole place.
        expect_symbol("<");
        std::vector<pepa::ActionId> set;
        Token item = lexer_.next();
        while (!(item.kind == Token::Kind::kSymbol && item.text == ">")) {
          if (item.kind != Token::Kind::kIdent) {
            lexer_.fail(item, "expected an action name in sync set");
          }
          set.push_back(net_.arena().action(item.text));
          item = lexer_.next();
          if (item.kind == Token::Kind::kSymbol && item.text == ",") {
            item = lexer_.next();
          }
        }
        expect_symbol(";");
        explicit_syncs_.back().push_back(std::move(set));
      } else {
        lexer_.fail(token,
                    util::msg("expected 'cell', 'static' or 'sync', found '",
                              token.text, "'"));
      }
    }
  }

  pepa::Rate parse_rate() {
    Token token = lexer_.next();
    double weight = 1.0;
    bool have_weight = false;
    if (token.kind == Token::Kind::kNumber) {
      weight = token.number;
      have_weight = true;
    } else if (token.kind == Token::Kind::kIdent && token.text != "infty" &&
               token.text != "T") {
      for (const auto& [name, value] : parameters_) {
        if (name == token.text) {
          weight = value;
          have_weight = true;
          break;
        }
      }
      if (!have_weight) {
        lexer_.fail(token, util::msg("unknown rate parameter '", token.text, "'"));
      }
    }
    if (have_weight) {
      const Token follow = lexer_.peek();
      if (follow.kind == Token::Kind::kSymbol && follow.text == "*") {
        lexer_.next();
        const Token passive = expect_ident("'infty'");
        if (passive.text != "infty" && passive.text != "T") {
          lexer_.fail(passive, "expected 'infty' after '*'");
        }
        return pepa::Rate::passive(weight);
      }
      return pepa::Rate::active(weight);
    }
    if (token.kind == Token::Kind::kIdent &&
        (token.text == "infty" || token.text == "T")) {
      return pepa::Rate::passive(1.0);
    }
    lexer_.fail(token, "expected a rate");
  }

  std::vector<PlaceId> parse_place_list(const char* terminator_word) {
    std::vector<PlaceId> places;
    while (true) {
      const Token name = expect_ident("a place name");
      auto place = net_.find_place(name.text);
      if (!place) {
        lexer_.fail(name, util::msg("unknown place '", name.text, "'"));
      }
      places.push_back(*place);
      const Token token = lexer_.peek();
      if (token.kind == Token::Kind::kSymbol && token.text == ",") {
        lexer_.next();
        continue;
      }
      if (terminator_word[0] != '\0') {
        const Token word = expect_ident(terminator_word);
        if (word.text != terminator_word) {
          lexer_.fail(word, util::msg("expected '", terminator_word, "'"));
        }
      }
      return places;
    }
  }

  void parse_transition_decl() {
    const Token name = expect_ident("a transition (firing action) name");
    expect_symbol("(");
    Token keyword = expect_ident("'rate'");
    if (keyword.text != "rate") lexer_.fail(keyword, "expected 'rate'");
    const pepa::Rate rate = parse_rate();
    unsigned priority = 1;
    Token token = lexer_.next();
    if (token.kind == Token::Kind::kSymbol && token.text == ",") {
      keyword = expect_ident("'priority'");
      if (keyword.text != "priority") lexer_.fail(keyword, "expected 'priority'");
      const Token number = lexer_.next();
      if (number.kind != Token::Kind::kNumber || number.number < 0.0) {
        lexer_.fail(number, "expected a non-negative priority");
      }
      priority = static_cast<unsigned>(number.number);
      token = lexer_.next();
    }
    if (token.kind != Token::Kind::kSymbol || token.text != ")") {
      lexer_.fail(token, "expected ')'");
    }
    Token from = expect_ident("'from'");
    if (from.text != "from") lexer_.fail(from, "expected 'from'");
    const std::vector<PlaceId> inputs = parse_place_list("to");
    const std::vector<PlaceId> outputs = parse_place_list("");
    expect_symbol(";");
    net_.add_transition(name.text, rate, inputs, outputs, priority);
  }

  NetLexer lexer_;
  std::vector<std::pair<std::string, double>> parameters_;
  PepaNet net_;
  /// Per place: explicit 'sync' cooperation sets (empty = use the default).
  std::vector<std::vector<std::vector<pepa::ActionId>>> explicit_syncs_;
};

}  // namespace

ParsedNet parse_net(std::string_view source, std::string source_name) {
  const std::size_t split = find_net_section(source);
  if (split == std::string_view::npos) {
    throw util::ParseError(source_name, 1, 1,
                           "no net declarations (@token/@place/@transition)");
  }
  const std::string_view pepa_part = source.substr(0, split);
  const std::string_view net_part = source.substr(split);
  const std::size_t line0 =
      1 + static_cast<std::size_t>(
              std::count(pepa_part.begin(), pepa_part.end(), '\n'));

  pepa::Model model = pepa::parse_model(pepa_part, source_name);
  return NetParser(net_part, std::move(source_name), line0, std::move(model)).run();
}

ParsedNet parse_net_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw util::Error(util::msg("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const std::string contents = buffer.str();
  return parse_net(contents, path);
}

}  // namespace choreo::pepanet
