#include "pepanet/net_dot.hpp"

#include <sstream>

#include "pepa/dot.hpp"
#include "pepa/printer.hpp"
#include "pepanet/net_printer.hpp"
#include "util/strings.hpp"

namespace choreo::pepanet {

std::string structure_to_dot(const PepaNet& net) {
  std::ostringstream out;
  out << "digraph pepanet {\n"
      << "  rankdir=LR;\n";
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    const Place& place = net.place(p);
    std::string label = place.name;
    for (const Slot& slot : place.slots) {
      label += "\\n";
      if (slot.kind == Slot::Kind::kCell) {
        label += "[" + net.token_type(slot.cell_type).name +
                 (slot.initial == kVacant ? ": _]" : ": o]");
      } else {
        label += "|" + pepa::to_string(net.arena(), slot.initial) + "|";
      }
    }
    out << "  p" << p << " [shape=ellipse, label=\"" << pepa::dot_escape(label)
        << "\"];\n";
  }
  for (NetTransitionId t = 0; t < net.transition_count(); ++t) {
    const NetTransition& transition = net.transition(t);
    out << "  t" << t << " [shape=box, style=filled, fillcolor=lightgray,"
        << " label=\"" << pepa::dot_escape(transition.name) << "\\n("
        << transition.rate.to_string() << ", prio " << transition.priority
        << ")\"];\n";
    for (PlaceId input : transition.inputs) {
      out << "  p" << input << " -> t" << t << ";\n";
    }
    for (PlaceId output : transition.outputs) {
      out << "  t" << t << " -> p" << output << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string marking_graph_to_dot(const PepaNet& net, const NetStateSpace& space) {
  std::ostringstream out;
  out << "digraph markings {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    out << "  m" << m << " [label=\""
        << pepa::dot_escape(marking_to_string(net, space.marking(m))) << '"'
        << (m == 0 ? ", style=bold" : "") << "];\n";
  }
  for (const MarkingTransition& t : space.transitions()) {
    out << "  m" << t.source << " -> m" << t.target << " [label=\""
        << pepa::dot_escape(net.arena().action_name(t.action)) << ", "
        << util::format_double(t.rate) << '"'
        << (t.is_firing ? ", style=bold" : "") << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace choreo::pepanet
