#include "pepanet/netaggregate.hpp"

namespace choreo::pepanet {

ctmc::LabelledLumping aggregate(const NetStateSpace& space) {
  std::vector<ctmc::LabelledTransition> transitions;
  transitions.reserve(space.transitions().size());
  for (const MarkingTransition& t : space.transitions()) {
    transitions.push_back({t.source, t.target, t.action, t.rate});
  }
  return ctmc::compute_labelled_lumping(space.marking_count(), transitions);
}

}  // namespace choreo::pepanet
