#include "pepanet/net.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace choreo::pepanet {

TokenTypeId PepaNet::add_token_type(std::string name, pepa::ProcessId initial) {
  if (find_token_type(name)) {
    throw util::ModelError(util::msg("token type '", name, "' already exists"));
  }
  token_types_.push_back({std::move(name), initial});
  return static_cast<TokenTypeId>(token_types_.size() - 1);
}

PlaceId PepaNet::add_place(std::string name) {
  if (find_place(name)) {
    throw util::ModelError(util::msg("place '", name, "' already exists"));
  }
  places_.push_back({std::move(name), {}, {}});
  place_offsets_.push_back(total_slots_);
  return static_cast<PlaceId>(places_.size() - 1);
}

std::size_t PepaNet::add_cell(PlaceId place, TokenTypeId type,
                              pepa::ProcessId initial) {
  CHOREO_ASSERT(place == places_.size() - 1);  // places are built in order
  CHOREO_ASSERT(type < token_types_.size());
  Slot slot;
  slot.kind = Slot::Kind::kCell;
  slot.cell_type = type;
  slot.initial = initial;
  places_[place].slots.push_back(slot);
  ++total_slots_;
  return places_[place].slots.size() - 1;
}

std::size_t PepaNet::add_static(PlaceId place, pepa::ProcessId initial) {
  CHOREO_ASSERT(place == places_.size() - 1);
  CHOREO_ASSERT(initial != kVacant);
  Slot slot;
  slot.kind = Slot::Kind::kStatic;
  slot.initial = initial;
  places_[place].slots.push_back(slot);
  ++total_slots_;
  return places_[place].slots.size() - 1;
}

void PepaNet::set_coop_sets(PlaceId place,
                            std::vector<std::vector<pepa::ActionId>> sets) {
  CHOREO_ASSERT(place < places_.size());
  const std::size_t expected =
      places_[place].slots.empty() ? 0 : places_[place].slots.size() - 1;
  if (sets.size() != expected) {
    throw util::ModelError(util::msg("place '", places_[place].name, "' needs ",
                                     expected, " cooperation sets, got ",
                                     sets.size()));
  }
  for (auto& set : sets) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  places_[place].coop_sets = std::move(sets);
}

void PepaNet::use_shared_alphabet_cooperation(PlaceId place) {
  CHOREO_ASSERT(place < places_.size());
  Place& p = places_[place];
  if (p.slots.size() <= 1) {
    p.coop_sets.clear();
    return;
  }
  // The alphabet of a cell is the alphabet of its *type* (what any token of
  // the type might do while resident), not of the current content.
  auto slot_alphabet = [&](const Slot& slot) {
    const pepa::ProcessId term = slot.kind == Slot::Kind::kCell
                                     ? token_types_[slot.cell_type].initial
                                     : slot.initial;
    std::vector<pepa::ActionId> all = pepa::alphabet(arena_, term);
    std::vector<pepa::ActionId> out;
    for (pepa::ActionId a : all) {
      if (!is_firing_type(a)) out.push_back(a);
    }
    return out;
  };
  std::vector<std::vector<pepa::ActionId>> alphabets;
  alphabets.reserve(p.slots.size());
  for (const Slot& slot : p.slots) alphabets.push_back(slot_alphabet(slot));

  p.coop_sets.assign(p.slots.size() - 1, {});
  // Right-fold structure: set i synchronises slot i with slots i+1.. .
  std::vector<pepa::ActionId> rest;
  for (std::size_t i = p.slots.size() - 1; i-- > 0;) {
    rest = pepa::set_union(rest, alphabets[i + 1]);
    p.coop_sets[i] = pepa::set_intersection(alphabets[i], rest);
  }
}

NetTransitionId PepaNet::add_transition(std::string name, pepa::Rate rate,
                                        std::vector<PlaceId> inputs,
                                        std::vector<PlaceId> outputs,
                                        unsigned priority) {
  NetTransition transition;
  transition.action = arena_.action(name);
  transition.name = std::move(name);
  transition.rate = rate;
  transition.priority = priority;
  transition.inputs = std::move(inputs);
  transition.outputs = std::move(outputs);
  transitions_.push_back(std::move(transition));
  const pepa::ActionId action = transitions_.back().action;
  if (!is_firing_type(action)) {
    firing_types_.insert(
        std::upper_bound(firing_types_.begin(), firing_types_.end(), action),
        action);
  }
  return static_cast<NetTransitionId>(transitions_.size() - 1);
}

const TokenType& PepaNet::token_type(TokenTypeId id) const {
  CHOREO_ASSERT(id < token_types_.size());
  return token_types_[id];
}

std::optional<TokenTypeId> PepaNet::find_token_type(std::string_view name) const {
  for (TokenTypeId id = 0; id < token_types_.size(); ++id) {
    if (token_types_[id].name == name) return id;
  }
  return std::nullopt;
}

const Place& PepaNet::place(PlaceId id) const {
  CHOREO_ASSERT(id < places_.size());
  return places_[id];
}

std::optional<PlaceId> PepaNet::find_place(std::string_view name) const {
  for (PlaceId id = 0; id < places_.size(); ++id) {
    if (places_[id].name == name) return id;
  }
  return std::nullopt;
}

const NetTransition& PepaNet::transition(NetTransitionId id) const {
  CHOREO_ASSERT(id < transitions_.size());
  return transitions_[id];
}

std::size_t PepaNet::slot_offset(PlaceId place, std::size_t slot) const {
  CHOREO_ASSERT(place < places_.size());
  CHOREO_ASSERT(slot < places_[place].slots.size());
  return place_offsets_[place] + slot;
}

bool PepaNet::is_firing_type(pepa::ActionId action) const {
  return std::binary_search(firing_types_.begin(), firing_types_.end(), action);
}

Marking PepaNet::initial_marking() const {
  Marking marking;
  marking.reserve(total_slots_);
  for (const Place& place : places_) {
    for (const Slot& slot : place.slots) marking.push_back(slot.initial);
  }
  return marking;
}

void PepaNet::validate() const {
  if (places_.empty()) throw util::ModelError("net has no places");
  for (const Place& place : places_) {
    bool has_cell = false;
    for (const Slot& slot : place.slots) {
      has_cell = has_cell || slot.kind == Slot::Kind::kCell;
    }
    if (!has_cell) {
      throw util::ModelError(util::msg(
          "place '", place.name,
          "' has no cell: every PEPA net context contains at least one cell"));
    }
    if (!place.coop_sets.empty() &&
        place.coop_sets.size() != place.slots.size() - 1) {
      throw util::ModelError(util::msg("place '", place.name,
                                       "' has inconsistent cooperation sets"));
    }
    for (const auto& set : place.coop_sets) {
      for (pepa::ActionId action : set) {
        if (is_firing_type(action)) {
          throw util::ModelError(util::msg(
              "place '", place.name, "' cooperates on firing type '",
              arena_.action_name(action),
              "': firing types only occur as net-level transitions"));
        }
      }
    }
  }
  for (const NetTransition& transition : transitions_) {
    if (transition.inputs.empty() || transition.outputs.empty()) {
      throw util::ModelError(util::msg("net transition '", transition.name,
                                       "' needs input and output places"));
    }
    if (transition.inputs.size() != transition.outputs.size()) {
      throw util::ModelError(util::msg(
          "net transition '", transition.name, "' is unbalanced: ",
          transition.inputs.size(), " inputs vs ", transition.outputs.size(),
          " outputs (each fired token passes through the transition)"));
    }
    auto check_distinct = [&](const std::vector<PlaceId>& places,
                              const char* role) {
      std::unordered_set<PlaceId> seen;
      for (PlaceId id : places) {
        if (id >= places_.size()) {
          throw util::ModelError(util::msg("net transition '", transition.name,
                                           "' references an unknown place"));
        }
        if (!seen.insert(id).second) {
          throw util::ModelError(util::msg("net transition '", transition.name,
                                           "' lists place '", places_[id].name,
                                           "' twice as ", role));
        }
      }
    };
    check_distinct(transition.inputs, "input");
    check_distinct(transition.outputs, "output");
  }
  // Initial tokens must fit their cells.
  for (const Place& place : places_) {
    for (const Slot& slot : place.slots) {
      if (slot.kind == Slot::Kind::kCell && slot.cell_type >= token_types_.size()) {
        throw util::ModelError(util::msg("place '", place.name,
                                         "' has a cell of unknown token type"));
      }
    }
  }
}

}  // namespace choreo::pepanet
