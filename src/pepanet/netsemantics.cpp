#include "pepanet/netsemantics.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace choreo::pepanet {

std::size_t MarkingHash::operator()(const Marking& marking) const noexcept {
  std::size_t hash = 0xcbf29ce484222325ULL;
  for (pepa::ProcessId id : marking) {
    hash ^= id;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

pepa::ProcessId NetSemantics::place_context(const Marking& marking, PlaceId place) {
  const Place& p = net_.place(place);
  CHOREO_ASSERT(!p.slots.empty());
  auto slot_term = [&](std::size_t slot) {
    const pepa::ProcessId content = marking[net_.slot_offset(place, slot)];
    return content == kVacant ? net_.arena().stop() : content;
  };
  pepa::ProcessId term = slot_term(p.slots.size() - 1);
  for (std::size_t i = p.slots.size() - 1; i-- > 0;) {
    const std::vector<pepa::ActionId>& set =
        p.coop_sets.empty() ? std::vector<pepa::ActionId>{} : p.coop_sets[i];
    term = net_.arena().cooperation(slot_term(i), set, term);
  }
  return term;
}

void NetSemantics::collect_local_moves(const Marking& marking, PlaceId place,
                                       std::vector<NetMove>& out) {
  const Place& p = net_.place(place);
  const pepa::ProcessId context = place_context(marking, place);
  // Copy: decomposition interns new terms, which may grow the cache.
  const std::vector<pepa::Derivative> derivatives = pepa_.derivatives(context);
  for (const pepa::Derivative& d : derivatives) {
    // Firing types never occur as local transitions; they are only
    // performed as part of a net-level firing.
    if (net_.is_firing_type(d.action)) continue;

    NetMove move;
    move.kind = NetMove::Kind::kLocal;
    move.action = d.action;
    move.rate = d.rate;
    move.place = place;
    move.target = marking;

    // Decompose the derivative along the (structure-preserving) fold.
    pepa::ProcessId cursor = d.target;
    for (std::size_t i = 0; i + 1 < p.slots.size(); ++i) {
      const pepa::ProcessNode& node = net_.arena().node(cursor);
      CHOREO_ASSERT(node.op == pepa::Op::kCooperation);
      const std::size_t offset = net_.slot_offset(place, i);
      if (marking[offset] != kVacant) move.target[offset] = node.left;
      cursor = node.right;
    }
    const std::size_t last = net_.slot_offset(place, p.slots.size() - 1);
    if (marking[last] != kVacant) move.target[last] = cursor;

    out.push_back(std::move(move));
  }
}

namespace {

/// A token eligible to fire from one input place.
struct TokenChoice {
  std::size_t slot;
  TokenTypeId type;
  pepa::ProcessId term;
  pepa::Rate apparent;
  std::vector<pepa::Derivative> alpha_moves;
};

/// A vacant cell in one output place.
struct CellChoice {
  std::size_t slot;
  TokenTypeId type;
};

/// Iterates over the cartesian product of index ranges.
class ProductIterator {
 public:
  explicit ProductIterator(std::vector<std::size_t> sizes)
      : sizes_(std::move(sizes)), indices_(sizes_.size(), 0) {
    done_ = std::any_of(sizes_.begin(), sizes_.end(),
                        [](std::size_t s) { return s == 0; });
  }
  bool done() const noexcept { return done_; }
  const std::vector<std::size_t>& indices() const noexcept { return indices_; }
  void advance() {
    for (std::size_t i = 0; i < indices_.size(); ++i) {
      if (++indices_[i] < sizes_[i]) return;
      indices_[i] = 0;
    }
    done_ = true;
  }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> indices_;
  bool done_ = false;
};

}  // namespace

void NetSemantics::collect_firings(const Marking& marking, NetTransitionId t,
                                   std::vector<NetMove>& out) {
  const NetTransition& transition = net_.transition(t);
  const pepa::ActionId alpha = transition.action;
  const std::size_t arity = transition.inputs.size();

  // Candidate tokens per input place, and the place-level apparent rate of
  // alpha (the same-kind sum over eligible tokens: they race for the
  // transition under the bounded-capacity discipline).
  std::vector<std::vector<TokenChoice>> candidates(arity);
  std::vector<pepa::Rate> place_apparent(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const PlaceId place = transition.inputs[i];
    const Place& p = net_.place(place);
    for (std::size_t slot = 0; slot < p.slots.size(); ++slot) {
      if (p.slots[slot].kind != Slot::Kind::kCell) continue;
      const pepa::ProcessId term = marking[net_.slot_offset(place, slot)];
      if (term == kVacant) continue;
      TokenChoice choice;
      choice.slot = slot;
      choice.type = p.slots[slot].cell_type;
      choice.term = term;
      for (const pepa::Derivative& d : pepa_.derivatives(term)) {
        if (d.action == alpha) choice.alpha_moves.push_back(d);
      }
      if (choice.alpha_moves.empty()) continue;
      choice.apparent = pepa_.apparent_rate(term, alpha);
      place_apparent[i] =
          place_apparent[i].plus(choice.apparent, net_.arena().action_name(alpha));
      candidates[i].push_back(std::move(choice));
    }
    if (candidates[i].empty()) return;  // no enabling (Definition 2)
  }

  // Vacant cells per output place (Definition 3).
  std::vector<std::vector<CellChoice>> vacancies(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const PlaceId place = transition.outputs[i];
    const Place& p = net_.place(place);
    for (std::size_t slot = 0; slot < p.slots.size(); ++slot) {
      if (p.slots[slot].kind != Slot::Kind::kCell) continue;
      if (marking[net_.slot_offset(place, slot)] != kVacant) continue;
      vacancies[i].push_back({slot, p.slots[slot].cell_type});
    }
    if (vacancies[i].empty()) return;  // no output (Definition 3)
  }

  // Combined apparent rate of the firing: the transition label cooperates
  // with the token races of every input place.
  pepa::Rate combined = transition.rate;
  for (std::size_t i = 0; i < arity; ++i) {
    combined = pepa::Rate::min(combined, place_apparent[i]);
  }
  CHOREO_ASSERT(!combined.is_zero());

  // Enumerate enablings: one candidate token per input place.
  std::vector<std::size_t> candidate_sizes(arity);
  for (std::size_t i = 0; i < arity; ++i) candidate_sizes[i] = candidates[i].size();
  for (ProductIterator enabling(candidate_sizes); !enabling.done();
       enabling.advance()) {
    std::vector<const TokenChoice*> tokens(arity);
    for (std::size_t i = 0; i < arity; ++i) {
      tokens[i] = &candidates[i][enabling.indices()[i]];
    }

    // Enumerate outputs (one vacant cell per output place) and the
    // type-preserving bijections phi from tokens to chosen cells
    // (Definition 4: concession).
    struct Variant {
      std::vector<std::size_t> cell_choice;  // per output place: vacancy index
      std::vector<std::size_t> assignment;   // token i -> output place index
    };
    std::vector<Variant> variants;
    std::vector<std::size_t> vacancy_sizes(arity);
    for (std::size_t i = 0; i < arity; ++i) vacancy_sizes[i] = vacancies[i].size();
    std::vector<std::size_t> permutation(arity);
    std::iota(permutation.begin(), permutation.end(), 0);
    for (ProductIterator output(vacancy_sizes); !output.done(); output.advance()) {
      std::sort(permutation.begin(), permutation.end());
      do {
        bool types_match = true;
        for (std::size_t i = 0; i < arity && types_match; ++i) {
          const CellChoice& cell =
              vacancies[permutation[i]][output.indices()[permutation[i]]];
          types_match = tokens[i]->type == cell.type;
        }
        if (types_match) {
          variants.push_back(
              {std::vector<std::size_t>(output.indices()), permutation});
        }
      } while (std::next_permutation(permutation.begin(), permutation.end()));
    }
    if (variants.empty()) continue;  // this enabling admits no bijection

    // Each combination of per-token alpha-derivative choices contributes its
    // proportional share; each variant splits that share equally.
    std::vector<std::size_t> move_sizes(arity);
    for (std::size_t i = 0; i < arity; ++i) {
      move_sizes[i] = tokens[i]->alpha_moves.size();
    }
    for (ProductIterator deriv(move_sizes); !deriv.done(); deriv.advance()) {
      double share = 1.0;
      for (std::size_t i = 0; i < arity; ++i) {
        const pepa::Derivative& d = tokens[i]->alpha_moves[deriv.indices()[i]];
        share *= d.rate.value() / place_apparent[i].value();
      }
      const double variant_rate =
          combined.value() * share / static_cast<double>(variants.size());
      for (const Variant& variant : variants) {
        NetMove move;
        move.kind = NetMove::Kind::kFiring;
        move.action = alpha;
        move.rate = combined.is_passive() ? pepa::Rate::passive(variant_rate)
                                          : pepa::Rate::active(variant_rate);
        move.transition = t;
        move.target = marking;
        // Remove every fired token, then deposit the evolved derivatives
        // (vacancy was evaluated against the pre-firing marking, per
        // Definition 6).
        for (std::size_t i = 0; i < arity; ++i) {
          move.target[net_.slot_offset(transition.inputs[i], tokens[i]->slot)] =
              kVacant;
        }
        for (std::size_t i = 0; i < arity; ++i) {
          const std::size_t out_place_index = variant.assignment[i];
          const CellChoice& cell =
              vacancies[out_place_index]
                       [variant.cell_choice[out_place_index]];
          const pepa::Derivative& d = tokens[i]->alpha_moves[deriv.indices()[i]];
          move.target[net_.slot_offset(transition.outputs[out_place_index],
                                       cell.slot)] = d.target;
        }
        out.push_back(std::move(move));
      }
    }
  }
}

bool NetSemantics::has_concession(const Marking& marking, NetTransitionId t) {
  std::vector<NetMove> moves;
  collect_firings(marking, t, moves);
  return !moves.empty();
}

std::vector<NetMove> NetSemantics::moves(const Marking& marking) {
  std::vector<NetMove> out;
  for (PlaceId place = 0; place < net_.place_count(); ++place) {
    collect_local_moves(marking, place, out);
  }

  // Firings, gated by priority (Definition 5): a net transition is enabled
  // only if no transition of strictly higher priority has concession.
  std::vector<std::vector<NetMove>> firings(net_.transition_count());
  unsigned max_priority_with_concession = 0;
  bool any_concession = false;
  for (NetTransitionId t = 0; t < net_.transition_count(); ++t) {
    collect_firings(marking, t, firings[t]);
    if (!firings[t].empty()) {
      any_concession = true;
      max_priority_with_concession =
          std::max(max_priority_with_concession, net_.transition(t).priority);
    }
  }
  if (any_concession) {
    for (NetTransitionId t = 0; t < net_.transition_count(); ++t) {
      if (net_.transition(t).priority != max_priority_with_concession) continue;
      for (NetMove& move : firings[t]) out.push_back(std::move(move));
    }
  }
  return out;
}

}  // namespace choreo::pepanet
