// PEPA nets (paper Definition 1): a coloured stochastic Petri net whose
// tokens are PEPA components.
//
// Structure:
//   - token types: a name plus the initial PEPA derivative of such tokens;
//   - places: an ordered list of slots, each either a *cell* (a typed
//     storage area for one token, possibly vacant) or a *static component*
//     (a PEPA process bound to the place, which cannot move);
//   - the place context is the right fold of the slots under cooperation:
//       slot0 <L0> (slot1 <L1> (...)),
//     where each L_i is an explicit action set (the builder can compute the
//     shared-alphabet default the Section 3 mapping prescribes);
//   - net transitions: a firing action type, a rate (possibly passive, in
//     which case the participating tokens determine the speed), a priority,
//     and balanced input/output place lists.
//
// Markings assign a current PEPA derivative to every slot; vacant cells are
// marked with kVacant.  The firing semantics lives in netsemantics.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pepa/ast.hpp"

namespace choreo::pepanet {

using PlaceId = std::uint32_t;
using NetTransitionId = std::uint32_t;
using TokenTypeId = std::uint32_t;

/// Slot content marker for a vacant cell.
inline constexpr pepa::ProcessId kVacant = pepa::kInvalidProcess;

struct TokenType {
  std::string name;
  /// Every derivative a token of this type can reach stays of this type;
  /// `initial` is only the conventional starting derivative.
  pepa::ProcessId initial = pepa::kInvalidProcess;
};

struct Slot {
  enum class Kind : std::uint8_t { kCell, kStatic };
  Kind kind = Kind::kCell;
  /// Cells: the token type this cell stores.
  TokenTypeId cell_type = 0;
  /// Cells: initial content (kVacant for an initially empty cell).
  /// Statics: the initial derivative of the static component.
  pepa::ProcessId initial = kVacant;
};

struct Place {
  std::string name;
  std::vector<Slot> slots;
  /// coop_sets[i] combines slot i with the fold of slots i+1.. ;
  /// size is max(slots.size() - 1, 0).
  std::vector<std::vector<pepa::ActionId>> coop_sets;
};

struct NetTransition {
  std::string name;
  /// The firing action type (boldface in the paper).
  pepa::ActionId action = 0;
  pepa::Rate rate;
  /// Paper Definition 5: only maximal-priority transitions with concession
  /// may fire.  Larger numbers take precedence.
  unsigned priority = 1;
  std::vector<PlaceId> inputs;
  std::vector<PlaceId> outputs;
};

/// A marking: the current derivative of every slot, places concatenated in
/// declaration order (see PepaNet::slot_offset).
using Marking = std::vector<pepa::ProcessId>;

class PepaNet {
 public:
  PepaNet() = default;
  /// Adopts an existing arena (e.g. the one holding a parsed PEPA model's
  /// definitions) so token/static terms can reference those definitions.
  explicit PepaNet(pepa::ProcessArena arena) : arena_(std::move(arena)) {}

  pepa::ProcessArena& arena() noexcept { return arena_; }
  const pepa::ProcessArena& arena() const noexcept { return arena_; }

  // --- construction -------------------------------------------------------
  TokenTypeId add_token_type(std::string name, pepa::ProcessId initial);
  PlaceId add_place(std::string name);
  /// Adds a cell slot; `initial` kVacant for an empty cell.  Returns the
  /// slot index within the place.
  std::size_t add_cell(PlaceId place, TokenTypeId type,
                       pepa::ProcessId initial = kVacant);
  std::size_t add_static(PlaceId place, pepa::ProcessId initial);
  /// Sets the cooperation sets of a place explicitly (fold structure above).
  void set_coop_sets(PlaceId place, std::vector<std::vector<pepa::ActionId>> sets);
  /// Computes the Section-3 default: slot i cooperates with the rest of the
  /// place on the actions their alphabets share (firing types excluded).
  void use_shared_alphabet_cooperation(PlaceId place);
  NetTransitionId add_transition(std::string name, pepa::Rate rate,
                                 std::vector<PlaceId> inputs,
                                 std::vector<PlaceId> outputs,
                                 unsigned priority = 1);

  // --- access ---------------------------------------------------------------
  std::size_t token_type_count() const noexcept { return token_types_.size(); }
  const TokenType& token_type(TokenTypeId id) const;
  std::optional<TokenTypeId> find_token_type(std::string_view name) const;

  std::size_t place_count() const noexcept { return places_.size(); }
  const Place& place(PlaceId id) const;
  std::optional<PlaceId> find_place(std::string_view name) const;

  std::size_t transition_count() const noexcept { return transitions_.size(); }
  const NetTransition& transition(NetTransitionId id) const;

  /// Index of (place, slot) in a Marking vector.
  std::size_t slot_offset(PlaceId place, std::size_t slot) const;
  std::size_t total_slots() const noexcept { return total_slots_; }

  /// The sorted set of firing action types (A_f).  Local transitions of
  /// these types are suppressed inside places: they only occur as firings.
  const std::vector<pepa::ActionId>& firing_types() const noexcept {
    return firing_types_;
  }
  bool is_firing_type(pepa::ActionId action) const;

  /// The initial marking M0 (from the slots' initial contents).
  Marking initial_marking() const;

  /// Structural checks (paper's balance requirement, defined names,
  /// non-empty input/output lists, duplicate places within one transition).
  /// Throws util::ModelError.
  void validate() const;

 private:
  pepa::ProcessArena arena_;
  std::vector<TokenType> token_types_;
  std::vector<Place> places_;
  std::vector<std::size_t> place_offsets_;
  std::size_t total_slots_ = 0;
  std::vector<NetTransition> transitions_;
  std::vector<pepa::ActionId> firing_types_;
};

}  // namespace choreo::pepanet
