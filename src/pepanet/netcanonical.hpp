// Canonical representatives of PEPA-net markings: the marking-level
// counterpart of pepa::Canonicalizer, used as explore::run's
// canonicalization stage by NetStateSpace::derive_from.
//
// A place's context is the right fold of its slots under cooperation,
//
//   slot0 <L0> (slot1 <L1> (... slot_{k-1})),
//
// so a maximal run of *equal* cooperation sets is a same-set spine whose
// sibling slots may be reordered up to strong equivalence — exactly the
// term-level argument in pepa/canonical.hpp, read at the marking level.
// Within such a spine the contents of two slots are interchangeable only
// when the slots are interchangeable as storage: same slot kind, and for
// cells the same token type (so a permuted marking is still a well-typed
// marking of the same net and every firing of the original has an
// equal-rate image).  The canonicalizer precomputes those sortable offset
// classes per place once, then canonicalizing a marking is: canonicalize
// each slot's term (tokens/statics can themselves hold populations), then
// sort each class structurally with vacant cells last.
//
// Measures stay exact on the quotient: occupancy, token counts and
// derivative probabilities scan slots uniformly within a place, so every
// member of a permutation class reports the same value.
#pragma once

#include <cstddef>
#include <vector>

#include "pepa/canonical.hpp"
#include "pepanet/net.hpp"

namespace choreo::pepanet {

/// Rewrites markings of one net to canonical representatives.  Thread-safe
/// for concurrent expansion lanes (the per-term memo and the arena are
/// concurrent; the group table is immutable after construction).
class MarkingCanonicalizer {
 public:
  /// `net` must outlive the canonicalizer; its structure (places, slots,
  /// cooperation sets) is read at construction time only.
  explicit MarkingCanonicalizer(PepaNet& net);

  /// explore::run hook: rewrite the marking in place, report a change.
  bool operator()(Marking& marking);

  /// The sortable slot groups found (size >= 2), for tests and reports.
  std::size_t group_count() const noexcept { return groups_.size(); }

 private:
  /// Offsets (into the marking vector) of interchangeable slots.
  struct Group {
    std::vector<std::size_t> offsets;
  };

  PepaNet& net_;
  pepa::Canonicalizer terms_;
  std::vector<Group> groups_;
};

}  // namespace choreo::pepanet
