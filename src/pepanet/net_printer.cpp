#include "pepanet/net_printer.hpp"

#include <map>
#include <sstream>

#include "pepa/printer.hpp"

namespace choreo::pepanet {

std::string to_source(const PepaNet& net) {
  const pepa::ProcessArena& arena = net.arena();
  std::ostringstream defs;
  std::ostringstream decls;

  // Synthetic names for slot/token initial terms that are not constants.
  std::map<pepa::ProcessId, std::string> synthetic;
  auto name_of = [&](pepa::ProcessId term) -> std::string {
    const pepa::ProcessNode& node = arena.node(term);
    if (node.op == pepa::Op::kConstant) return arena.constant_name(node.constant);
    auto [it, inserted] = synthetic.emplace(
        term, "Init_" + std::to_string(synthetic.size()));
    if (inserted) {
      defs << it->second << " = " << pepa::to_string(arena, term) << ";\n";
    }
    return it->second;
  };

  for (pepa::ConstantId id = 0; id < arena.constant_count(); ++id) {
    if (!arena.is_defined(id)) continue;
    defs << arena.constant_name(id) << " = "
         << pepa::to_string(arena, arena.body(id)) << ";\n";
  }

  // Token declarations: '@token C;' names the type by the constant C, so a
  // type whose name differs from its initial derivative's gets an alias.
  std::map<TokenTypeId, std::string> type_name;
  std::map<std::string, TokenTypeId> used_type_names;
  for (TokenTypeId id = 0; id < net.token_type_count(); ++id) {
    const TokenType& type = net.token_type(id);
    const pepa::ProcessNode& node = arena.node(type.initial);
    std::string name;
    // Prefer naming the type after its initial constant (no alias state);
    // fall back to a synthetic alias when the initial is a compound term
    // or when two types would collide on the same constant.
    if (node.op == pepa::Op::kConstant &&
        !used_type_names.count(arena.constant_name(node.constant))) {
      name = arena.constant_name(node.constant);
    } else {
      name = "Type_" + std::to_string(id);
      defs << name << " = " << name_of(type.initial) << ";\n";
    }
    used_type_names.emplace(name, id);
    type_name[id] = name;
    decls << "@token " << name << ";\n";
  }

  for (PlaceId id = 0; id < net.place_count(); ++id) {
    const Place& place = net.place(id);
    decls << "@place " << place.name << " {";
    for (const Slot& slot : place.slots) {
      decls << ' ';
      if (slot.kind == Slot::Kind::kCell) {
        decls << "cell " << type_name.at(slot.cell_type);
        if (slot.initial != kVacant) decls << " = " << name_of(slot.initial);
      } else {
        decls << "static " << name_of(slot.initial);
      }
      decls << ';';
    }
    for (const auto& set : place.coop_sets) {
      decls << " sync <";
      for (std::size_t i = 0; i < set.size(); ++i) {
        decls << (i ? ", " : "") << arena.action_name(set[i]);
      }
      decls << ">;";
    }
    decls << " }\n";
  }

  for (NetTransitionId id = 0; id < net.transition_count(); ++id) {
    const NetTransition& t = net.transition(id);
    decls << "@transition " << t.name << " (rate " << t.rate.to_string()
          << ", priority " << t.priority << ") from ";
    for (std::size_t i = 0; i < t.inputs.size(); ++i) {
      decls << (i ? ", " : "") << net.place(t.inputs[i]).name;
    }
    decls << " to ";
    for (std::size_t i = 0; i < t.outputs.size(); ++i) {
      decls << (i ? ", " : "") << net.place(t.outputs[i]).name;
    }
    decls << ";\n";
  }
  return defs.str() + "\n" + decls.str();
}

std::string to_string(const PepaNet& net) {
  std::ostringstream out;
  for (TokenTypeId id = 0; id < net.token_type_count(); ++id) {
    const TokenType& type = net.token_type(id);
    out << "@token " << type.name << ";  // initially "
        << pepa::to_string(net.arena(), type.initial) << '\n';
  }
  for (PlaceId id = 0; id < net.place_count(); ++id) {
    const Place& place = net.place(id);
    out << "@place " << place.name << " {";
    for (std::size_t s = 0; s < place.slots.size(); ++s) {
      const Slot& slot = place.slots[s];
      out << ' ';
      if (slot.kind == Slot::Kind::kCell) {
        out << "cell " << net.token_type(slot.cell_type).name;
        if (slot.initial != kVacant) {
          out << " = " << pepa::to_string(net.arena(), slot.initial);
        }
      } else {
        out << "static " << pepa::to_string(net.arena(), slot.initial);
      }
      out << ';';
      if (s + 1 < place.slots.size() && !place.coop_sets.empty()) {
        out << "  // " << pepa::set_to_string(net.arena(), place.coop_sets[s]);
      }
    }
    out << " }\n";
  }
  for (NetTransitionId id = 0; id < net.transition_count(); ++id) {
    const NetTransition& t = net.transition(id);
    out << "@transition " << t.name << " (rate " << t.rate.to_string()
        << ", priority " << t.priority << ") from ";
    for (std::size_t i = 0; i < t.inputs.size(); ++i) {
      out << (i ? ", " : "") << net.place(t.inputs[i]).name;
    }
    out << " to ";
    for (std::size_t i = 0; i < t.outputs.size(); ++i) {
      out << (i ? ", " : "") << net.place(t.outputs[i]).name;
    }
    out << ";\n";
  }
  return out.str();
}

std::string marking_to_string(const PepaNet& net, const Marking& marking) {
  std::ostringstream out;
  for (PlaceId id = 0; id < net.place_count(); ++id) {
    const Place& place = net.place(id);
    if (id != 0) out << ' ';
    out << place.name << '[';
    bool first = true;
    for (std::size_t s = 0; s < place.slots.size(); ++s) {
      const Slot& slot = place.slots[s];
      const pepa::ProcessId content = marking[net.slot_offset(id, s)];
      if (slot.kind == Slot::Kind::kCell) {
        if (!first) out << ", ";
        out << (content == kVacant ? "_" : pepa::to_string(net.arena(), content));
        first = false;
      } else {
        if (!first) out << ", ";
        out << "|" << pepa::to_string(net.arena(), content) << "|";
        first = false;
      }
    }
    out << ']';
  }
  return out.str();
}

}  // namespace choreo::pepanet
