// Derivation of the marking graph of a PEPA net and its CTMC (the paper
// treats "each marking as a distinct state").
//
// Exploration delegates to explore::run, the level-synchronous BFS shared
// with pepa::StateSpace::derive: the markings of one breadth-first level are
// expanded concurrently, then the discovered markings are renumbered
// serially in canonical order (source index, then move order), which
// reproduces the sequential FIFO numbering byte-for-byte at every lane count
// — including the error raised first.  Transitions are held in a
// CSR-indexed explore::TransitionSystem shared with the PEPA side.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "ctmc/generator.hpp"
#include "explore/transition_system.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netsemantics.hpp"
#include "util/budget.hpp"
#include "util/striped_map.hpp"
#include "util/thread_pool.hpp"

namespace choreo::pepanet {

/// Counters describing one marking-graph derivation (same shape as the PEPA
/// state-space counters, so the service reports both uniformly).
using DeriveStats = pepa::DeriveStats;

struct NetDeriveOptions {
  std::size_t max_markings = 2'000'000;
  /// Drop (rather than reject) passive moves escaping to the top level.
  bool allow_top_level_passive = false;
  /// Exploration lanes per breadth-first level: 1 forces the sequential
  /// path, 0 sizes to the pool (worker count + the calling thread).  The
  /// derived graph is identical for every setting.
  std::size_t threads = 0;
  /// Markings per work-stealing expansion chunk; 0 sizes automatically from
  /// the frontier and lane count.  A pure throughput knob — the derived
  /// graph is identical for every setting.
  std::size_t chunk_grain = 0;
  /// Pool expansion chunks run on; nullptr means util::ThreadPool::shared().
  util::ThreadPool* pool = nullptr;
  /// Resource governor: cancellation, deadline and marking/byte accounting,
  /// checked once per breadth-first level (see pepa::DeriveOptions::budget).
  util::Budget* budget = nullptr;
  /// Derive the marking-graph quotient directly: markings are rewritten to
  /// canonical representatives (interchangeable slots of same-cooperation
  /// spines sorted, slot terms sort-canonicalized — see
  /// pepanet/netcanonical.hpp) before interning, so symmetric markings
  /// collapse at discovery time and max_markings, the budget accounting and
  /// peak memory cover the quotient only.  Throughputs and the place/token
  /// measures are permutation-invariant and stay exact; the quotient is
  /// byte-identical at every lane count.
  bool aggregate = false;
};

struct MarkingTransition {
  std::size_t source;
  std::size_t target;
  pepa::ActionId action;
  double rate;
  bool is_firing;
  /// Valid when is_firing.
  NetTransitionId net_transition;
  /// Valid when !is_firing: the place whose context moved.
  PlaceId place;
};

class NetStateSpace {
 public:
  static NetStateSpace derive(NetSemantics& semantics,
                              const NetDeriveOptions& options = {});
  static NetStateSpace derive_from(NetSemantics& semantics, Marking initial,
                                   const NetDeriveOptions& options = {});

  std::size_t marking_count() const noexcept { return markings_.size(); }
  const Marking& marking(std::size_t index) const { return markings_[index]; }
  std::optional<std::size_t> index_of(const Marking& marking) const;

  /// The CSR-indexed marking-graph transition system.
  const explore::TransitionSystem<MarkingTransition>& lts() const noexcept {
    return lts_;
  }

  /// The flat transition payload, in canonical emission order.
  const std::vector<MarkingTransition>& transitions() const noexcept {
    return lts_.transitions();
  }

  /// Counters from the derivation that produced this graph.
  const DeriveStats& stats() const noexcept { return stats_; }

  /// True when derived quotient-direct (NetDeriveOptions::aggregate).
  bool aggregated() const noexcept { return aggregated_; }

  ctmc::Generator generator() const;

  /// Transitions carrying `action` (both kinds), for throughput rewards.
  std::vector<ctmc::RatedTransition> transitions_of(pepa::ActionId action) const;

  /// Markings with no enabled move.
  std::vector<std::size_t> deadlock_markings() const;

 private:
  std::vector<Marking> markings_;
  /// Sharded so expansion workers can pre-resolve move targets against
  /// earlier levels while the serial renumbering pass owns the writes.
  util::StripedMap<Marking, std::size_t, MarkingHash> index_;
  explore::TransitionSystem<MarkingTransition> lts_;
  DeriveStats stats_;
  bool aggregated_ = false;
};

/// Steady-state throughput of an action over the marking graph.
double action_throughput(const NetStateSpace& space,
                         std::span<const double> distribution,
                         pepa::ActionId action);

/// Steady-state probability that at least one token occupies a cell of
/// `place` in the net.
double occupancy_probability(const PepaNet& net, const NetStateSpace& space,
                             std::span<const double> distribution, PlaceId place);

/// Expected number of tokens resident in cells of `place`.
double mean_tokens_at(const PepaNet& net, const NetStateSpace& space,
                      std::span<const double> distribution, PlaceId place);

/// Steady-state probability that some cell of some place holds a token whose
/// current derivative is exactly `term`.
double derivative_probability(const PepaNet& net, const NetStateSpace& space,
                              std::span<const double> distribution,
                              pepa::ProcessId term);

/// Same, identifying the derivative by its defining constant (ProcessId and
/// ConstantId share a representation, so this cannot be an overload).
double derivative_probability_by_constant(const PepaNet& net,
                                          const NetStateSpace& space,
                                          std::span<const double> distribution,
                                          pepa::ConstantId constant);

}  // namespace choreo::pepanet
