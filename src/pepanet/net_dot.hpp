// GraphViz (DOT) rendering of PEPA nets and their marking graphs.
#pragma once

#include <string>

#include "pepanet/net.hpp"
#include "pepanet/netstatespace.hpp"

namespace choreo::pepanet {

/// The net structure as the classic bipartite Petri-net picture: circles
/// for places (annotated with their cells and statics), rectangles for net
/// transitions, arcs for the input/output functions.
std::string structure_to_dot(const PepaNet& net);

/// The marking graph as a DOT digraph; firings are drawn with bold edges,
/// local transitions with plain ones.
std::string marking_graph_to_dot(const PepaNet& net, const NetStateSpace& space);

}  // namespace choreo::pepanet
