#include "pepanet/netstatespace.hpp"

#include <utility>

#include "explore/engine.hpp"
#include "pepanet/netcanonical.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace choreo::pepanet {

NetStateSpace NetStateSpace::derive(NetSemantics& semantics,
                                    const NetDeriveOptions& options) {
  return derive_from(semantics, semantics.net().initial_marking(), options);
}

NetStateSpace NetStateSpace::derive_from(NetSemantics& semantics, Marking initial,
                                         const NetDeriveOptions& options) {
  semantics.net().validate();
  util::Stopwatch timer;
  NetStateSpace space;

  explore::EngineOptions engine;
  engine.max_states = options.max_markings;
  engine.allow_top_level_passive = options.allow_top_level_passive;
  engine.threads = options.threads;
  engine.chunk_grain = options.chunk_grain;
  engine.pool = options.pool;
  engine.budget = options.budget;
  // Approximate per-marking footprint: every marking of one net holds the
  // same number of slots, plus its interning entry.
  engine.bytes_per_state =
      initial.size() * sizeof(pepa::ProcessId) + 2 * sizeof(std::size_t);
  engine.space_noun = "marking graph";
  engine.state_noun = "markings";
  engine.passive_suffix =
      "' occurs passively at the net level: no active partner sets its rate";

  auto run_with = [&](Marking start, auto&& canonicalize) {
    return explore::run(
        space.markings_, space.index_, std::move(start),
        // NetSemantics is stateless over the thread-safe arena/semantics
        // caches, so expansion workers may call moves() concurrently.
        [&semantics](const Marking& marking) {
          return semantics.moves(marking);
        },
        std::forward<decltype(canonicalize)>(canonicalize),
        [&semantics](const NetMove& move) {
          return semantics.net().arena().action_name(move.action);
        },
        [&space](std::size_t source, const NetMove& move, std::size_t target) {
          MarkingTransition t;
          t.source = source;
          t.target = target;
          t.action = move.action;
          t.rate = move.rate.value();
          t.is_firing = move.kind == NetMove::Kind::kFiring;
          t.net_transition = move.transition;
          t.place = move.place;
          space.lts_.push_back(t);
        },
        engine);
  };
  if (options.aggregate) {
    // Quotient-direct derivation over canonical markings; parallel moves
    // into one block are summed by the generator build (the lumped rate).
    space.aggregated_ = true;
    MarkingCanonicalizer canonicalizer(semantics.net());
    space.stats_ = run_with(std::move(initial),
                            [&canonicalizer](Marking& marking) {
                              return canonicalizer(marking);
                            });
  } else {
    space.stats_ = run_with(std::move(initial), explore::NoCanonicalize{});
  }
  space.lts_.finalize(space.markings_.size());
  space.stats_.seconds = timer.seconds();
  return space;
}

std::optional<std::size_t> NetStateSpace::index_of(const Marking& marking) const {
  const std::size_t* found = index_.find(marking);
  if (found == nullptr) return std::nullopt;
  return *found;
}

ctmc::Generator NetStateSpace::generator() const {
  return ctmc::Generator::build_from<MarkingTransition>(marking_count(),
                                                        lts_.transitions());
}

std::vector<ctmc::RatedTransition> NetStateSpace::transitions_of(
    pepa::ActionId action) const {
  std::vector<ctmc::RatedTransition> out;
  const auto slice = lts_.action_transitions(action);
  out.reserve(slice.size());
  for (const std::size_t i : slice) {
    const MarkingTransition& t = lts_[i];
    out.push_back({t.source, t.target, t.rate});
  }
  return out;
}

std::vector<std::size_t> NetStateSpace::deadlock_markings() const {
  return lts_.deadlock_states();
}

double action_throughput(const NetStateSpace& space,
                         std::span<const double> distribution,
                         pepa::ActionId action) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  return space.lts().action_throughput(distribution, action);
}

namespace {
std::size_t tokens_at(const PepaNet& net, const Marking& marking, PlaceId place) {
  const Place& p = net.place(place);
  std::size_t count = 0;
  for (std::size_t slot = 0; slot < p.slots.size(); ++slot) {
    if (p.slots[slot].kind != Slot::Kind::kCell) continue;
    if (marking[net.slot_offset(place, slot)] != kVacant) ++count;
  }
  return count;
}
}  // namespace

double occupancy_probability(const PepaNet& net, const NetStateSpace& space,
                             std::span<const double> distribution, PlaceId place) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    if (tokens_at(net, space.marking(m), place) > 0) sum += distribution[m];
  }
  return sum;
}

double mean_tokens_at(const PepaNet& net, const NetStateSpace& space,
                      std::span<const double> distribution, PlaceId place) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    sum += distribution[m] *
           static_cast<double>(tokens_at(net, space.marking(m), place));
  }
  return sum;
}

double derivative_probability_by_constant(const PepaNet& net,
                                          const NetStateSpace& space,
                                          std::span<const double> distribution,
                                          pepa::ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const Marking& marking = space.marking(m);
    bool found = false;
    for (PlaceId place = 0; place < net.place_count() && !found; ++place) {
      const Place& p = net.place(place);
      for (std::size_t slot = 0; slot < p.slots.size() && !found; ++slot) {
        if (p.slots[slot].kind != Slot::Kind::kCell) continue;
        const pepa::ProcessId content = marking[net.slot_offset(place, slot)];
        if (content == kVacant) continue;
        const pepa::ProcessNode& node = net.arena().node(content);
        found = node.op == pepa::Op::kConstant && node.constant == constant;
      }
    }
    if (found) sum += distribution[m];
  }
  return sum;
}

double derivative_probability(const PepaNet& net, const NetStateSpace& space,
                              std::span<const double> distribution,
                              pepa::ProcessId term) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const Marking& marking = space.marking(m);
    bool found = false;
    for (PlaceId place = 0; place < net.place_count() && !found; ++place) {
      const Place& p = net.place(place);
      for (std::size_t slot = 0; slot < p.slots.size() && !found; ++slot) {
        if (p.slots[slot].kind != Slot::Kind::kCell) continue;
        found = marking[net.slot_offset(place, slot)] == term;
      }
    }
    if (found) sum += distribution[m];
  }
  return sum;
}

}  // namespace choreo::pepanet
