#include "pepanet/netstatespace.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <limits>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace choreo::pepanet {

namespace {

/// Sentinel for "target not yet numbered" in the expansion buffers.
constexpr std::size_t kUnresolved = std::numeric_limits<std::size_t>::max();

/// One move recorded by an expansion worker: the move itself plus the
/// target's marking index when it was already numbered in an earlier level.
struct PendingMove {
  NetMove move;
  std::size_t resolved = kUnresolved;
};

}  // namespace

NetStateSpace NetStateSpace::derive(NetSemantics& semantics,
                                    const NetDeriveOptions& options) {
  return derive_from(semantics, semantics.net().initial_marking(), options);
}

NetStateSpace NetStateSpace::derive_from(NetSemantics& semantics, Marking initial,
                                         const NetDeriveOptions& options) {
  semantics.net().validate();
  util::Stopwatch timer;
  NetStateSpace space;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
  const std::size_t lanes =
      options.threads == 0 ? pool.worker_count() + 1 : options.threads;

  // The markings of the level being expanded, in canonical (index) order.
  std::vector<std::size_t> frontier;

  auto index_of_marking = [&](Marking marking) {
    if (const std::size_t* known = space.index_.find(marking)) {
      ++space.stats_.dedup_hits;
      return *known;
    }
    if (space.markings_.size() >= options.max_markings) {
      throw util::BudgetError(util::msg(
          "marking graph exceeds the configured bound of ", options.max_markings,
          " markings (state-space explosion)"));
    }
    const std::size_t index = space.markings_.size();
    space.markings_.push_back(std::move(marking));
    space.index_.try_emplace(space.markings_[index], index);
    ++space.stats_.dedup_misses;
    frontier.push_back(index);
    return index;
  };

  // Approximate per-marking footprint: every marking of one net holds the
  // same number of slots, plus its interning entry.
  const std::size_t bytes_per_marking =
      initial.size() * sizeof(pepa::ProcessId) + 2 * sizeof(std::size_t);

  index_of_marking(std::move(initial));
  if (options.budget != nullptr) {
    options.budget->charge_states(1, bytes_per_marking);
  }
  while (!frontier.empty()) {
    ++space.stats_.levels;
    space.stats_.peak_frontier =
        std::max(space.stats_.peak_frontier, frontier.size());
    // Cooperative governance point: once per level, after the accounting
    // records the level being entered, before the parallel expansion (see
    // pepa::StateSpace::derive — determinism is preserved because
    // uninterrupted runs never observe the check).
    if (options.budget != nullptr) {
      options.budget->note_level(frontier.size());
      options.budget->check("derive");
    }
    const std::vector<std::size_t> level = std::move(frontier);
    frontier.clear();

    // Parallel phase: compute every level marking's moves.  NetSemantics is
    // stateless over the thread-safe arena/semantics caches, so workers may
    // call moves() concurrently; they pre-resolve targets against the index,
    // which only the serial phase below mutates.  Errors are captured per
    // marking so the canonically-first one is rethrown deterministically.
    std::vector<std::vector<PendingMove>> moves(level.size());
    std::vector<std::exception_ptr> errors(level.size());
    auto expand = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          std::vector<NetMove> found = semantics.moves(space.markings_[level[i]]);
          moves[i].reserve(found.size());
          for (NetMove& move : found) {
            const std::size_t* known = space.index_.find(move.target);
            moves[i].push_back(
                {std::move(move), known != nullptr ? *known : kUnresolved});
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    const std::size_t chunks = std::min(lanes, level.size());
    if (chunks <= 1) {
      expand(0, level.size());
    } else {
      std::vector<std::future<void>> pending;
      pending.reserve(chunks - 1);
      for (std::size_t c = 1; c < chunks; ++c) {
        const std::size_t begin = level.size() * c / chunks;
        const std::size_t end = level.size() * (c + 1) / chunks;
        pending.push_back(pool.submit([&, begin, end] { expand(begin, end); }));
      }
      expand(0, level.size() / chunks);
      for (std::future<void>& f : pending) f.get();
    }

    // Serial phase: number the discovered markings and emit transitions in
    // canonical order — source index, then move order — which is the order
    // the sequential FIFO exploration produces.
    const std::size_t known_before = space.markings_.size();
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
      const std::size_t source = level[i];
      for (PendingMove& pending_move : moves[i]) {
        NetMove& move = pending_move.move;
        if (move.rate.is_passive()) {
          if (options.allow_top_level_passive) continue;
          throw util::ModelError(util::msg(
              "activity '", semantics.net().arena().action_name(move.action),
              "' occurs passively at the net level: no active partner sets its",
              " rate"));
        }
        std::size_t target;
        if (pending_move.resolved != kUnresolved) {
          target = pending_move.resolved;
          ++space.stats_.dedup_hits;
        } else {
          target = index_of_marking(std::move(move.target));
        }
        MarkingTransition t;
        t.source = source;
        t.target = target;
        t.action = move.action;
        t.rate = move.rate.value();
        t.is_firing = move.kind == NetMove::Kind::kFiring;
        t.net_transition = move.transition;
        t.place = move.place;
        space.transitions_.push_back(t);
      }
    }
    if (options.budget != nullptr) {
      options.budget->charge_states(
          space.markings_.size() - known_before,
          (space.markings_.size() - known_before) * bytes_per_marking);
    }
  }
  space.stats_.seconds = timer.seconds();
  return space;
}

std::optional<std::size_t> NetStateSpace::index_of(const Marking& marking) const {
  const std::size_t* found = index_.find(marking);
  if (found == nullptr) return std::nullopt;
  return *found;
}

ctmc::Generator NetStateSpace::generator() const {
  std::vector<ctmc::RatedTransition> rated;
  rated.reserve(transitions_.size());
  for (const MarkingTransition& t : transitions_) {
    rated.push_back({t.source, t.target, t.rate});
  }
  return ctmc::Generator::build(marking_count(), rated);
}

std::vector<ctmc::RatedTransition> NetStateSpace::transitions_of(
    pepa::ActionId action) const {
  std::vector<ctmc::RatedTransition> out;
  for (const MarkingTransition& t : transitions_) {
    if (t.action == action) out.push_back({t.source, t.target, t.rate});
  }
  return out;
}

std::vector<std::size_t> NetStateSpace::deadlock_markings() const {
  std::vector<bool> has_move(marking_count(), false);
  for (const MarkingTransition& t : transitions_) has_move[t.source] = true;
  std::vector<std::size_t> out;
  for (std::size_t m = 0; m < marking_count(); ++m) {
    if (!has_move[m]) out.push_back(m);
  }
  return out;
}

double action_throughput(const NetStateSpace& space,
                         std::span<const double> distribution,
                         pepa::ActionId action) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (const MarkingTransition& t : space.transitions()) {
    if (t.action == action) sum += distribution[t.source] * t.rate;
  }
  return sum;
}

namespace {
std::size_t tokens_at(const PepaNet& net, const Marking& marking, PlaceId place) {
  const Place& p = net.place(place);
  std::size_t count = 0;
  for (std::size_t slot = 0; slot < p.slots.size(); ++slot) {
    if (p.slots[slot].kind != Slot::Kind::kCell) continue;
    if (marking[net.slot_offset(place, slot)] != kVacant) ++count;
  }
  return count;
}
}  // namespace

double occupancy_probability(const PepaNet& net, const NetStateSpace& space,
                             std::span<const double> distribution, PlaceId place) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    if (tokens_at(net, space.marking(m), place) > 0) sum += distribution[m];
  }
  return sum;
}

double mean_tokens_at(const PepaNet& net, const NetStateSpace& space,
                      std::span<const double> distribution, PlaceId place) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    sum += distribution[m] *
           static_cast<double>(tokens_at(net, space.marking(m), place));
  }
  return sum;
}

double derivative_probability_by_constant(const PepaNet& net,
                                          const NetStateSpace& space,
                                          std::span<const double> distribution,
                                          pepa::ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const Marking& marking = space.marking(m);
    bool found = false;
    for (PlaceId place = 0; place < net.place_count() && !found; ++place) {
      const Place& p = net.place(place);
      for (std::size_t slot = 0; slot < p.slots.size() && !found; ++slot) {
        if (p.slots[slot].kind != Slot::Kind::kCell) continue;
        const pepa::ProcessId content = marking[net.slot_offset(place, slot)];
        if (content == kVacant) continue;
        const pepa::ProcessNode& node = net.arena().node(content);
        found = node.op == pepa::Op::kConstant && node.constant == constant;
      }
    }
    if (found) sum += distribution[m];
  }
  return sum;
}

double derivative_probability(const PepaNet& net, const NetStateSpace& space,
                              std::span<const double> distribution,
                              pepa::ProcessId term) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const Marking& marking = space.marking(m);
    bool found = false;
    for (PlaceId place = 0; place < net.place_count() && !found; ++place) {
      const Place& p = net.place(place);
      for (std::size_t slot = 0; slot < p.slots.size() && !found; ++slot) {
        if (p.slots[slot].kind != Slot::Kind::kCell) continue;
        found = marking[net.slot_offset(place, slot)] == term;
      }
    }
    if (found) sum += distribution[m];
  }
  return sum;
}

}  // namespace choreo::pepanet
