#include "pepanet/netstatespace.hpp"

#include <deque>

#include "util/error.hpp"

namespace choreo::pepanet {

NetStateSpace NetStateSpace::derive(NetSemantics& semantics,
                                    const NetDeriveOptions& options) {
  return derive_from(semantics, semantics.net().initial_marking(), options);
}

NetStateSpace NetStateSpace::derive_from(NetSemantics& semantics, Marking initial,
                                         const NetDeriveOptions& options) {
  semantics.net().validate();
  NetStateSpace space;
  std::deque<std::size_t> frontier;

  auto index_of_marking = [&](Marking marking) {
    auto it = space.index_.find(marking);
    if (it != space.index_.end()) return it->second;
    if (space.markings_.size() >= options.max_markings) {
      throw util::ModelError(util::msg(
          "marking graph exceeds the configured bound of ", options.max_markings,
          " markings (state-space explosion)"));
    }
    const std::size_t index = space.markings_.size();
    space.markings_.push_back(std::move(marking));
    space.index_.emplace(space.markings_.back(), index);
    frontier.push_back(index);
    return index;
  };

  index_of_marking(std::move(initial));
  while (!frontier.empty()) {
    const std::size_t source = frontier.front();
    frontier.pop_front();
    const Marking current = space.markings_[source];  // copy: vector may grow
    for (NetMove& move : semantics.moves(current)) {
      if (move.rate.is_passive()) {
        if (options.allow_top_level_passive) continue;
        throw util::ModelError(util::msg(
            "activity '", semantics.net().arena().action_name(move.action),
            "' occurs passively at the net level: no active partner sets its",
            " rate"));
      }
      const std::size_t target = index_of_marking(std::move(move.target));
      MarkingTransition t;
      t.source = source;
      t.target = target;
      t.action = move.action;
      t.rate = move.rate.value();
      t.is_firing = move.kind == NetMove::Kind::kFiring;
      t.net_transition = move.transition;
      t.place = move.place;
      space.transitions_.push_back(t);
    }
  }
  return space;
}

std::optional<std::size_t> NetStateSpace::index_of(const Marking& marking) const {
  auto it = index_.find(marking);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

ctmc::Generator NetStateSpace::generator() const {
  std::vector<ctmc::RatedTransition> rated;
  rated.reserve(transitions_.size());
  for (const MarkingTransition& t : transitions_) {
    rated.push_back({t.source, t.target, t.rate});
  }
  return ctmc::Generator::build(marking_count(), rated);
}

std::vector<ctmc::RatedTransition> NetStateSpace::transitions_of(
    pepa::ActionId action) const {
  std::vector<ctmc::RatedTransition> out;
  for (const MarkingTransition& t : transitions_) {
    if (t.action == action) out.push_back({t.source, t.target, t.rate});
  }
  return out;
}

std::vector<std::size_t> NetStateSpace::deadlock_markings() const {
  std::vector<bool> has_move(marking_count(), false);
  for (const MarkingTransition& t : transitions_) has_move[t.source] = true;
  std::vector<std::size_t> out;
  for (std::size_t m = 0; m < marking_count(); ++m) {
    if (!has_move[m]) out.push_back(m);
  }
  return out;
}

double action_throughput(const NetStateSpace& space,
                         std::span<const double> distribution,
                         pepa::ActionId action) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (const MarkingTransition& t : space.transitions()) {
    if (t.action == action) sum += distribution[t.source] * t.rate;
  }
  return sum;
}

namespace {
std::size_t tokens_at(const PepaNet& net, const Marking& marking, PlaceId place) {
  const Place& p = net.place(place);
  std::size_t count = 0;
  for (std::size_t slot = 0; slot < p.slots.size(); ++slot) {
    if (p.slots[slot].kind != Slot::Kind::kCell) continue;
    if (marking[net.slot_offset(place, slot)] != kVacant) ++count;
  }
  return count;
}
}  // namespace

double occupancy_probability(const PepaNet& net, const NetStateSpace& space,
                             std::span<const double> distribution, PlaceId place) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    if (tokens_at(net, space.marking(m), place) > 0) sum += distribution[m];
  }
  return sum;
}

double mean_tokens_at(const PepaNet& net, const NetStateSpace& space,
                      std::span<const double> distribution, PlaceId place) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    sum += distribution[m] *
           static_cast<double>(tokens_at(net, space.marking(m), place));
  }
  return sum;
}

double derivative_probability_by_constant(const PepaNet& net,
                                          const NetStateSpace& space,
                                          std::span<const double> distribution,
                                          pepa::ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const Marking& marking = space.marking(m);
    bool found = false;
    for (PlaceId place = 0; place < net.place_count() && !found; ++place) {
      const Place& p = net.place(place);
      for (std::size_t slot = 0; slot < p.slots.size() && !found; ++slot) {
        if (p.slots[slot].kind != Slot::Kind::kCell) continue;
        const pepa::ProcessId content = marking[net.slot_offset(place, slot)];
        if (content == kVacant) continue;
        const pepa::ProcessNode& node = net.arena().node(content);
        found = node.op == pepa::Op::kConstant && node.constant == constant;
      }
    }
    if (found) sum += distribution[m];
  }
  return sum;
}

double derivative_probability(const PepaNet& net, const NetStateSpace& space,
                              std::span<const double> distribution,
                              pepa::ProcessId term) {
  CHOREO_ASSERT(distribution.size() == space.marking_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const Marking& marking = space.marking(m);
    bool found = false;
    for (PlaceId place = 0; place < net.place_count() && !found; ++place) {
      const Place& p = net.place(place);
      for (std::size_t slot = 0; slot < p.slots.size() && !found; ++slot) {
        if (p.slots[slot].kind != Slot::Kind::kCell) continue;
        found = marking[net.slot_offset(place, slot)] == term;
      }
    }
    if (found) sum += distribution[m];
  }
  return sum;
}

}  // namespace choreo::pepanet
