// Parser for the textual .pepanet format.
//
// A net file is a PEPA model (see pepa/parser.hpp for the dialect) followed
// by net declarations:
//
//   r = 1.0;
//   InstantMessage = (transmit, r).File;
//   File      = (openread, 2.0).InStream;
//   InStream  = (read, 1.8).InStream + (close, 3.0).Stop;
//   FileReader = (openread, infty).(read, infty).(close, 5.0).FileReader;
//
//   @token InstantMessage;
//   @place input  { cell InstantMessage = InstantMessage; }
//   @place output { cell InstantMessage; static FileReader; }
//   @transition transmit (rate 2.0, priority 1) from input to output;
//
// Declarations:
//   @token <Constant>;
//       Declares a token type; the constant's definition is the initial
//       derivative of tokens of this type.
//   @place <name> { <slot>; ... }
//       slot := cell <TokenType> [= <Constant>]   (vacant without '=')
//             | static <Constant>
//       Slots cooperate on their shared alphabets (the Section-3 default),
//       firing types excluded.
//   @transition <action> (rate <r> [, priority <n>]) from <p>[, <p>...]
//                                                    to <q>[, <q>...];
//       <r> is a number, a rate parameter, "infty"/"T", or w*infty.
//
// The initial marking is given by the cells' '=' initialisers.
#pragma once

#include <string>
#include <string_view>

#include "pepanet/net.hpp"

namespace choreo::pepanet {

struct ParsedNet {
  PepaNet net;
  /// Rate parameters of the embedded PEPA model (name, value).
  std::vector<std::pair<std::string, double>> parameters;
};

ParsedNet parse_net(std::string_view source, std::string source_name = "<pepanet>");
ParsedNet parse_net_file(const std::string& path);

}  // namespace choreo::pepanet
