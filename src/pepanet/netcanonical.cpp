#include "pepanet/netcanonical.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace choreo::pepanet {

MarkingCanonicalizer::MarkingCanonicalizer(PepaNet& net)
    : net_(net), terms_(net.arena()) {
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    const Place& place = net.place(p);
    const std::size_t slot_count = place.slots.size();
    std::size_t a = 0;
    while (a < slot_count) {
      // Maximal run of equal cooperation sets starting at slot `a`:
      // coop_sets[a..r-1] all equal, and either r is the last slot (the
      // fold's tail, itself a spine sibling) or coop_sets[r] differs.
      std::size_t r = a;
      while (r + 1 < slot_count && place.coop_sets[r] == place.coop_sets[a]) {
        ++r;
      }
      const bool tail_joins = (r + 1 == slot_count);
      const std::size_t group_end = tail_joins ? slot_count : r;
      // Partition the spine's slots into interchangeable storage classes:
      // same kind, and for cells the same token type.
      std::map<std::pair<int, TokenTypeId>, std::vector<std::size_t>> classes;
      for (std::size_t slot = a; slot < group_end; ++slot) {
        const Slot& s = place.slots[slot];
        const auto key = std::make_pair(
            static_cast<int>(s.kind),
            s.kind == Slot::Kind::kCell ? s.cell_type : TokenTypeId{0});
        classes[key].push_back(net.slot_offset(p, slot));
      }
      for (auto& [key, offsets] : classes) {
        if (offsets.size() >= 2) groups_.push_back({std::move(offsets)});
      }
      a = tail_joins ? slot_count : std::max(r, a + 1);
    }
  }
}

bool MarkingCanonicalizer::operator()(Marking& marking) {
  bool changed = false;
  // Tokens and statics can hold populations of their own; canonicalize
  // every occupied slot's term first so the slot sort below compares
  // canonical forms.
  for (pepa::ProcessId& slot : marking) {
    if (slot == kVacant) continue;
    if (terms_(slot)) changed = true;
  }
  const pepa::ProcessArena& arena = net_.arena();
  std::vector<pepa::ProcessId> contents;
  for (const Group& group : groups_) {
    contents.clear();
    for (const std::size_t offset : group.offsets) {
      contents.push_back(marking[offset]);
    }
    // Structural order with vacant cells last, so "which cells are full"
    // collapses to "how many cells are full".
    std::sort(contents.begin(), contents.end(),
              [&arena](pepa::ProcessId x, pepa::ProcessId y) {
                if (x == kVacant || y == kVacant) return y == kVacant && x != kVacant;
                return pepa::structural_less(arena, x, y);
              });
    for (std::size_t i = 0; i < group.offsets.size(); ++i) {
      if (marking[group.offsets[i]] != contents[i]) {
        marking[group.offsets[i]] = contents[i];
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace choreo::pepanet
