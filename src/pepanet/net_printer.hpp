// Rendering of PEPA nets and markings for diagnostics and reports.
#pragma once

#include <string>

#include "pepanet/net.hpp"

namespace choreo::pepanet {

/// Multi-line description: token types, places with slots and cooperation
/// sets, and net transitions.
std::string to_string(const PepaNet& net);

/// One-line marking rendering, e.g.
///   "input[IM] output[_] || FileReader".
std::string marking_to_string(const PepaNet& net, const Marking& marking);

/// Emits the net as a complete, re-parseable .pepanet source: all PEPA
/// definitions, token/place declarations with explicit sync sets, and the
/// net transitions.  Non-constant initial terms get synthetic definitions.
/// parse_net(to_source(net)) derives a semantically identical net (names of
/// synthetic constants and token types may differ).
std::string to_source(const PepaNet& net);

}  // namespace choreo::pepanet
