// The Choreographer design platform as a command-line tool: the Figure-4
// pipeline over XMI project files.
//
//   choreographer INPUT.xmi [-o OUTPUT.xmi] [--rates FILE.rates]
//                 [--report] [--solver METHOD] [--default-rate R]
//                 [--threads N] [--deadline-seconds S]
//                 [--aggregation none|exact|fluid] [--fluid-rel-tol T]
//                 [--fluid-abs-tol T] [--fluid-t-end T]
//                 [--sensitivity ACTION] [--emit-pepanet FILE]
//
// --threads N explores state spaces with N parallel lanes (0 = one per
// core); the derived chain and every output byte are identical at any N.
//
// --aggregation picks the state-space taming level: none (full chain),
// exact (the strong-equivalence quotient, derived directly — symmetric
// states collapse inside the exploration engine, so peak memory and the
// reported counts are the quotient's) or fluid (population-level
// mean-field ODE — no state space at all; the --fluid-* knobs set the
// integrator's error tolerances and horizon).
//
// --deadline-seconds S bounds the analysis wall clock: derivation checks
// the deadline once per breadth-first level and the solvers every few
// iterations, so an overrunning analysis stops promptly with exit code 3.
//
// --sensitivity ACTION additionally prints the elasticity of ACTION's
// throughput with respect to every activity rate (the bottleneck ranking).
// --emit-pepanet FILE writes the PEPA net extracted from the first activity
// diagram as re-parseable .pepanet source (the intermediate representation
// of the Figure-4 pipeline).
//
// Reads a project (UML model + tool layout), extracts PEPA nets from the
// activity diagrams and a PEPA model from the state diagrams, solves the
// CTMCs, reflects throughput/probability tags into the model, and writes
// the annotated project with the layout restored.
#include <cstring>
#include <iostream>
#include <string>

#include "choreographer/pipeline.hpp"
#include "choreographer/extract_activity.hpp"
#include "choreographer/sensitivity.hpp"
#include "pepanet/net_printer.hpp"
#include <fstream>
#include "uml/layout.hpp"
#include "uml/xmi.hpp"
#include "xml/parse.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " INPUT.xmi [-o OUTPUT.xmi] [--rates FILE.rates] [--report]\n"
         "           [--solver auto|dense-lu|jacobi|gauss-seidel|sor|power]\n"
         "           [--default-rate R] [--threads N] [--deadline-seconds S]\n"
         "           [--aggregation none|exact|fluid] [--fluid-rel-tol T]\n"
         "           [--fluid-abs-tol T] [--fluid-t-end T]\n"
         "           [--sensitivity ACTION] [--emit-pepanet FILE]\n";
  return 2;
}

choreo::chor::Aggregation parse_aggregation(const std::string& name) {
  using choreo::chor::Aggregation;
  if (name == "none") return Aggregation::kNone;
  if (name == "exact") return Aggregation::kExact;
  if (name == "fluid") return Aggregation::kFluid;
  throw choreo::util::Error("unknown aggregation level '" + name +
                            "' (expected none, exact or fluid)");
}

choreo::ctmc::Method parse_method(const std::string& name) {
  using choreo::ctmc::Method;
  if (name == "auto") return Method::kAuto;
  if (name == "dense-lu") return Method::kDenseLU;
  if (name == "jacobi") return Method::kJacobi;
  if (name == "gauss-seidel") return Method::kGaussSeidel;
  if (name == "sor") return Method::kSor;
  if (name == "power") return Method::kPower;
  throw choreo::util::Error("unknown solver method '" + name + "'");
}

double parse_double(const char* flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw choreo::util::Error(std::string(flag) + " expects a number, got '" +
                              value + "'");
  }
}

std::size_t parse_count(const char* flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long parsed = std::stoul(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw choreo::util::Error(std::string(flag) + " expects a count, got '" +
                              value + "'");
  }
}

void print_report(const choreo::chor::AnalysisReport& report) {
  using choreo::util::TextTable;
  for (const auto& graph : report.activity_graphs) {
    std::cout << "activity graph '" << graph.graph_name << "': "
              << graph.marking_count << " markings, solved in "
              << graph.timings.solve_seconds * 1e3 << " ms\n";
    TextTable table({"activity", "throughput (1/s)"});
    for (const auto& [action, value] : graph.throughputs) {
      table.add_row_values(action, {value});
    }
    std::cout << table << '\n';
  }
  for (const auto& machines : report.state_machines) {
    std::cout << "state machines: " << machines.state_count
              << " joint states, solved in " << machines.timings.solve_seconds * 1e3
              << " ms\n";
    TextTable table({"action", "throughput (1/s)"});
    for (const auto& [action, value] : machines.throughputs) {
      table.add_row_values(action, {value});
    }
    std::cout << table << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string sensitivity_target;
  std::string emit_pepanet;
  bool report_requested = false;
  double deadline_seconds = 0.0;
  choreo::util::Budget budget;
  choreo::chor::AnalysisOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          throw choreo::util::Error(std::string(flag) + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "-o" || arg == "--output") {
        output = next_value("-o");
      } else if (arg == "--rates") {
        options.rates = choreo::chor::parse_rates_file(next_value("--rates"));
      } else if (arg == "--report") {
        report_requested = true;
      } else if (arg == "--solver") {
        options.solver.method = parse_method(next_value("--solver"));
      } else if (arg == "--default-rate") {
        options.default_rate =
            parse_double("--default-rate", next_value("--default-rate"));
      } else if (arg == "--threads") {
        options.derive_threads =
            parse_count("--threads", next_value("--threads"));
      } else if (arg == "--aggregation") {
        options.aggregation = parse_aggregation(next_value("--aggregation"));
      } else if (arg == "--fluid-rel-tol") {
        options.fluid_rel_tol =
            parse_double("--fluid-rel-tol", next_value("--fluid-rel-tol"));
      } else if (arg == "--fluid-abs-tol") {
        options.fluid_abs_tol =
            parse_double("--fluid-abs-tol", next_value("--fluid-abs-tol"));
      } else if (arg == "--fluid-t-end") {
        options.fluid_t_end =
            parse_double("--fluid-t-end", next_value("--fluid-t-end"));
      } else if (arg == "--deadline-seconds") {
        deadline_seconds = parse_double("--deadline-seconds",
                                        next_value("--deadline-seconds"));
      } else if (arg == "--sensitivity") {
        sensitivity_target = next_value("--sensitivity");
      } else if (arg == "--emit-pepanet") {
        emit_pepanet = next_value("--emit-pepanet");
      } else if (arg == "-h" || arg == "--help") {
        return usage(argv[0]);
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage(argv[0]);
      } else if (input.empty()) {
        input = arg;
      } else {
        std::cerr << "unexpected argument '" << arg << "'\n";
        return usage(argv[0]);
      }
    }
    if (input.empty()) return usage(argv[0]);
    if (output.empty()) {
      output = choreo::util::ends_with(input, ".xmi")
                   ? input.substr(0, input.size() - 4) + "_analysed.xmi"
                   : input + ".analysed";
    }
    if (deadline_seconds > 0.0) {
      // The clock starts here, spanning parsing, every derivation and
      // every solve (and sensitivity re-solves below).
      budget.set_deadline_seconds(deadline_seconds);
      options.budget = &budget;
    }

    const auto report = choreo::chor::analyse_project_file(input, output, options);
    std::cout << "annotated project written to " << output << '\n';
    if (report_requested) print_report(report);
    if (!emit_pepanet.empty()) {
      const choreo::uml::SplitProject split =
          choreo::uml::preprocess(choreo::xml::parse_file(input));
      choreo::uml::Model model = choreo::uml::from_xmi(split.model);
      if (model.activity_graphs().empty()) {
        throw choreo::util::Error("--emit-pepanet needs an activity diagram");
      }
      choreo::chor::ExtractOptions extract_options;
      extract_options.default_rate = options.default_rate;
      const auto extraction = choreo::chor::extract_activity_graph(
          model.activity_graphs()[0], extract_options);
      std::ofstream stream(emit_pepanet, std::ios::binary);
      stream << choreo::pepanet::to_source(extraction.net);
      std::cout << "extracted PEPA net written to " << emit_pepanet << '\n';
    }
    if (!sensitivity_target.empty()) {
      const choreo::uml::SplitProject split =
          choreo::uml::preprocess(choreo::xml::parse_file(input));
      choreo::uml::Model model = choreo::uml::from_xmi(split.model);
      choreo::chor::SensitivityOptions sensitivity_options;
      sensitivity_options.analysis = options;
      const auto sensitivity = choreo::chor::throughput_sensitivity(
          model, sensitivity_target, sensitivity_options);
      std::cout << "sensitivity of throughput(" << sensitivity.target
                << ") = " << sensitivity.base_value << ":\n";
      choreo::util::TextTable table({"activity", "rate", "elasticity"});
      for (const auto& entry : sensitivity.entries) {
        table.add_row_values(entry.activity,
                             {entry.base_rate, entry.elasticity});
      }
      std::cout << table;
    }
    return 0;
  } catch (const choreo::util::InterruptedError& error) {
    std::cerr << "choreographer: " << error.what() << '\n';
    return 3;
  } catch (const choreo::util::Error& error) {
    std::cerr << "choreographer: " << error.what() << '\n';
    return 1;
  }
}
