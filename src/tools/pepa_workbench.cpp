// The PEPA Workbench as a command-line tool: solves .pepa models and
// .pepanet nets for their steady state and prints measures.
//
//   pepa_workbench MODEL.pepa    [--states] [--solver METHOD] [--prism BASE] [--dot FILE] [--aggregate]
//                                [--quotient] [--measures FILE] [--passage-to NAME] [--threads N]
//   pepa_workbench MODEL.pepanet [... same options ...]
//   pepa_workbench MODEL.pepa    --sweep NAME=SPEC [--sweep NAME=SPEC ...]
//                                [--sweep-zip] [--sweep-backend exact|fluid]
//                                [--sweep-json] [--sweep-out FILE] [--threads N]
//
// --threads N explores the state/marking space with N parallel lanes (0 =
// one per core, 1 = sequential); outputs are identical at any N.
//
// --sweep runs a design-space sweep over the named rate parameters instead
// of a single solve: the state space is derived once and every point is
// re-solved against the shared structure.  SPEC is LO:HI:COUNT (linear),
// log:LO:HI:COUNT or V1,V2,...; multiple --sweep axes form a Cartesian
// grid unless --sweep-zip pairs them position-by-position.  The result
// table goes to stdout (CSV; --sweep-json for JSON) or to --sweep-out.
//
// --aggregate lumps *after* a full derivation (post-hoc strong-equivalence
// aggregation, the correctness oracle); --quotient derives the quotient
// *directly* — successors collapse to canonical representatives inside the
// exploration engine, so the full space is never held in memory.
//
// --prism BASE additionally exports the derived CTMC as BASE.tra/.sta/.lab
// in the PRISM model checker's explicit-state format (the paper connects
// its extractors to PRISM for model checking).  --dot FILE writes the
// derivation graph / marking graph in GraphViz format.
//
// A file is treated as a PEPA net when it contains net declarations
// (@token/@place/@transition); otherwise it is a plain PEPA model.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ctmc/passage.hpp"
#include "ctmc/prism_export.hpp"
#include "ctmc/steady_state.hpp"
#include "choreographer/measures_spec.hpp"
#include "pepa/aggregate.hpp"
#include "pepa/dot.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_dot.hpp"
#include "pepanet/netaggregate.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/net_printer.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " MODEL.pepa|MODEL.pepanet [--states]"
               " [--solver auto|dense-lu|jacobi|gauss-seidel|sor|power]"
               " [--prism BASE] [--dot FILE] [--aggregate] [--quotient]"
               " [--measures FILE]"
               " [--passage-to NAME] [--threads N]\n"
               "       " << argv0
            << " MODEL.pepa --sweep NAME=SPEC [--sweep ...] [--sweep-zip]"
               " [--sweep-backend exact|fluid] [--sweep-json]"
               " [--sweep-out FILE]\n";
  return 2;
}

choreo::ctmc::Method parse_method(const std::string& name) {
  using choreo::ctmc::Method;
  if (name == "auto") return Method::kAuto;
  if (name == "dense-lu") return Method::kDenseLU;
  if (name == "jacobi") return Method::kJacobi;
  if (name == "gauss-seidel") return Method::kGaussSeidel;
  if (name == "sor") return Method::kSor;
  if (name == "power") return Method::kPower;
  throw choreo::util::Error("unknown solver method '" + name + "'");
}

bool is_net_source(const std::string& source) {
  // Cheap heuristic matching the net parser's own section finder.
  return source.find("@token") != std::string::npos ||
         source.find("@place") != std::string::npos;
}

int run_sweep(const std::string& source, const std::string& name,
              const choreo::ctmc::SolveOptions& options,
              const choreo::sweep::SweepSpec& spec,
              choreo::sweep::Backend backend, bool json,
              const std::string& out_path, std::size_t threads) {
  using namespace choreo;
  pepa::Model model = pepa::parse_model(source, name);
  sweep::SweepOptions sweep_options;
  sweep_options.backend = backend;
  sweep_options.solver = options;
  sweep_options.derive.threads = threads;
  sweep_options.threads = threads;
  const sweep::SweepTable table = sweep::sweep(model, spec, sweep_options);
  std::cerr << "sweep: " << table.rows.size() << " point(s), "
            << table.derivations << " derivation(s), " << table.state_count
            << " shared states, "
            << util::format_double(table.seconds * 1e3) << " ms\n";
  bool any_failed = false;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    if (table.rows[r].ok()) continue;
    any_failed = true;
    std::cerr << "point " << r << ": " << table.rows[r].error << '\n';
  }
  const std::string rendered = json ? table.to_json() : table.to_csv();
  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream stream(out_path, std::ios::binary);
    if (!stream || !(stream << rendered) || !stream.flush()) {
      throw util::Error("cannot write sweep table to '" + out_path + "'");
    }
    std::cerr << "sweep table written to " << out_path << '\n';
  }
  return any_failed ? 1 : 0;
}

int solve_pepa(const std::string& source, const std::string& name,
               bool show_states, const choreo::ctmc::SolveOptions& options,
               const std::string& prism_base, const std::string& dot_path,
               bool aggregate_first, bool quotient,
               const std::vector<choreo::chor::MeasureSpec>& measures,
               const std::string& passage_target, std::size_t threads) {
  using namespace choreo;
  pepa::Model model = pepa::parse_model(source, name);
  pepa::Semantics semantics(model.arena());
  pepa::DeriveOptions derive_options;
  derive_options.threads = threads;
  derive_options.aggregate = quotient;
  const auto space =
      pepa::StateSpace::derive(semantics, model.system(), derive_options);
  std::cout << (quotient ? "quotient state space: " : "state space: ")
            << space.state_count() << " states, "
            << space.transitions().size() << " transitions (derived in "
            << space.stats().seconds * 1e3 << " ms)\n";
  if (quotient) {
    std::cout << "quotient-direct derivation: "
              << space.stats().canonical_rewrites
              << " successor(s) rewritten to canonical representatives\n";
  }
  const auto deadlocks = space.deadlock_states();
  if (!deadlocks.empty()) {
    std::cout << "warning: " << deadlocks.size() << " deadlock state(s), e.g. "
              << pepa::to_string(model.arena(), space.state_term(deadlocks[0]))
              << '\n';
  }
  if (aggregate_first) {
    const auto lumping = pepa::aggregate(space);
    std::cout << "aggregated " << space.state_count() << " states into "
              << lumping.block_count << " strong-equivalence blocks\n";
    const auto solved = ctmc::steady_state(lumping.quotient_generator(), options);
    std::cout << "solved quotient with " << ctmc::method_name(solved.method_used)
              << ", residual " << solved.residual << "\n\n";
    util::TextTable throughputs({"activity", "throughput"});
    for (pepa::ActionId action = 1; action < model.arena().action_count();
         ++action) {
      const double value = lumping.throughput(solved.distribution, action);
      if (value > 0.0) {
        throughputs.add_row_values(model.arena().action_name(action), {value});
      }
    }
    std::cout << throughputs;
    return 0;
  }
  const auto solved = ctmc::steady_state(space.generator(), options);
  std::cout << "solved with " << ctmc::method_name(solved.method_used) << ", "
            << solved.iterations << " iteration(s), residual "
            << solved.residual << "\n\n";
  if (!prism_base.empty()) {
    ctmc::write_prism_files(space.generator(), prism_base);
    std::cout << "PRISM explicit files written to " << prism_base
              << ".tra/.sta/.lab\n\n";
  }
  if (!dot_path.empty()) {
    std::ofstream dot(dot_path, std::ios::binary);
    dot << pepa::to_dot(model.arena(), space);
    std::cout << "derivation graph written to " << dot_path << "\n\n";
  }
  if (!passage_target.empty()) {
    const auto constant = model.arena().find_constant(passage_target);
    if (!constant) {
      throw util::Error("unknown derivative '" + passage_target + "'");
    }
    std::vector<std::size_t> targets;
    for (std::size_t s = 0; s < space.state_count(); ++s) {
      if (pepa::occupies(model.arena(), space.state_term(s), *constant)) {
        targets.push_back(s);
      }
    }
    if (targets.empty()) {
      throw util::Error("no reachable state occupies '" + passage_target + "'");
    }
    std::cout << "mean first passage (initial -> " << passage_target
              << "): "
              << ctmc::mean_passage_time(space.generator(), 0, targets)
              << "\n\n";
  }
  if (!measures.empty()) {
    util::TextTable table({"measure", "value"});
    for (const auto& value :
         chor::evaluate_measures(measures, model.arena(), space,
                                 solved.distribution)) {
      table.add_row({value.spec.to_string(),
                     value.supported ? util::format_double(value.value)
                                     : "unsupported (" + value.note + ")"});
    }
    std::cout << table;
    return 0;
  }
  if (show_states) {
    util::TextTable states({"state", "probability"});
    for (std::size_t s = 0; s < space.state_count(); ++s) {
      states.add_row_values(pepa::to_string(model.arena(), space.state_term(s)),
                            {solved.distribution[s]});
    }
    std::cout << states << '\n';
  }
  util::TextTable throughputs({"activity", "throughput"});
  for (const auto& [action, value] :
       pepa::all_throughputs(space, solved.distribution, model.arena())) {
    throughputs.add_row_values(model.arena().action_name(action), {value});
  }
  std::cout << throughputs;
  return 0;
}

int solve_net(const std::string& source, const std::string& name,
              bool show_states, const choreo::ctmc::SolveOptions& options,
              const std::string& prism_base, const std::string& dot_path,
              bool aggregate_first, bool quotient,
              const std::vector<choreo::chor::MeasureSpec>& measures,
              const std::string& passage_target, std::size_t threads) {
  using namespace choreo;
  auto parsed = pepanet::parse_net(source, name);
  pepanet::NetSemantics semantics(parsed.net);
  pepanet::NetDeriveOptions derive_options;
  derive_options.threads = threads;
  derive_options.aggregate = quotient;
  const auto space = pepanet::NetStateSpace::derive(semantics, derive_options);
  std::cout << (quotient ? "quotient marking graph: " : "marking graph: ")
            << space.marking_count() << " markings, "
            << space.transitions().size() << " transitions (derived in "
            << space.stats().seconds * 1e3 << " ms)\n";
  if (quotient) {
    std::cout << "quotient-direct derivation: "
              << space.stats().canonical_rewrites
              << " successor(s) rewritten to canonical representatives\n";
  }
  const auto deadlocks = space.deadlock_markings();
  if (!deadlocks.empty()) {
    std::cout << "warning: " << deadlocks.size() << " deadlock marking(s), e.g. "
              << pepanet::marking_to_string(parsed.net,
                                            space.marking(deadlocks[0]))
              << '\n';
  }
  if (aggregate_first) {
    const auto lumping = pepanet::aggregate(space);
    std::cout << "aggregated " << space.marking_count() << " markings into "
              << lumping.block_count << " strong-equivalence blocks\n";
    const auto solved = ctmc::steady_state(lumping.quotient_generator(), options);
    std::cout << "solved quotient with " << ctmc::method_name(solved.method_used)
              << ", residual " << solved.residual << "\n\n";
    util::TextTable throughputs({"activity", "throughput"});
    for (pepa::ActionId action = 1;
         action < parsed.net.arena().action_count(); ++action) {
      const double value = lumping.throughput(solved.distribution, action);
      if (value > 0.0) {
        throughputs.add_row_values(parsed.net.arena().action_name(action),
                                   {value});
      }
    }
    std::cout << throughputs;
    return 0;
  }
  const auto solved = ctmc::steady_state(space.generator(), options);
  std::cout << "solved with " << ctmc::method_name(solved.method_used) << ", "
            << solved.iterations << " iteration(s), residual "
            << solved.residual << "\n\n";
  if (!prism_base.empty()) {
    ctmc::write_prism_files(space.generator(), prism_base);
    std::cout << "PRISM explicit files written to " << prism_base
              << ".tra/.sta/.lab\n\n";
  }
  if (!dot_path.empty()) {
    std::ofstream dot(dot_path, std::ios::binary);
    dot << pepanet::marking_graph_to_dot(parsed.net, space);
    std::cout << "marking graph written to " << dot_path << "\n\n";
  }
  if (!passage_target.empty()) {
    std::cout << "note: --passage-to applies to plain PEPA models\n\n";
  }
  if (!measures.empty()) {
    util::TextTable table({"measure", "value"});
    for (const auto& value : chor::evaluate_measures(measures, parsed.net,
                                                     space,
                                                     solved.distribution)) {
      table.add_row({value.spec.to_string(),
                     value.supported ? util::format_double(value.value)
                                     : "unsupported (" + value.note + ")"});
    }
    std::cout << table;
    return 0;
  }
  if (show_states) {
    util::TextTable markings({"marking", "probability"});
    for (std::size_t m = 0; m < space.marking_count(); ++m) {
      markings.add_row_values(
          pepanet::marking_to_string(parsed.net, space.marking(m)),
          {solved.distribution[m]});
    }
    std::cout << markings << '\n';
  }
  util::TextTable throughputs({"activity", "throughput"});
  for (pepa::ActionId action = 1; action < parsed.net.arena().action_count();
       ++action) {
    const double value =
        pepanet::action_throughput(space, solved.distribution, action);
    if (value > 0.0) {
      throughputs.add_row_values(parsed.net.arena().action_name(action), {value});
    }
  }
  std::cout << throughputs;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string prism_base;
  std::string dot_path;
  bool show_states = false;
  bool aggregate_first = false;
  bool quotient = false;
  std::vector<choreo::chor::MeasureSpec> measures;
  std::string passage_target;
  std::size_t threads = 1;
  choreo::ctmc::SolveOptions options;
  choreo::sweep::SweepSpec sweep_spec;
  choreo::sweep::Backend sweep_backend = choreo::sweep::Backend::kExact;
  bool sweep_json = false;
  std::string sweep_out;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--states") {
        show_states = true;
      } else if (arg == "--solver") {
        if (i + 1 >= argc) return usage(argv[0]);
        options.method = parse_method(argv[++i]);
      } else if (arg == "--prism") {
        if (i + 1 >= argc) return usage(argv[0]);
        prism_base = argv[++i];
      } else if (arg == "--dot") {
        if (i + 1 >= argc) return usage(argv[0]);
        dot_path = argv[++i];
      } else if (arg == "--aggregate") {
        aggregate_first = true;
      } else if (arg == "--quotient") {
        quotient = true;
      } else if (arg == "--measures") {
        if (i + 1 >= argc) return usage(argv[0]);
        measures = choreo::chor::parse_measures_file(argv[++i]);
      } else if (arg == "--passage-to") {
        if (i + 1 >= argc) return usage(argv[0]);
        passage_target = argv[++i];
      } else if (arg == "--sweep") {
        if (i + 1 >= argc) return usage(argv[0]);
        sweep_spec.axes.push_back(choreo::sweep::parse_axis(argv[++i]));
      } else if (arg == "--sweep-zip") {
        sweep_spec.combine = choreo::sweep::Combine::kZip;
      } else if (arg == "--sweep-backend") {
        if (i + 1 >= argc) return usage(argv[0]);
        const std::string value = argv[++i];
        if (value == "exact") {
          sweep_backend = choreo::sweep::Backend::kExact;
        } else if (value == "fluid") {
          sweep_backend = choreo::sweep::Backend::kFluid;
        } else {
          throw choreo::util::Error("unknown sweep backend '" + value +
                                    "' (expected exact or fluid)");
        }
      } else if (arg == "--sweep-json") {
        sweep_json = true;
      } else if (arg == "--sweep-out") {
        if (i + 1 >= argc) return usage(argv[0]);
        sweep_out = argv[++i];
      } else if (arg == "--threads") {
        if (i + 1 >= argc) return usage(argv[0]);
        const std::string value = argv[++i];
        try {
          std::size_t used = 0;
          threads = std::stoul(value, &used);
          if (used != value.size()) throw std::invalid_argument(value);
        } catch (const std::exception&) {
          throw choreo::util::Error("--threads expects a count, got '" +
                                    value + "'");
        }
      } else if (arg == "-h" || arg == "--help") {
        return usage(argv[0]);
      } else if (!arg.empty() && arg[0] == '-') {
        return usage(argv[0]);
      } else if (path.empty()) {
        path = arg;
      } else {
        return usage(argv[0]);
      }
    }
    if (path.empty()) return usage(argv[0]);

    std::ifstream stream(path, std::ios::binary);
    if (!stream) {
      std::cerr << "cannot open '" << path << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const std::string source = buffer.str();

    if (!sweep_spec.axes.empty()) {
      if (is_net_source(source)) {
        throw choreo::util::Error(
            "--sweep applies to plain PEPA models, not PEPA nets");
      }
      return run_sweep(source, path, options, sweep_spec, sweep_backend,
                       sweep_json, sweep_out, threads);
    }
    return is_net_source(source)
               ? solve_net(source, path, show_states, options, prism_base,
                           dot_path, aggregate_first, quotient, measures,
                           passage_target, threads)
               : solve_pepa(source, path, show_states, options, prism_base,
                            dot_path, aggregate_first, quotient, measures,
                            passage_target, threads);
  } catch (const choreo::util::Error& error) {
    std::cerr << "pepa_workbench: " << error.what() << '\n';
    return 1;
  }
}
