// The analysis service as a command-line tool: a manifest of jobs driven
// through the concurrent scheduler, the content-addressed result cache and
// the metrics registry.
//
//   choreographer_batch MANIFEST [--workers N] [--queue N] [--repeat N]
//                       [--cache-bytes BYTES] [--timeout SECONDS]
//                       [--retries N] [--derive-threads N] [--no-metrics]
//
// --derive-threads N sets the exploration lanes per job (default 1: the
// scheduler already runs jobs concurrently); results are identical at any N.
//
// Manifest format, one job per line (# and // start comments):
//
//   INPUT.xmi [out=OUTPUT.xmi] [rates=FILE.rates] [solver=METHOD]
//             [default-rate=R] [aggregation=none|exact|fluid]
//             [aggregate=0|1] [fluid-rel-tol=T] [fluid-abs-tol=T]
//             [fluid-t-end=T] [timeout=SECONDS] [name=LABEL]
//
// A line starting with the verb `sweep` submits a design-space sweep over
// a PEPA file instead of a pipeline run: the model's state space is
// derived once and every axis point is re-solved against the shared
// structure (points previously solved against the same structure are
// served from the cache):
//
//   sweep MODEL.pepa axis=NAME=SPEC [axis=...] [zip=1]
//         [backend=exact|fluid] [out=TABLE] [format=csv|json]
//         [threads=N] [solver=METHOD] [timeout=SECONDS] [name=LABEL]
//
// where each axis SPEC is LO:HI:COUNT (linear), log:LO:HI:COUNT or
// V1,V2,...; multiple axes form a Cartesian grid unless zip=1.
//
// aggregation=exact derives the strong-equivalence quotient directly
// (states collapse during exploration, so reported counts and peak memory
// are quotient-sized); the scheduler's retry ladder steps none -> exact ->
// fluid on state-bound failures either way.
//
// Every manifest pass submits all jobs, waits, and prints a per-job table
// (status, attempts, cache hit, aggregation used, markings/states,
// timings).  --repeat N runs the manifest N times against the same warm
// cache: with N >= 2 the second pass is served entirely from the cache and
// the annotated XMI bytes are identical to the first pass.  After the last
// pass the Prometheus-style metrics exposition is printed (suppress with
// --no-metrics).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "choreographer/rates.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "sweep/spec.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

namespace cs = choreo::service;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " MANIFEST [--workers N] [--queue N] [--repeat N]\n"
               "       [--cache-bytes BYTES] [--timeout SECONDS]"
               " [--retries N] [--derive-threads N] [--no-metrics]\n"
               "manifest lines: INPUT.xmi [out=F] [rates=F] [solver=M]"
               " [default-rate=R]\n"
               "                [aggregation=none|exact|fluid]"
               " [aggregate=0|1] [timeout=S] [name=LABEL]\n"
               "                [fluid-rel-tol=T] [fluid-abs-tol=T]"
               " [fluid-t-end=T]\n"
               "           or:  sweep MODEL.pepa axis=NAME=SPEC [axis=...]"
               " [zip=1]\n"
               "                [backend=exact|fluid] [out=TABLE]"
               " [format=csv|json] [threads=N]\n"
               "                [solver=M] [timeout=S] [name=LABEL]\n";
  return 2;
}

double parse_double(const std::string& what, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw choreo::util::Error("expected a number for " + what + ", got '" +
                              value + "'");
  }
}

std::size_t parse_size(const std::string& what, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long parsed = std::stoul(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw choreo::util::Error("expected a count for " + what + ", got '" +
                              value + "'");
  }
}

choreo::ctmc::Method parse_method(const std::string& name) {
  using choreo::ctmc::Method;
  if (name == "auto") return Method::kAuto;
  if (name == "dense-lu") return Method::kDenseLU;
  if (name == "jacobi") return Method::kJacobi;
  if (name == "gauss-seidel") return Method::kGaussSeidel;
  if (name == "sor") return Method::kSor;
  if (name == "power") return Method::kPower;
  throw choreo::util::Error("unknown solver method '" + name + "'");
}

choreo::chor::Aggregation parse_aggregation(const std::string& name) {
  using choreo::chor::Aggregation;
  if (name == "none") return Aggregation::kNone;
  if (name == "exact") return Aggregation::kExact;
  if (name == "fluid") return Aggregation::kFluid;
  throw choreo::util::Error("unknown aggregation level '" + name +
                            "' (expected none, exact or fluid)");
}

std::vector<cs::JobRequest> parse_manifest(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw choreo::util::Error("cannot open manifest '" + path + "'");
  }
  std::vector<cs::JobRequest> requests;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto comment = std::min(line.find('#'), line.find("//"));
    if (comment != std::string::npos) line = line.substr(0, comment);
    const std::vector<std::string> fields = choreo::util::split_ws(line);
    if (fields.empty()) continue;

    cs::JobRequest request;
    std::size_t first_option = 1;
    if (fields[0] == "sweep") {
      if (fields.size() < 2) {
        throw choreo::util::Error(choreo::util::msg(
            path, ":", line_number, ": sweep needs a PEPA model path"));
      }
      request.sweep.emplace();
      request.sweep->model_path = fields[1];
      first_option = 2;
    } else {
      request.input_path = fields[0];
    }
    for (std::size_t i = first_option; i < fields.size(); ++i) {
      const auto equals = fields[i].find('=');
      if (equals == std::string::npos) {
        throw choreo::util::Error(choreo::util::msg(
            path, ":", line_number, ": expected key=value, got '", fields[i],
            "'"));
      }
      const std::string key = fields[i].substr(0, equals);
      const std::string value = fields[i].substr(equals + 1);
      if (key == "out") {
        request.output_path = value;
      } else if (key == "rates") {
        request.options.rates = choreo::chor::parse_rates_file(value);
      } else if (key == "solver") {
        request.options.solver.method = parse_method(value);
      } else if (key == "default-rate") {
        request.options.default_rate = parse_double("default-rate", value);
      } else if (key == "aggregate") {
        // Legacy boolean form of "aggregation": 1 means the exact quotient.
        request.options.aggregation = value != "0"
                                          ? choreo::chor::Aggregation::kExact
                                          : choreo::chor::Aggregation::kNone;
      } else if (key == "aggregation") {
        request.options.aggregation = parse_aggregation(value);
      } else if (key == "fluid-rel-tol") {
        request.options.fluid_rel_tol = parse_double("fluid-rel-tol", value);
      } else if (key == "fluid-abs-tol") {
        request.options.fluid_abs_tol = parse_double("fluid-abs-tol", value);
      } else if (key == "fluid-t-end") {
        request.options.fluid_t_end = parse_double("fluid-t-end", value);
      } else if (key == "timeout") {
        request.timeout_seconds = parse_double("timeout", value);
      } else if (key == "name") {
        request.name = value;
      } else if (key == "axis" && request.sweep) {
        // The value is the full NAME=SPEC form parse_axis understands.
        request.sweep->spec.axes.push_back(choreo::sweep::parse_axis(value));
      } else if (key == "zip" && request.sweep) {
        request.sweep->spec.combine = value != "0"
                                          ? choreo::sweep::Combine::kZip
                                          : choreo::sweep::Combine::kCartesian;
      } else if (key == "backend" && request.sweep) {
        if (value == "exact") {
          request.sweep->backend = choreo::sweep::Backend::kExact;
        } else if (value == "fluid") {
          request.sweep->backend = choreo::sweep::Backend::kFluid;
        } else {
          throw choreo::util::Error(choreo::util::msg(
              path, ":", line_number, ": unknown sweep backend '", value,
              "' (expected exact or fluid)"));
        }
      } else if (key == "format" && request.sweep) {
        if (value == "csv") {
          request.sweep->format = cs::SweepJobRequest::Format::kCsv;
        } else if (value == "json") {
          request.sweep->format = cs::SweepJobRequest::Format::kJson;
        } else {
          throw choreo::util::Error(choreo::util::msg(
              path, ":", line_number, ": unknown sweep format '", value,
              "' (expected csv or json)"));
        }
      } else if (key == "threads" && request.sweep) {
        request.sweep->threads = parse_size("threads", value);
      } else {
        throw choreo::util::Error(choreo::util::msg(
            path, ":", line_number, ": unknown manifest key '", key, "'"));
      }
    }
    if (request.sweep && request.sweep->spec.axes.empty()) {
      throw choreo::util::Error(choreo::util::msg(
          path, ":", line_number, ": sweep needs at least one axis=..."));
    }
    if (request.name.empty()) {
      request.name =
          request.sweep ? request.sweep->model_path : *request.input_path;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

std::string describe_sizes(const choreo::chor::AnalysisReport& report) {
  std::size_t markings = 0;
  for (const auto& graph : report.activity_graphs) {
    markings += graph.marking_count;
  }
  std::size_t states = 0;
  for (const auto& machines : report.state_machines) {
    states += machines.state_count;
  }
  std::ostringstream out;
  out << markings;
  if (states != 0) out << '+' << states;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  cs::SchedulerOptions scheduler_options;
  cs::CacheOptions cache_options;
  std::size_t repeat = 1;
  bool print_metrics = true;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          throw choreo::util::Error(std::string(flag) + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--workers") {
        scheduler_options.workers = parse_size("--workers", next_value("--workers"));
      } else if (arg == "--queue") {
        scheduler_options.queue_capacity =
            parse_size("--queue", next_value("--queue"));
      } else if (arg == "--repeat") {
        repeat = parse_size("--repeat", next_value("--repeat"));
      } else if (arg == "--cache-bytes") {
        cache_options.max_bytes =
            parse_size("--cache-bytes", next_value("--cache-bytes"));
      } else if (arg == "--timeout") {
        scheduler_options.default_timeout_seconds =
            parse_double("--timeout", next_value("--timeout"));
      } else if (arg == "--retries") {
        scheduler_options.max_retries =
            parse_size("--retries", next_value("--retries"));
      } else if (arg == "--derive-threads") {
        scheduler_options.derive_threads =
            parse_size("--derive-threads", next_value("--derive-threads"));
      } else if (arg == "--no-metrics") {
        print_metrics = false;
      } else if (arg == "-h" || arg == "--help") {
        return usage(argv[0]);
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage(argv[0]);
      } else if (manifest_path.empty()) {
        manifest_path = arg;
      } else {
        std::cerr << "unexpected argument '" << arg << "'\n";
        return usage(argv[0]);
      }
    }
    if (manifest_path.empty()) return usage(argv[0]);

    const std::vector<cs::JobRequest> manifest =
        parse_manifest(manifest_path);
    if (manifest.empty()) {
      throw choreo::util::Error("manifest '" + manifest_path +
                                "' contains no jobs");
    }

    cs::ResultCache cache(cache_options);
    scheduler_options.cache = &cache;
    cs::Scheduler scheduler(scheduler_options);

    bool any_failed = false;
    for (std::size_t pass = 1; pass <= repeat; ++pass) {
      std::vector<cs::JobHandle> handles;
      handles.reserve(manifest.size());
      for (const cs::JobRequest& request : manifest) {
        handles.push_back(scheduler.submit(request));
      }
      std::cout << "pass " << pass << '/' << repeat << " ("
                << manifest.size() << " jobs, " << scheduler.worker_count()
                << " workers)\n";
      choreo::util::TextTable table({"job", "status", "attempts", "cache",
                                     "agg", "markings", "queue (ms)",
                                     "run (ms)", "derive (ms)"});
      for (std::size_t i = 0; i < handles.size(); ++i) {
        const cs::JobResult& result = handles[i].wait();
        any_failed |= result.status != cs::JobStatus::kDone;
        table.add_row({manifest[i].name, cs::to_string(result.status),
                       std::to_string(result.attempts),
                       result.from_cache ? "hit" : "miss",
                       choreo::chor::to_string(result.aggregation_used),
                       describe_sizes(result.report),
                       choreo::util::format_double(
                           result.timings.queued_seconds * 1e3),
                       choreo::util::format_double(
                           result.timings.run_seconds * 1e3),
                       choreo::util::format_double(
                           result.timings.stages.derive_seconds() * 1e3)});
        if (!result.error.empty()) {
          std::cerr << manifest[i].name << ": " << result.error << '\n';
        }
        if (result.sweep) {
          std::cout << manifest[i].name << ": " << result.sweep->rows.size()
                    << " points, " << result.sweep->derivations
                    << " derivations, " << result.sweep->points_from_cache
                    << " from cache\n";
        }
      }
      std::cout << table << '\n';
    }

    if (print_metrics) {
      std::cout << cs::Registry::global().exposition();
    }
    return any_failed ? 1 : 0;
  } catch (const choreo::util::Error& error) {
    std::cerr << "choreographer_batch: " << error.what() << '\n';
    return 1;
  }
}
