#include "xml/query.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::xml {

namespace {

struct Step {
  std::string name;  // "*" matches any element
  std::string attr_name;
  std::string attr_value;
  bool has_predicate = false;
};

Step parse_step(std::string_view text, std::string_view full_path) {
  Step step;
  const std::size_t bracket = text.find('[');
  if (bracket == std::string_view::npos) {
    step.name = std::string(text);
    return step;
  }
  step.name = std::string(text.substr(0, bracket));
  std::string_view predicate = text.substr(bracket);
  // Expect [@name='value']
  if (predicate.size() < 6 || predicate.substr(0, 2) != "[@" ||
      predicate.back() != ']') {
    throw util::Error(util::msg("malformed predicate in query '", full_path, "'"));
  }
  predicate = predicate.substr(2, predicate.size() - 3);  // name='value'
  const std::size_t eq = predicate.find('=');
  if (eq == std::string_view::npos) {
    throw util::Error(util::msg("malformed predicate in query '", full_path, "'"));
  }
  step.attr_name = std::string(predicate.substr(0, eq));
  std::string_view value = predicate.substr(eq + 1);
  if (value.size() < 2 || value.front() != '\'' || value.back() != '\'') {
    throw util::Error(
        util::msg("predicate value must be single-quoted in '", full_path, "'"));
  }
  step.attr_value = std::string(value.substr(1, value.size() - 2));
  step.has_predicate = true;
  return step;
}

bool matches(const Node& node, const Step& step) {
  if (!node.is_element()) return false;
  if (step.name != "*" && node.name() != step.name) return false;
  if (step.has_predicate) {
    auto value = node.attr(step.attr_name);
    return value && *value == step.attr_value;
  }
  return true;
}

}  // namespace

std::vector<const Node*> select_all(const Node& root, std::string_view path) {
  std::vector<const Node*> current{&root};
  for (const std::string& raw_step : util::split(path, '/')) {
    if (raw_step.empty()) {
      throw util::Error(util::msg("empty step in query '", path, "'"));
    }
    const Step step = parse_step(raw_step, path);
    std::vector<const Node*> next;
    for (const Node* node : current) {
      for (const Node& child : node->children()) {
        if (matches(child, step)) next.push_back(&child);
      }
    }
    current = std::move(next);
  }
  return current;
}

const Node* select_first(const Node& root, std::string_view path) {
  auto all = select_all(root, path);
  return all.empty() ? nullptr : all.front();
}

const Node& require_first(const Node& root, std::string_view path) {
  const Node* node = select_first(root, path);
  if (node == nullptr) {
    throw util::Error(util::msg("no element matches query '", path, "'"));
  }
  return *node;
}

namespace {
void collect_descendants(const Node& node, std::string_view name,
                         std::vector<const Node*>& out) {
  for (const Node& child : node.children()) {
    if (!child.is_element()) continue;
    if (child.name() == name) out.push_back(&child);
    collect_descendants(child, name, out);
  }
}
}  // namespace

std::vector<const Node*> descendants_named(const Node& root,
                                           std::string_view name) {
  std::vector<const Node*> out;
  collect_descendants(root, name, out);
  return out;
}

}  // namespace choreo::xml
