// A small Document Object Model for the XMI interchange files used by the
// Choreographer pipeline (the paper's extractors keep UML models in a DOM
// or the NetBeans MDR; this is the equivalent substrate).
//
// One Node type covers elements, text, comments and CDATA sections: XMI
// content is element-heavy and a closed node kind keeps traversal simple.
// Attribute order and child order are preserved so that the Poseidon-style
// layout postprocessor can re-merge documents deterministically.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace choreo::xml {

struct Attribute {
  std::string name;
  std::string value;
};

class Node {
 public:
  enum class Kind { Element, Text, Comment, CData };

  /// Creates an element node with the given (possibly prefixed) tag name.
  static Node element(std::string name);
  static Node text(std::string content);
  static Node comment(std::string content);
  static Node cdata(std::string content);

  Kind kind() const noexcept { return kind_; }
  bool is_element() const noexcept { return kind_ == Kind::Element; }
  bool is_text() const noexcept { return kind_ == Kind::Text; }

  /// Tag name (elements) — empty for non-elements.
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Raw character content (text / comment / CDATA nodes).
  const std::string& content() const noexcept { return content_; }
  void set_content(std::string content) { content_ = std::move(content); }

  // --- attributes (elements only) --------------------------------------
  const std::vector<Attribute>& attributes() const noexcept { return attributes_; }
  bool has_attr(std::string_view name) const noexcept;
  /// Value of the attribute, or std::nullopt when absent.
  std::optional<std::string> attr(std::string_view name) const;
  /// Value of the attribute, or `fallback` when absent.
  std::string attr_or(std::string_view name, std::string_view fallback) const;
  /// Sets (or replaces) an attribute, preserving first-set order.
  Node& set_attr(std::string_view name, std::string_view value);
  /// Removes the attribute if present; returns whether it was removed.
  bool remove_attr(std::string_view name);

  // --- children ---------------------------------------------------------
  const std::vector<Node>& children() const noexcept { return children_; }
  std::vector<Node>& children() noexcept { return children_; }
  /// Appends a child and returns a reference to the stored copy.
  Node& add_child(Node child);
  /// Appends an element child with the given name.
  Node& add_element(std::string name);
  /// Appends a text child.
  Node& add_text(std::string content);

  /// First child element with the given tag name, if any.
  const Node* find_child(std::string_view name) const;
  Node* find_child(std::string_view name);
  /// All child elements with the given tag name.
  std::vector<const Node*> find_children(std::string_view name) const;
  /// All child elements regardless of name.
  std::vector<const Node*> element_children() const;
  /// Removes all child elements with the given name; returns count removed.
  std::size_t remove_children(std::string_view name);

  /// Concatenation of all descendant text/CDATA content.
  std::string text_content() const;

  /// Deep structural equality (names, attributes incl. order, children).
  bool deep_equals(const Node& other) const;

 private:
  Node() = default;

  Kind kind_ = Kind::Element;
  std::string name_;
  std::string content_;
  std::vector<Attribute> attributes_;
  std::vector<Node> children_;
};

/// An XML document: optional declaration plus exactly one root element.
class Document {
 public:
  Document() : root_(Node::element("root")) {}
  explicit Document(Node root) : root_(std::move(root)) {}

  const Node& root() const noexcept { return root_; }
  Node& root() noexcept { return root_; }
  void set_root(Node root) { root_ = std::move(root); }

  /// The version/encoding attributes of the <?xml ...?> declaration.
  const std::vector<Attribute>& declaration() const noexcept { return declaration_; }
  void set_declaration(std::vector<Attribute> declaration) {
    declaration_ = std::move(declaration);
  }

 private:
  std::vector<Attribute> declaration_;
  Node root_;
};

}  // namespace choreo::xml
