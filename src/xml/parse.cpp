#include "xml/parse.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::xml {

namespace {

bool is_name_start(char c) {
  auto uc = static_cast<unsigned char>(c);
  return std::isalpha(uc) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  auto uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) || c == '_' || c == ':' || c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Document run() {
    Document document;
    skip_bom();
    if (lookahead("<?xml")) document.set_declaration(parse_declaration());
    skip_misc();
    if (lookahead("<!DOCTYPE")) {
      skip_doctype();
      skip_misc();
    }
    if (at_end() || peek() != '<') fail("expected root element");
    document.set_root(parse_element());
    skip_misc();
    if (!at_end()) fail("content after the root element");
    return document;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw util::ParseError(options_.source_name, line_, column_, message);
  }

  bool at_end() const noexcept { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }

  char advance() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool lookahead(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  bool consume(std::string_view token) {
    if (!lookahead(token)) return false;
    for (std::size_t i = 0; i < token.size(); ++i) advance();
    return true;
  }

  void expect(std::string_view token, const char* what) {
    if (!consume(token)) fail(util::msg("expected ", what));
  }

  void skip_bom() {
    consume("\xEF\xBB\xBF");
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  /// Skips whitespace and comments between top-level constructs.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (lookahead("<!--")) {
        parse_comment();
      } else if (lookahead("<?")) {
        skip_processing_instruction();
      } else {
        return;
      }
    }
  }

  std::vector<Attribute> parse_declaration() {
    expect("<?xml", "XML declaration");
    std::vector<Attribute> attributes;
    while (true) {
      skip_ws();
      if (consume("?>")) return attributes;
      if (at_end()) fail("unterminated XML declaration");
      attributes.push_back(parse_attribute());
    }
  }

  void skip_processing_instruction() {
    expect("<?", "processing instruction");
    while (!at_end()) {
      if (consume("?>")) return;
      advance();
    }
    fail("unterminated processing instruction");
  }

  void skip_doctype() {
    expect("<!DOCTYPE", "DOCTYPE declaration");
    // Angle brackets inside quoted literals of the internal subset (entity
    // values, system identifiers) are data, not markup, so bracket depth is
    // only adjusted outside quotes.
    int depth = 1;
    char quote = '\0';
    while (!at_end() && depth > 0) {
      const char c = advance();
      if (quote != '\0') {
        if (c == quote) quote = '\0';
        continue;
      }
      if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '<') {
        ++depth;
      } else if (c == '>') {
        --depth;
      }
    }
    if (depth != 0 || quote != '\0') fail("unterminated DOCTYPE declaration");
  }

  std::string parse_name() {
    if (at_end() || !is_name_start(peek())) fail("expected a name");
    std::string name;
    name.push_back(advance());
    while (!at_end() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  Attribute parse_attribute() {
    Attribute attribute;
    attribute.name = parse_name();
    skip_ws();
    expect("=", "'=' after attribute name");
    skip_ws();
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      fail("expected a quoted attribute value");
    }
    const char quote = advance();
    std::string raw;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') fail("'<' in attribute value");
      raw.push_back(advance());
    }
    if (at_end()) fail("unterminated attribute value");
    advance();  // closing quote
    attribute.value = decode_entities(raw);
    return attribute;
  }

  Node parse_comment() {
    expect("<!--", "comment");
    std::string content;
    while (!at_end()) {
      if (consume("-->")) return Node::comment(std::move(content));
      content.push_back(advance());
    }
    fail("unterminated comment");
  }

  Node parse_cdata() {
    expect("<![CDATA[", "CDATA section");
    std::string content;
    while (!at_end()) {
      if (consume("]]>")) return Node::cdata(std::move(content));
      content.push_back(advance());
    }
    fail("unterminated CDATA section");
  }

  Node parse_element() {
    expect("<", "'<'");
    Node node = Node::element(parse_name());
    while (true) {
      skip_ws();
      if (consume("/>")) return node;
      if (consume(">")) break;
      if (at_end()) fail("unterminated start tag");
      Attribute attribute = parse_attribute();
      if (node.has_attr(attribute.name)) {
        fail(util::msg("duplicate attribute '", attribute.name, "'"));
      }
      node.set_attr(attribute.name, attribute.value);
    }
    parse_content(node);
    return node;
  }

  void parse_content(Node& parent) {
    std::string pending_text;
    auto flush_text = [&] {
      if (pending_text.empty()) return;
      const bool ignorable =
          options_.drop_ignorable_whitespace &&
          util::trim(pending_text).empty();
      if (!ignorable) parent.add_text(decode_entities(pending_text));
      pending_text.clear();
    };

    while (true) {
      if (at_end()) fail(util::msg("unterminated element <", parent.name(), ">"));
      if (lookahead("</")) {
        flush_text();
        consume("</");
        const std::string name = parse_name();
        if (name != parent.name()) {
          fail(util::msg("mismatched end tag </", name, "> for <", parent.name(),
                         ">"));
        }
        skip_ws();
        expect(">", "'>' of end tag");
        return;
      }
      if (lookahead("<!--")) {
        flush_text();
        parent.add_child(parse_comment());
        continue;
      }
      if (lookahead("<![CDATA[")) {
        flush_text();
        parent.add_child(parse_cdata());
        continue;
      }
      if (lookahead("<?")) {
        flush_text();
        skip_processing_instruction();
        continue;
      }
      if (peek() == '<') {
        flush_text();
        parent.add_child(parse_element());
        continue;
      }
      pending_text.push_back(advance());
    }
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const std::size_t semicolon = raw.find(';', i);
      if (semicolon == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semicolon - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (!entity.empty() && entity.front() == '#') {
        out += decode_char_reference(entity.substr(1));
      } else {
        fail(util::msg("unknown entity '&", std::string(entity), ";'"));
      }
      i = semicolon + 1;
    }
    return out;
  }

  std::string decode_char_reference(std::string_view digits) {
    const bool hex =
        !digits.empty() && (digits.front() == 'x' || digits.front() == 'X');
    const std::string_view body = hex ? digits.substr(1) : digits;
    if (body.empty()) {
      fail(hex ? "empty hex character reference"
               : "empty character reference");
    }
    unsigned long code = 0;
    if (hex) {
      for (char c : body) {
        auto uc = static_cast<unsigned char>(c);
        if (!std::isxdigit(uc)) fail("malformed hex character reference");
        code = code * 16 +
               (std::isdigit(uc) ? uc - '0' : std::tolower(uc) - 'a' + 10);
        // Fail as soon as the value leaves Unicode range, before a long
        // digit string can wrap the accumulator.
        if (code > 0x10FFFF) fail("character reference out of range");
      }
    } else {
      for (char c : body) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          fail("malformed character reference");
        }
        code = code * 10 + static_cast<unsigned long>(c - '0');
        if (code > 0x10FFFF) fail("character reference out of range");
      }
    }
    if (code == 0) fail("character reference to U+0000");
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("character reference to a surrogate code point");
    }
    // UTF-8 encode.
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x110000) {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      fail("character reference out of range");
    }
    return out;
  }

  std::string_view input_;
  const ParseOptions& options_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

Document parse_document(std::string_view input, const ParseOptions& options) {
  return Parser(input, options).run();
}

Document parse_file(const std::string& path, ParseOptions options) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw util::Error(util::msg("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  if (options.source_name == "<xml>") options.source_name = path;
  const std::string contents = buffer.str();
  return parse_document(contents, options);
}

}  // namespace choreo::xml
