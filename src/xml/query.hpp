// XPath-lite queries over the DOM.
//
// The extractors address XMI content with simple child paths, e.g.
//   "XMI.content/UML:Model/UML:Namespace.ownedElement/UML:ActivityGraph".
// Grammar:  path     := step ('/' step)*
//           step     := name-or-* predicate?
//           predicate:= '[@' attr '=' '\'' value '\'' ']'
// Each step selects matching *child elements* of the current node set; the
// query is rooted at (and excludes) the node it is applied to.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace choreo::xml {

/// All elements matching the path, in document order.
std::vector<const Node*> select_all(const Node& root, std::string_view path);

/// First element matching the path, or nullptr.
const Node* select_first(const Node& root, std::string_view path);

/// First element matching the path; throws util::Error when absent.
const Node& require_first(const Node& root, std::string_view path);

/// All descendant elements (any depth) with the given tag name.
std::vector<const Node*> descendants_named(const Node& root, std::string_view name);

}  // namespace choreo::xml
