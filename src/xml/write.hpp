// XML serialisation with optional pretty-printing.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace choreo::xml {

struct WriteOptions {
  /// Indent nested elements by this many spaces; 0 writes a compact
  /// single-line document (except inside mixed content, which is always
  /// written verbatim to preserve text).
  int indent = 2;
  /// Emit the <?xml ...?> declaration stored in the document (or a default
  /// version="1.0" declaration when none is stored).
  bool declaration = true;
};

/// Escapes the five XML special characters in character data.
std::string escape_text(std::string_view raw);
/// Escapes character data for use inside a double-quoted attribute.
std::string escape_attribute(std::string_view raw);

std::string to_string(const Node& node, const WriteOptions& options = {});
std::string to_string(const Document& document, const WriteOptions& options = {});

/// Writes the document to a file.  Throws util::Error on I/O failure.
void write_file(const Document& document, const std::string& path,
                const WriteOptions& options = {});

}  // namespace choreo::xml
