#include "xml/dom.hpp"

#include <algorithm>

namespace choreo::xml {

Node Node::element(std::string name) {
  Node node;
  node.kind_ = Kind::Element;
  node.name_ = std::move(name);
  return node;
}

Node Node::text(std::string content) {
  Node node;
  node.kind_ = Kind::Text;
  node.content_ = std::move(content);
  return node;
}

Node Node::comment(std::string content) {
  Node node;
  node.kind_ = Kind::Comment;
  node.content_ = std::move(content);
  return node;
}

Node Node::cdata(std::string content) {
  Node node;
  node.kind_ = Kind::CData;
  node.content_ = std::move(content);
  return node;
}

bool Node::has_attr(std::string_view name) const noexcept {
  return std::any_of(attributes_.begin(), attributes_.end(),
                     [&](const Attribute& a) { return a.name == name; });
}

std::optional<std::string> Node::attr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return a.value;
  }
  return std::nullopt;
}

std::string Node::attr_or(std::string_view name, std::string_view fallback) const {
  if (auto value = attr(name)) return *value;
  return std::string(fallback);
}

Node& Node::set_attr(std::string_view name, std::string_view value) {
  for (Attribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::string(value);
      return *this;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
  return *this;
}

bool Node::remove_attr(std::string_view name) {
  auto it = std::find_if(attributes_.begin(), attributes_.end(),
                         [&](const Attribute& a) { return a.name == name; });
  if (it == attributes_.end()) return false;
  attributes_.erase(it);
  return true;
}

Node& Node::add_child(Node child) {
  children_.push_back(std::move(child));
  return children_.back();
}

Node& Node::add_element(std::string name) {
  return add_child(Node::element(std::move(name)));
}

Node& Node::add_text(std::string content) {
  return add_child(Node::text(std::move(content)));
}

const Node* Node::find_child(std::string_view name) const {
  for (const Node& child : children_) {
    if (child.is_element() && child.name() == name) return &child;
  }
  return nullptr;
}

Node* Node::find_child(std::string_view name) {
  return const_cast<Node*>(static_cast<const Node*>(this)->find_child(name));
}

std::vector<const Node*> Node::find_children(std::string_view name) const {
  std::vector<const Node*> out;
  for (const Node& child : children_) {
    if (child.is_element() && child.name() == name) out.push_back(&child);
  }
  return out;
}

std::vector<const Node*> Node::element_children() const {
  std::vector<const Node*> out;
  for (const Node& child : children_) {
    if (child.is_element()) out.push_back(&child);
  }
  return out;
}

std::size_t Node::remove_children(std::string_view name) {
  const auto old_size = children_.size();
  children_.erase(std::remove_if(children_.begin(), children_.end(),
                                 [&](const Node& child) {
                                   return child.is_element() &&
                                          child.name() == name;
                                 }),
                  children_.end());
  return old_size - children_.size();
}

std::string Node::text_content() const {
  if (kind_ == Kind::Text || kind_ == Kind::CData) return content_;
  std::string out;
  for (const Node& child : children_) {
    if (child.kind_ == Kind::Comment) continue;
    out += child.text_content();
  }
  return out;
}

bool Node::deep_equals(const Node& other) const {
  if (kind_ != other.kind_ || name_ != other.name_ || content_ != other.content_) {
    return false;
  }
  if (attributes_.size() != other.attributes_.size() ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].value != other.attributes_[i].value) {
      return false;
    }
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i].deep_equals(other.children_[i])) return false;
  }
  return true;
}

}  // namespace choreo::xml
