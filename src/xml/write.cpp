#include "xml/write.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace choreo::xml {

std::string escape_text(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      case '\t': out += "&#9;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

bool has_element_children_only(const Node& node) {
  bool any = false;
  for (const Node& child : node.children()) {
    if (child.is_text() || child.kind() == Node::Kind::CData) return false;
    any = true;
  }
  return any;
}

void write_node(std::ostringstream& out, const Node& node, int indent, int depth) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  switch (node.kind()) {
    case Node::Kind::Text:
      out << escape_text(node.content());
      return;
    case Node::Kind::Comment:
      out << pad << "<!--" << node.content() << "-->";
      if (indent > 0) out << '\n';
      return;
    case Node::Kind::CData:
      out << "<![CDATA[" << node.content() << "]]>";
      return;
    case Node::Kind::Element:
      break;
  }

  out << pad << '<' << node.name();
  for (const Attribute& attribute : node.attributes()) {
    out << ' ' << attribute.name << "=\"" << escape_attribute(attribute.value)
        << '"';
  }
  if (node.children().empty()) {
    out << "/>";
    if (indent > 0) out << '\n';
    return;
  }
  out << '>';

  // Mixed or text content is written inline to preserve character data;
  // element-only content is pretty-printed.
  const bool structured = indent > 0 && has_element_children_only(node);
  if (structured) out << '\n';
  for (const Node& child : node.children()) {
    write_node(out, child, structured ? indent : 0, depth + 1);
  }
  if (structured) out << pad;
  out << "</" << node.name() << '>';
  if (indent > 0) out << '\n';
}

}  // namespace

std::string to_string(const Node& node, const WriteOptions& options) {
  std::ostringstream out;
  write_node(out, node, options.indent, 0);
  return out.str();
}

std::string to_string(const Document& document, const WriteOptions& options) {
  std::ostringstream out;
  if (options.declaration) {
    out << "<?xml";
    if (document.declaration().empty()) {
      out << " version=\"1.0\" encoding=\"UTF-8\"";
    } else {
      for (const Attribute& attribute : document.declaration()) {
        out << ' ' << attribute.name << "=\""
            << escape_attribute(attribute.value) << '"';
      }
    }
    out << "?>";
    if (options.indent > 0) out << '\n';
  }
  write_node(out, document.root(), options.indent, 0);
  return out.str();
}

void write_file(const Document& document, const std::string& path,
                const WriteOptions& options) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) {
    throw util::Error(util::msg("cannot open '", path, "' for writing"));
  }
  stream << to_string(document, options);
  if (!stream) throw util::Error(util::msg("failed writing '", path, "'"));
}

}  // namespace choreo::xml
