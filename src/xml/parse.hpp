// XML parser producing choreo::xml::Document trees.
//
// Supports the subset of XML 1.0 that XMI interchange files use: elements,
// attributes (single or double quoted), character data, the five predefined
// entities plus numeric character references, comments, CDATA sections, the
// XML declaration, and DOCTYPE declarations (skipped).  Namespace prefixes
// are kept as part of tag/attribute names ("UML:Model"), which is how the
// Choreographer extractors address XMI content.
#pragma once

#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace choreo::xml {

struct ParseOptions {
  /// When true, text nodes consisting only of whitespace between elements
  /// are dropped (the default for XMI, which is element-structured).
  bool drop_ignorable_whitespace = true;
  /// Name used in error messages ("stdin", a file path, ...).
  std::string source_name = "<xml>";
};

/// Parses a complete document.  Throws util::ParseError on malformed input.
Document parse_document(std::string_view input, const ParseOptions& options = {});

/// Parses a document from a file on disk.
Document parse_file(const std::string& path, ParseOptions options = {});

}  // namespace choreo::xml
