#include "choreographer/extract_activity.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "choreographer/names.hpp"
#include "util/error.hpp"

namespace choreo::chor {

namespace uml = choreo::uml;
namespace pepa = choreo::pepa;
namespace pepanet = choreo::pepanet;

namespace {

using uml::ActivityGraph;
using uml::ActivityNode;
using uml::NodeId;
using uml::ObjectNodeId;

/// Builds the PEPA behaviour of one "walker" over the diagram's control
/// structure: a token (walker = one object) or a static component (walker =
/// the object-less activities of one location).  One constant is defined
/// per diagram node so control cycles translate to recursive definitions.
class BehaviourBuilder {
 public:
  BehaviourBuilder(const ActivityGraph& graph, pepa::ProcessArena& arena,
                   NamePool& pool, std::string prefix,
                   std::vector<bool> involved,
                   std::vector<pepa::ActionId> actions,
                   std::vector<pepa::Rate> rates, bool cyclic)
      : graph_(graph),
        arena_(arena),
        pool_(pool),
        prefix_(std::move(prefix)),
        involved_(std::move(involved)),
        actions_(std::move(actions)),
        rates_(std::move(rates)),
        cyclic_(cyclic),
        memo_(graph.nodes().size(), pepa::kInvalidProcess) {}

  /// The behaviour starting at the diagram's initial node.
  pepa::ProcessId initial_behaviour() {
    return behaviour_from(graph_.initial_node());
  }

 private:
  pepa::ProcessId behaviour_from(NodeId node) {
    if (memo_[node] != pepa::kInvalidProcess) return memo_[node];
    // Create (and memoise) the constant before computing the body so that
    // control cycles close over it.
    const std::string label = graph_.nodes()[node].name.empty()
                                  ? "n" + std::to_string(node)
                                  : graph_.nodes()[node].name;
    const pepa::ConstantId constant =
        arena_.declare(pool_.unique(prefix_ + "_" + label));
    memo_[node] = arena_.constant(constant);
    arena_.define(constant, body_of(node));
    return memo_[node];
  }

  pepa::ProcessId body_of(NodeId node) {
    const ActivityNode& n = graph_.nodes()[node];
    switch (n.kind) {
      case ActivityNode::Kind::kInitial:
      case ActivityNode::Kind::kDecision:
        return continuation(node);
      case ActivityNode::Kind::kFinal:
        return restart();
      case ActivityNode::Kind::kAction: {
        const pepa::ProcessId cont = continuation(node);
        if (!involved_[node]) return cont;
        return arena_.prefix(actions_[node], rates_[node], cont);
      }
    }
    CHOREO_ASSERT(false);
    return arena_.stop();
  }

  /// Choice over the behaviours at the successors (restart at dead ends).
  pepa::ProcessId continuation(NodeId node) {
    const std::vector<NodeId> successors = graph_.successors(node);
    if (successors.empty()) return restart();
    pepa::ProcessId out = behaviour_from(successors.front());
    for (std::size_t i = 1; i < successors.size(); ++i) {
      out = arena_.choice(out, behaviour_from(successors[i]));
    }
    return out;
  }

  pepa::ProcessId restart() {
    return cyclic_ ? behaviour_from(graph_.initial_node()) : arena_.stop();
  }

  const ActivityGraph& graph_;
  pepa::ProcessArena& arena_;
  NamePool& pool_;
  std::string prefix_;
  std::vector<bool> involved_;
  std::vector<pepa::ActionId> actions_;
  std::vector<pepa::Rate> rates_;
  bool cyclic_;
  std::vector<pepa::ProcessId> memo_;
};

/// Chases alias definitions (a constant whose body is just another
/// constant), so the token's initial derivative is the first *behavioural*
/// state rather than a transient pseudo-state alias.
pepa::ProcessId resolve_alias(const pepa::ProcessArena& arena,
                              pepa::ProcessId process) {
  std::size_t hops = 0;
  while (arena.node(process).op == pepa::Op::kConstant &&
         arena.is_defined(arena.node(process).constant)) {
    const pepa::ProcessId body = arena.body(arena.node(process).constant);
    if (arena.node(body).op != pepa::Op::kConstant) break;
    process = body;
    if (++hops > arena.constant_count()) {
      throw util::ModelError("alias cycle between constants");
    }
  }
  return process;
}

}  // namespace

ActivityExtraction extract_activity_graph(const uml::ActivityGraph& graph,
                                          const ExtractOptions& options) {
  graph.validate();
  if (graph.objects().empty()) {
    throw util::ModelError(util::msg(
        "activity graph '", graph.name(),
        "' has no objects: a PEPA net needs at least one token"));
  }

  ActivityExtraction extraction;
  pepanet::PepaNet& net = extraction.net;
  pepa::ProcessArena& arena = net.arena();
  NamePool pool;
  const std::size_t node_count = graph.nodes().size();

  // --- PEPA action types for every action state ---------------------------
  extraction.action_names.assign(node_count, std::nullopt);
  std::vector<pepa::ActionId> node_action(node_count, 0);
  std::vector<pepa::Rate> node_rate(node_count);
  {
    NamePool action_pool;
    for (NodeId id = 0; id < node_count; ++id) {
      const ActivityNode& node = graph.nodes()[id];
      if (node.kind != ActivityNode::Kind::kAction) continue;
      const std::string action_name = action_pool.unique(node.name);
      extraction.action_names[id] = action_name;
      node_action[id] = arena.action(action_name);
      node_rate[id] =
          pepa::Rate::active(node.tags.get_double("rate", options.default_rate));
    }
  }

  // --- places: one per distinct location (Section 3, step 1) --------------
  // Objects without an atloc live in the implicit location "main".
  auto location_name = [](const std::string& location) {
    return location.empty() ? std::string("main") : location;
  };
  std::map<std::string, pepanet::PlaceId> place_of;  // by raw location name
  std::vector<std::string> location_order;
  for (const uml::ObjectBox& box : graph.objects()) {
    const std::string loc = location_name(box.location());
    if (!place_of.count(loc)) {
      place_of.emplace(loc, static_cast<pepanet::PlaceId>(location_order.size()));
      location_order.push_back(loc);
    }
  }

  // --- per-node locations --------------------------------------------------
  // An action's location is that of its input objects when present;
  // otherwise it inherits the location reached along the control flow
  // ("the last location to which a move was made").  Moves change the
  // current location to their output objects' location.
  std::vector<std::string> node_location(node_count);
  {
    auto boxes_location = [&](const std::vector<ObjectNodeId>& boxes) {
      for (ObjectNodeId id : boxes) {
        const std::string loc = graph.objects()[id].location();
        if (!loc.empty()) return loc;
      }
      return std::string();
    };
    std::vector<bool> visited(node_count, false);
    const NodeId initial = graph.initial_node();
    std::deque<std::pair<NodeId, std::string>> frontier;
    frontier.emplace_back(initial, location_name(graph.objects()[0].location()));
    visited[initial] = true;
    while (!frontier.empty()) {
      auto [node, arrival] = frontier.front();
      frontier.pop_front();
      std::string effective = arrival;
      std::string after = arrival;
      if (graph.nodes()[node].kind == ActivityNode::Kind::kAction) {
        const std::string in_loc = boxes_location(graph.inputs_of(node));
        if (!in_loc.empty()) effective = in_loc;
        after = effective;
        if (graph.nodes()[node].is_move) {
          const std::string out_loc = boxes_location(graph.outputs_of(node));
          if (!out_loc.empty()) after = out_loc;
        }
      }
      node_location[node] = effective;
      for (NodeId successor : graph.successors(node)) {
        if (visited[successor]) continue;
        visited[successor] = true;
        frontier.emplace_back(successor, after);
      }
    }
  }

  // --- tokens: one per object (Section 3, step 3) --------------------------
  const std::vector<std::string> object_names = graph.object_names();
  std::vector<pepanet::TokenTypeId> token_type_of(object_names.size());
  std::vector<pepa::ProcessId> token_initial(object_names.size());
  for (std::size_t o = 0; o < object_names.size(); ++o) {
    const std::string& object = object_names[o];
    std::vector<bool> involved(node_count, false);
    bool any = false;
    for (const uml::ObjectFlow& flow : graph.object_flows()) {
      if (graph.objects()[flow.object].name == object) {
        involved[flow.action] = true;
        any = true;
      }
    }
    if (!any) {
      throw util::ModelError(util::msg(
          "object '", object, "' in activity graph '", graph.name(),
          "' is associated with no activity: its token would be inert"));
    }
    BehaviourBuilder builder(graph, arena, pool, sanitise_identifier(object),
                             std::move(involved), node_action, node_rate,
                             options.cyclic);
    token_initial[o] = resolve_alias(arena, builder.initial_behaviour());
    const std::string type_name = pool.unique(object + "_token");
    token_type_of[o] = net.add_token_type(type_name, token_initial[o]);
    extraction.tokens.emplace_back(object, type_name);
  }

  // --- net transitions from moves (Section 3, step 2) ----------------------
  for (NodeId id = 0; id < node_count; ++id) {
    const ActivityNode& node = graph.nodes()[id];
    if (node.kind != ActivityNode::Kind::kAction || !node.is_move) continue;
    // One input arc per moved object, one output arc per moved object.
    auto arc_places = [&](const std::vector<ObjectNodeId>& boxes,
                          const char* role) {
      std::vector<pepanet::PlaceId> places;
      std::vector<std::string> seen_objects;
      for (ObjectNodeId box : boxes) {
        const std::string& object = graph.objects()[box].name;
        if (std::find(seen_objects.begin(), seen_objects.end(), object) !=
            seen_objects.end()) {
          continue;  // one arc per object, not per box
        }
        seen_objects.push_back(object);
        const pepanet::PlaceId place =
            place_of.at(location_name(graph.objects()[box].location()));
        if (std::find(places.begin(), places.end(), place) != places.end()) {
          throw util::ModelError(util::msg(
              "move activity '", node.name, "' relocates two objects ", role,
              " the same place; arc multiplicities are not supported"));
        }
        places.push_back(place);
      }
      return places;
    };
    const auto inputs = arc_places(graph.inputs_of(id), "from");
    const auto outputs = arc_places(graph.outputs_of(id), "to");
    const auto priority = static_cast<unsigned>(
        node.tags.get_double("priority", 1.0));
    net.add_transition(*extraction.action_names[id], node_rate[id], inputs,
                       outputs, priority);
  }

  // --- static components (Section 3, step 4) -------------------------------
  // Activities with no associated object belong to the static component of
  // their location.
  std::map<std::string, pepa::ProcessId> static_of;
  {
    std::vector<bool> object_less(node_count, false);
    for (NodeId id = 0; id < node_count; ++id) {
      object_less[id] =
          graph.nodes()[id].kind == ActivityNode::Kind::kAction &&
          graph.inputs_of(id).empty() && graph.outputs_of(id).empty();
    }
    for (const std::string& location : location_order) {
      std::vector<bool> involved(node_count, false);
      bool any = false;
      for (NodeId id = 0; id < node_count; ++id) {
        if (object_less[id] && location_name(node_location[id]) == location) {
          involved[id] = true;
          any = true;
        }
      }
      if (!any) continue;
      BehaviourBuilder builder(
          graph, arena, pool, pool.unique("Static_" + location),
          std::move(involved), node_action, node_rate, options.cyclic);
      static_of.emplace(location, resolve_alias(arena, builder.initial_behaviour()));
      extraction.static_locations.push_back(location);
    }
  }

  // --- places, cells and the initial marking (Section 3, final step) -------
  // Each place has a cell for every object that exhibits the location; the
  // object's token starts at its first recorded location.
  for (const std::string& location : location_order) {
    const pepanet::PlaceId place = net.add_place(sanitise_identifier(location));
    extraction.place_names.push_back(sanitise_identifier(location));
    CHOREO_ASSERT(place + 1 == net.place_count());
    for (std::size_t o = 0; o < object_names.size(); ++o) {
      const auto boxes = graph.boxes_of(object_names[o]);
      const bool exhibits = std::any_of(
          boxes.begin(), boxes.end(), [&](ObjectNodeId box) {
            return location_name(graph.objects()[box].location()) == location;
          });
      if (!exhibits) continue;
      const bool starts_here =
          location_name(graph.objects()[boxes.front()].location()) == location;
      net.add_cell(place, token_type_of[o],
                   starts_here ? token_initial[o] : pepanet::kVacant);
    }
    if (auto it = static_of.find(location); it != static_of.end()) {
      net.add_static(place, it->second);
    }
    net.use_shared_alphabet_cooperation(place);
  }

  net.validate();
  return extraction;
}

}  // namespace choreo::chor
