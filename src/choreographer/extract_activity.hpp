// The Choreographer activity-diagram extractor: realises the Section 3
// mapping from mobility-annotated UML activity diagrams to PEPA nets.
//
//   UML activity diagram                PEPA net
//   -------------------------------    -------------------------------
//   location (atloc value)             net-level place
//   <<move>> activity                  net-level transition (firing)
//   object                             PEPA token (one type per object)
//   activity with associated object    activity of that token
//   activity without object            activity of the static component
//                                      of the activity's location
//   first recorded object location     place of the token in M0
//   location of object-less activity   place of the static component
//
// Control structure: sequential flows become PEPA prefix, decision diamonds
// and multiple outgoing flows become choice.  Final nodes (and dead ends)
// restart the token at its initial behaviour when `cyclic` is set — the
// recurrent interpretation steady-state analysis requires.
//
// Restrictions (mirroring the paper's Section 6 list): fork/join/merge
// nodes are not supported, and a single <<move>> may not relocate two
// objects away from the same place (the net-level transition would need
// arc multiplicities).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pepanet/net.hpp"
#include "uml/model.hpp"

namespace choreo::chor {

struct ExtractOptions {
  /// Rate used for action states without a "rate" tagged value.
  double default_rate = 1.0;
  /// Final nodes / dead ends restart the token (recurrent interpretation).
  bool cyclic = true;
};

struct ActivityExtraction {
  pepanet::PepaNet net;
  /// Place names indexed by PlaceId (sanitised location names).
  std::vector<std::string> place_names;
  /// For each activity-graph node: the PEPA action name it was mapped to
  /// (actions only; nullopt for pseudo states).  Used by the reflector.
  std::vector<std::optional<std::string>> action_names;
  /// (object name, token type name) in extraction order.
  std::vector<std::pair<std::string, std::string>> tokens;
  /// Locations that received a static component.
  std::vector<std::string> static_locations;
};

/// Extracts a PEPA net from an activity graph.  Throws util::ModelError on
/// diagrams outside the supported subset.
ActivityExtraction extract_activity_graph(const uml::ActivityGraph& graph,
                                          const ExtractOptions& options = {});

}  // namespace choreo::chor
