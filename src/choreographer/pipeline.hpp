// The end-to-end Choreographer pipeline (paper Figure 4):
//
//   project XMI --preprocess--> model XMI --extract--> PEPA (net)
//       --derive--> CTMC --solve--> steady state --measure--> results
//       --reflect--> annotated model XMI --postprocess--> project XMI
//
// analyse() works on an in-memory uml::Model (extract/solve/reflect);
// analyse_project() additionally runs the XMI and layout legs.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "choreographer/rates.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/statespace.hpp"
#include "uml/model.hpp"
#include "xml/dom.hpp"

namespace choreo::chor {

struct AnalysisOptions {
  ctmc::SolveOptions solver;
  /// Rate for unannotated activities.
  double default_rate = 1.0;
  /// Safety bound on marking/state counts.
  std::size_t max_states = 2'000'000;
  /// Externally supplied rate overrides (the .rates input of Figure 4).
  RateAssignments rates;
  /// Solve activity-diagram CTMCs on their strong-equivalence quotient
  /// (exact; throughputs are unaffected).  State-diagram analyses keep the
  /// full chain because per-state probabilities need the full states.
  bool aggregate = false;
  /// Cooperative cancellation/deadline hook.  When set, the pipeline calls
  /// it at stage boundaries (before extraction, derivation, solving and
  /// reflection of every graph); throwing from it abandons the analysis
  /// and the exception propagates to the caller.  Long derivations between
  /// checkpoints are still bounded by `max_states`.
  std::function<void()> checkpoint;
  /// Exploration lanes for state-space derivation: 1 forces the sequential
  /// path, 0 sizes to the pool.  Results are identical for every setting
  /// (see pepa::DeriveOptions::threads).
  std::size_t derive_threads = 0;
  /// Pool derivation lanes run on; nullptr means util::ThreadPool::shared().
  util::ThreadPool* derive_pool = nullptr;
  /// Resource governor threaded into every stage: derivations check it once
  /// per breadth-first level and charge discovered states/bytes to it,
  /// solvers check it every few iterations, and the stage boundaries check
  /// it alongside `checkpoint`.  On cancellation or an expired deadline the
  /// analysis aborts with util::InterruptedError (the partial accounting
  /// remains readable on the Budget).  nullptr disables governance.
  util::Budget* budget = nullptr;
};

/// Per-stage wall-clock breakdown of one analysis: extraction, CTMC
/// solution, measure computation + reflection, and the derivation counters.
/// Shared by the activity-graph and state-machine results, the scheduler's
/// per-job timings and the service metrics export.
struct StageTimings {
  double extract_seconds = 0.0;
  double solve_seconds = 0.0;
  double reflect_seconds = 0.0;
  /// State-space derivation counters and wall clock (derive_stats.seconds).
  pepa::DeriveStats derive_stats;

  /// Derivation wall clock, for symmetry with the other stage clocks.
  double derive_seconds() const noexcept { return derive_stats.seconds; }

  /// Folds another breakdown in: clocks, levels and discovery counters
  /// accumulate; peak_frontier takes the maximum (the largest single
  /// parallel round across the folded runs).
  StageTimings& operator+=(const StageTimings& other);
};

/// Per-activity-graph results.
struct ActivityGraphResult {
  std::string graph_name;
  std::size_t marking_count = 0;
  std::size_t transition_count = 0;
  /// (action name, throughput), extraction order.
  std::vector<std::pair<std::string, double>> throughputs;
  /// Stage timing breakdown for this graph's pipeline run.
  StageTimings timings;
};

/// Joint result for all state machines of the model.
struct StateMachineResult {
  std::size_t state_count = 0;
  std::size_t transition_count = 0;
  /// probabilities[m][s]: machine m, state s of the UML model.
  std::vector<std::vector<double>> probabilities;
  /// (action name, throughput) over the composed system.
  std::vector<std::pair<std::string, double>> throughputs;
  /// Stage timing breakdown, as in ActivityGraphResult.
  StageTimings timings;
};

struct AnalysisReport {
  std::vector<ActivityGraphResult> activity_graphs;
  /// Present only when the model contains state machines.
  std::vector<StateMachineResult> state_machines;  // 0 or 1 entries
};

/// Runs extraction, CTMC solution, measures and reflection on the model in
/// place (tagged values are added to it).
AnalysisReport analyse(uml::Model& model, const AnalysisOptions& options = {});

/// Full Figure-4 pipeline over a project document: preprocess (strip
/// layout), read XMI, analyse, write XMI, postprocess (merge layout).
/// `report` (optional) receives the analysis results.
xml::Document analyse_project(const xml::Document& project,
                              const AnalysisOptions& options = {},
                              AnalysisReport* report = nullptr);

/// File-level convenience: reads `input_path`, writes the annotated project
/// to `output_path`, returns the report.
AnalysisReport analyse_project_file(const std::string& input_path,
                                    const std::string& output_path,
                                    const AnalysisOptions& options = {});

}  // namespace choreo::chor
