// The end-to-end Choreographer pipeline (paper Figure 4):
//
//   project XMI --preprocess--> model XMI --extract--> PEPA (net)
//       --derive--> CTMC --solve--> steady state --measure--> results
//       --reflect--> annotated model XMI --postprocess--> project XMI
//
// analyse() works on an in-memory uml::Model (extract/solve/reflect);
// analyse_project() additionally runs the XMI and layout legs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "choreographer/rates.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/statespace.hpp"
#include "uml/model.hpp"
#include "xml/dom.hpp"

namespace choreo::chor {

/// How the pipeline tames state-space growth when solving a graph's chain.
/// The levels form the scheduler's retry ladder: each step trades less
/// memory for (at the fluid rung) an approximation.
enum class Aggregation : std::uint8_t {
  /// Solve the full chain.
  kNone,
  /// Derive and solve the strong-equivalence quotient directly: successor
  /// states/markings are rewritten to canonical representatives inside the
  /// exploration engine (pepa/canonical.hpp, pepanet/netcanonical.hpp), so
  /// the full chain is never built and peak memory is the quotient's size.
  /// Exact for both activity graphs and state diagrams — throughputs and
  /// the per-state presence probabilities are invariant under the replica
  /// reordering the quotient collapses.  Reported marking/state counts are
  /// quotient block counts.
  kExact,
  /// Mean-field fluid approximation: integrate the population-level ODE
  /// of the numerical vector form instead of expanding any state space.
  /// Cost is independent of population sizes; results are approximate
  /// (asymptotically exact as populations grow, see docs/architecture.md).
  kFluid,
};

/// "none" / "exact" / "fluid" — the manifest/report spelling of the level.
const char* to_string(Aggregation aggregation);

struct AnalysisOptions {
  ctmc::SolveOptions solver;
  /// Rate for unannotated activities.
  double default_rate = 1.0;
  /// Safety bound on marking/state counts.
  std::size_t max_states = 2'000'000;
  /// Externally supplied rate overrides (the .rates input of Figure 4).
  RateAssignments rates;
  /// State-space taming level; see Aggregation.
  Aggregation aggregation = Aggregation::kNone;
  /// Mean-field ODE knobs (aggregation == kFluid only), mapped onto
  /// fluid::OdeOptions: integrator error tolerances and the horizon after
  /// which the solve fails if no steady state was detected.
  double fluid_rel_tol = 1e-6;
  double fluid_abs_tol = 1e-9;
  double fluid_t_end = 1e7;
  /// Cooperative cancellation/deadline hook.  When set, the pipeline calls
  /// it at stage boundaries (before extraction, derivation, solving and
  /// reflection of every graph); throwing from it abandons the analysis
  /// and the exception propagates to the caller.  Long derivations between
  /// checkpoints are still bounded by `max_states`.
  std::function<void()> checkpoint;
  /// Exploration lanes for state-space derivation: 1 forces the sequential
  /// path, 0 sizes to the pool.  Results are identical for every setting
  /// (see pepa::DeriveOptions::threads).
  std::size_t derive_threads = 0;
  /// Pool derivation lanes run on; nullptr means util::ThreadPool::shared().
  util::ThreadPool* derive_pool = nullptr;
  /// Resource governor threaded into every stage: derivations check it once
  /// per breadth-first level and charge discovered states/bytes to it,
  /// solvers check it every few iterations, and the stage boundaries check
  /// it alongside `checkpoint`.  On cancellation or an expired deadline the
  /// analysis aborts with util::InterruptedError (the partial accounting
  /// remains readable on the Budget).  nullptr disables governance.
  util::Budget* budget = nullptr;
};

/// Per-stage wall-clock breakdown of one analysis: extraction, CTMC
/// solution, measure computation + reflection, and the derivation counters.
/// Shared by the activity-graph and state-machine results, the scheduler's
/// per-job timings and the service metrics export.
struct StageTimings {
  double extract_seconds = 0.0;
  double solve_seconds = 0.0;
  double reflect_seconds = 0.0;
  /// State-space derivation counters and wall clock (derive_stats.seconds).
  pepa::DeriveStats derive_stats;
  /// Fluid (ODE) integration counters; zero unless the fluid backend ran.
  std::size_t fluid_steps = 0;
  std::size_t fluid_rejected_steps = 0;

  /// Derivation wall clock, for symmetry with the other stage clocks.
  double derive_seconds() const noexcept { return derive_stats.seconds; }

  /// Folds another breakdown in: clocks, levels and discovery counters
  /// accumulate; peak_frontier takes the maximum (the largest single
  /// parallel round across the folded runs).
  StageTimings& operator+=(const StageTimings& other);
};

/// Per-activity-graph results.  Under fluid aggregation no marking graph
/// exists; marking_count/transition_count then report the vector-form
/// dimension and local-transition count instead.
struct ActivityGraphResult {
  std::string graph_name;
  std::size_t marking_count = 0;
  std::size_t transition_count = 0;
  /// (action name, throughput), extraction order.
  std::vector<std::pair<std::string, double>> throughputs;
  /// Stage timing breakdown for this graph's pipeline run.
  StageTimings timings;
};

/// Joint result for all state machines of the model.  Under fluid
/// aggregation state_count/transition_count report the vector-form
/// dimension and local-transition count (no global chain is built).
struct StateMachineResult {
  std::size_t state_count = 0;
  std::size_t transition_count = 0;
  /// probabilities[m][s]: machine m, state s of the UML model.
  std::vector<std::vector<double>> probabilities;
  /// (action name, throughput) over the composed system.
  std::vector<std::pair<std::string, double>> throughputs;
  /// Stage timing breakdown, as in ActivityGraphResult.
  StageTimings timings;
};

struct AnalysisReport {
  std::vector<ActivityGraphResult> activity_graphs;
  /// Present only when the model contains state machines.
  std::vector<StateMachineResult> state_machines;  // 0 or 1 entries
};

/// Runs extraction, CTMC solution, measures and reflection on the model in
/// place (tagged values are added to it).
AnalysisReport analyse(uml::Model& model, const AnalysisOptions& options = {});

/// Full Figure-4 pipeline over a project document: preprocess (strip
/// layout), read XMI, analyse, write XMI, postprocess (merge layout).
/// `report` (optional) receives the analysis results.
xml::Document analyse_project(const xml::Document& project,
                              const AnalysisOptions& options = {},
                              AnalysisReport* report = nullptr);

/// File-level convenience: reads `input_path`, writes the annotated project
/// to `output_path`, returns the report.
AnalysisReport analyse_project_file(const std::string& input_path,
                                    const std::string& output_path,
                                    const AnalysisOptions& options = {});

}  // namespace choreo::chor
