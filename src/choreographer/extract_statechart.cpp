#include "choreographer/extract_statechart.hpp"

#include <algorithm>
#include <optional>

#include "choreographer/names.hpp"
#include "util/error.hpp"

namespace choreo::chor {

namespace uml = choreo::uml;
namespace pepa = choreo::pepa;

StatechartExtraction extract_state_machines(const uml::Model& model) {
  if (model.state_machines().empty()) {
    throw util::ModelError(
        util::msg("model '", model.name(), "' has no state machines"));
  }

  StatechartExtraction extraction;
  pepa::ProcessArena& arena = extraction.model.arena();
  NamePool pool;

  // Declare every state constant first (transitions may go forward).
  std::vector<std::vector<pepa::ConstantId>> constants;
  for (const uml::StateMachine& machine : model.state_machines()) {
    machine.validate();
    std::vector<pepa::ConstantId> ids;
    std::vector<std::string> names;
    for (const uml::SimpleState& state : machine.states()) {
      const std::string name = pool.unique(state.name);
      ids.push_back(arena.declare(name));
      names.push_back(name);
    }
    constants.push_back(std::move(ids));
    extraction.state_constants.push_back(std::move(names));
  }

  // One choice-of-prefixes body per state.
  for (std::size_t m = 0; m < model.state_machines().size(); ++m) {
    const uml::StateMachine& machine = model.state_machines()[m];
    for (uml::StateId s = 0; s < machine.states().size(); ++s) {
      pepa::ProcessId body = pepa::kInvalidProcess;
      for (const uml::MachineTransition& t : machine.transitions()) {
        if (t.source != s) continue;
        const pepa::Rate rate =
            t.passive ? pepa::Rate::passive(t.rate) : pepa::Rate::active(t.rate);
        const pepa::ProcessId branch =
            arena.prefix(arena.action(sanitise_identifier(t.action)), rate,
                         arena.constant(constants[m][t.target]));
        body = body == pepa::kInvalidProcess ? branch : arena.choice(body, branch);
      }
      if (body == pepa::kInvalidProcess) body = arena.stop();
      arena.define(constants[m][s], body);
      extraction.model.add_definition(constants[m][s]);
    }
  }

  // System equation.  Machines describing the same class (same non-empty
  // `context`) are replicas and interleave (empty cooperation set: three
  // clients race independently); distinct classes cooperate on their shared
  // action types (the request/response synchronisation of Figures 8-9).
  const std::size_t machine_count = model.state_machines().size();
  std::vector<pepa::ProcessId> group_terms;
  std::vector<std::vector<pepa::ActionId>> group_alphabets;
  std::vector<std::string> group_contexts;
  for (std::size_t m = 0; m < machine_count; ++m) {
    const pepa::ProcessId component = arena.constant(
        constants[m][model.state_machines()[m].initial_state()]);
    const std::string& context = model.state_machines()[m].context();
    if (!context.empty() && !group_contexts.empty() &&
        group_contexts.back() == context) {
      group_terms.back() = arena.cooperation(group_terms.back(), {}, component);
      continue;
    }
    group_terms.push_back(component);
    group_alphabets.push_back(pepa::alphabet(arena, component));
    group_contexts.push_back(context);
  }

  // Interaction diagrams (the paper's Section 6 refinement) override the
  // shared-alphabet default: when some diagram lists both contexts as
  // lifelines, the pair synchronises only on the actions messaged between
  // them.  Pairs no diagram covers keep the default.
  auto messaged_actions = [&](const std::string& a, const std::string& b)
      -> std::optional<std::vector<pepa::ActionId>> {
    if (a.empty() || b.empty()) return std::nullopt;
    bool covered = false;
    std::vector<pepa::ActionId> allowed;
    for (const uml::InteractionDiagram& diagram : model.interactions()) {
      if (!diagram.has_lifeline(a) || !diagram.has_lifeline(b)) continue;
      covered = true;
      for (const uml::Message& message : diagram.messages()) {
        const bool between = (message.sender == a && message.receiver == b) ||
                             (message.sender == b && message.receiver == a);
        if (!between) continue;
        if (auto action =
                arena.find_action(sanitise_identifier(message.action))) {
          allowed.push_back(*action);
        }
      }
    }
    if (!covered) return std::nullopt;
    std::sort(allowed.begin(), allowed.end());
    allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());
    return allowed;
  };

  pepa::ProcessId system = group_terms.back();
  for (std::size_t g = group_terms.size() - 1; g-- > 0;) {
    std::vector<pepa::ActionId> coop_set;
    for (std::size_t h = g + 1; h < group_terms.size(); ++h) {
      std::vector<pepa::ActionId> pairwise =
          pepa::set_intersection(group_alphabets[g], group_alphabets[h]);
      if (const auto allowed =
              messaged_actions(group_contexts[g], group_contexts[h])) {
        pairwise = pepa::set_intersection(pairwise, *allowed);
      }
      coop_set = pepa::set_union(coop_set, pairwise);
    }
    system = arena.cooperation(group_terms[g], coop_set, system);
  }
  const pepa::ConstantId system_constant = arena.declare(pool.unique("System"));
  arena.define(system_constant, system);
  extraction.model.add_definition(system_constant);
  extraction.model.set_system(arena.constant(system_constant));
  return extraction;
}

}  // namespace choreo::chor
