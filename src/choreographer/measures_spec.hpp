// Measure specification files (.measures): a small declarative language
// naming the performance measures to evaluate on a solved model, in the
// spirit of the PEPA Workbench's measurement specifications.
//
//   // comments allowed
//   throughput  transmit;        // completions per time unit of an action
//   probability InStream;        // P[some component is in this derivative]
//   population  Busy;            // mean number of components in it
//   occupancy   p2;              // nets: P[some token resident at place]
//   mean_tokens p2;              // nets: mean token count at place
//
// Evaluators exist for both plain PEPA state spaces and PEPA-net marking
// graphs; measures that do not apply to the analysed artefact (e.g. place
// occupancy on a plain PEPA model) are reported as unsupported rather than
// silently dropped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pepa/statespace.hpp"
#include "pepanet/netstatespace.hpp"

namespace choreo::chor {

struct MeasureSpec {
  enum class Kind {
    kThroughput,
    kProbability,
    kPopulation,
    kOccupancy,
    kMeanTokens,
  };
  Kind kind = Kind::kThroughput;
  /// The action / derivative / place name the measure refers to.
  std::string name;

  std::string to_string() const;
};

/// Parses the .measures format; throws util::ParseError on bad input.
std::vector<MeasureSpec> parse_measures(std::string_view source,
                                        const std::string& source_name = "<measures>");
std::vector<MeasureSpec> parse_measures_file(const std::string& path);

struct MeasureValue {
  MeasureSpec spec;
  double value = 0.0;
  /// False when the measure does not apply (wrong artefact kind or an
  /// unknown name); `note` explains why.
  bool supported = false;
  std::string note;
};

/// Evaluates against a solved PEPA state space.
std::vector<MeasureValue> evaluate_measures(
    const std::vector<MeasureSpec>& specs, const pepa::ProcessArena& arena,
    const pepa::StateSpace& space, const std::vector<double>& distribution);

/// Evaluates against a solved PEPA-net marking graph.
std::vector<MeasureValue> evaluate_measures(
    const std::vector<MeasureSpec>& specs, const pepanet::PepaNet& net,
    const pepanet::NetStateSpace& space, const std::vector<double>& distribution);

}  // namespace choreo::chor
