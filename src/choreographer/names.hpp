// Name mangling between UML and PEPA.
//
// UML activity names ("download file", "detect weak signal") become PEPA
// action types and constants, which are identifiers; this module performs
// the (deterministic) sanitisation and keeps generated names unique.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

namespace choreo::chor {

/// Lower-cases nothing, but replaces every character outside
/// [A-Za-z0-9_] with '_' and prefixes '_' when the name starts with a
/// digit or is empty.
std::string sanitise_identifier(std::string_view name);

/// A pool handing out unique sanitised identifiers: a second request for a
/// colliding name gets a "_2", "_3", ... suffix.
class NamePool {
 public:
  std::string unique(std::string_view name);

 private:
  std::unordered_set<std::string> used_;
};

}  // namespace choreo::chor
