// Extraction of plain PEPA models from UML state diagrams (the paper's
// Section 5 client/server analysis): each state machine becomes one
// sequential PEPA component with one named constant per state, and the
// system equation is the cooperation of all machines over their shared
// action types (the request/response synchronisation of Figures 8-9).
#pragma once

#include <string>
#include <vector>

#include "pepa/model.hpp"
#include "uml/model.hpp"

namespace choreo::chor {

struct StatechartExtraction {
  pepa::Model model;
  /// For machine m and state s of the source model: the PEPA constant name
  /// generated for it (used by the reflector and the measures).
  std::vector<std::vector<std::string>> state_constants;
};

/// Extracts one PEPA model from all state machines of `model`.
/// Throws util::ModelError when there are none.
StatechartExtraction extract_state_machines(const uml::Model& model);

}  // namespace choreo::chor
