// The DOM extractor path.
//
// The paper's Choreographer has two ways of accessing UML models: the PEPA
// and LySa extractors walk a DOM tree directly, while the PEPA-net
// extractor goes through the typed NetBeans MDR metamodel.  This module is
// the DOM analogue: it navigates raw xml::Node trees (no uml::from_xmi, no
// typed metamodel reader) to recover the activity graph, then applies the
// same Section-3 mapping.  A test asserts both paths derive identical nets.
#pragma once

#include "choreographer/extract_activity.hpp"
#include "xml/dom.hpp"

namespace choreo::chor {

/// Extracts the first UML:ActivityGraph of an XMI document by direct DOM
/// navigation.  Throws util::ModelError when none exists.
ActivityExtraction extract_activity_graph_dom(const xml::Document& document,
                                              const ExtractOptions& options = {});

}  // namespace choreo::chor
