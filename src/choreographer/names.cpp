#include "choreographer/names.hpp"

#include <cctype>

namespace choreo::chor {

std::string sanitise_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) || c == '_' ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string NamePool::unique(std::string_view name) {
  std::string base = sanitise_identifier(name);
  if (used_.insert(base).second) return base;
  for (int suffix = 2;; ++suffix) {
    std::string candidate = base + "_" + std::to_string(suffix);
    if (used_.insert(candidate).second) return candidate;
  }
}

}  // namespace choreo::chor
