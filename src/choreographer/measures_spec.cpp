#include "choreographer/measures_spec.hpp"

#include <fstream>
#include <sstream>

#include "pepa/measures.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::chor {

namespace {

const char* kind_word(MeasureSpec::Kind kind) {
  switch (kind) {
    case MeasureSpec::Kind::kThroughput: return "throughput";
    case MeasureSpec::Kind::kProbability: return "probability";
    case MeasureSpec::Kind::kPopulation: return "population";
    case MeasureSpec::Kind::kOccupancy: return "occupancy";
    case MeasureSpec::Kind::kMeanTokens: return "mean_tokens";
  }
  return "?";
}

}  // namespace

std::string MeasureSpec::to_string() const {
  return std::string(kind_word(kind)) + " " + name;
}

std::vector<MeasureSpec> parse_measures(std::string_view source,
                                        const std::string& source_name) {
  std::vector<MeasureSpec> out;
  std::size_t line_number = 0;
  for (const std::string& raw_line : util::split(source, '\n')) {
    ++line_number;
    std::string_view line = util::trim(raw_line);
    if (const auto comment = line.find("//"); comment != std::string_view::npos) {
      line = util::trim(line.substr(0, comment));
    }
    if (line.empty() || line.front() == '#' || line.front() == '%') continue;
    if (line.back() == ';') line = util::trim(line.substr(0, line.size() - 1));
    const auto words = util::split_ws(line);
    if (words.size() != 2) {
      throw util::ParseError(source_name, line_number, 1,
                             "expected '<kind> <name>;'");
    }
    MeasureSpec spec;
    if (words[0] == "throughput") {
      spec.kind = MeasureSpec::Kind::kThroughput;
    } else if (words[0] == "probability") {
      spec.kind = MeasureSpec::Kind::kProbability;
    } else if (words[0] == "population") {
      spec.kind = MeasureSpec::Kind::kPopulation;
    } else if (words[0] == "occupancy") {
      spec.kind = MeasureSpec::Kind::kOccupancy;
    } else if (words[0] == "mean_tokens") {
      spec.kind = MeasureSpec::Kind::kMeanTokens;
    } else {
      throw util::ParseError(source_name, line_number, 1,
                             util::msg("unknown measure kind '", words[0], "'"));
    }
    if (!util::is_identifier(words[1])) {
      throw util::ParseError(source_name, line_number, 1,
                             util::msg("malformed name '", words[1], "'"));
    }
    spec.name = words[1];
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<MeasureSpec> parse_measures_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw util::Error(util::msg("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const std::string contents = buffer.str();
  return parse_measures(contents, path);
}

std::vector<MeasureValue> evaluate_measures(
    const std::vector<MeasureSpec>& specs, const pepa::ProcessArena& arena,
    const pepa::StateSpace& space, const std::vector<double>& distribution) {
  std::vector<MeasureValue> out;
  for (const MeasureSpec& spec : specs) {
    MeasureValue value;
    value.spec = spec;
    switch (spec.kind) {
      case MeasureSpec::Kind::kThroughput: {
        const auto action = arena.find_action(spec.name);
        if (!action) {
          value.note = "unknown action";
          break;
        }
        value.value = pepa::action_throughput(space, distribution, *action);
        value.supported = true;
        break;
      }
      case MeasureSpec::Kind::kProbability:
      case MeasureSpec::Kind::kPopulation: {
        const auto constant = arena.find_constant(spec.name);
        if (!constant) {
          value.note = "unknown derivative";
          break;
        }
        value.value =
            spec.kind == MeasureSpec::Kind::kProbability
                ? pepa::state_probability(space, distribution, arena, *constant)
                : pepa::mean_population(space, distribution, arena, *constant);
        value.supported = true;
        break;
      }
      case MeasureSpec::Kind::kOccupancy:
      case MeasureSpec::Kind::kMeanTokens:
        value.note = "place measures need a PEPA net";
        break;
    }
    out.push_back(std::move(value));
  }
  return out;
}

std::vector<MeasureValue> evaluate_measures(
    const std::vector<MeasureSpec>& specs, const pepanet::PepaNet& net,
    const pepanet::NetStateSpace& space, const std::vector<double>& distribution) {
  std::vector<MeasureValue> out;
  for (const MeasureSpec& spec : specs) {
    MeasureValue value;
    value.spec = spec;
    switch (spec.kind) {
      case MeasureSpec::Kind::kThroughput: {
        const auto action = net.arena().find_action(spec.name);
        if (!action) {
          value.note = "unknown action";
          break;
        }
        value.value = pepanet::action_throughput(space, distribution, *action);
        value.supported = true;
        break;
      }
      case MeasureSpec::Kind::kProbability: {
        const auto constant = net.arena().find_constant(spec.name);
        if (!constant) {
          value.note = "unknown derivative";
          break;
        }
        // Probability that some cell holds a token in this derivative.
        value.value = pepanet::derivative_probability_by_constant(
            net, space, distribution, *constant);
        value.supported = true;
        break;
      }
      case MeasureSpec::Kind::kPopulation:
        value.note = "population measures apply to plain PEPA models";
        break;
      case MeasureSpec::Kind::kOccupancy:
      case MeasureSpec::Kind::kMeanTokens: {
        const auto place = net.find_place(spec.name);
        if (!place) {
          value.note = "unknown place";
          break;
        }
        value.value = spec.kind == MeasureSpec::Kind::kOccupancy
                          ? pepanet::occupancy_probability(net, space,
                                                           distribution, *place)
                          : pepanet::mean_tokens_at(net, space, distribution,
                                                    *place);
        value.supported = true;
        break;
      }
    }
    out.push_back(std::move(value));
  }
  return out;
}

}  // namespace choreo::chor
