// Programmatic builders for the paper's case-study UML models.  Tests,
// examples and benchmarks all analyse these models, so they live in the
// library rather than being re-drawn in every binary.
//
// Where the paper's figure describes a single pass of a recurrent scenario,
// the builders close the cycle explicitly so the CTMC has a steady state:
//
//  - file_activity_model     (Figure 1): open/read/write/close on a file;
//    no mobility (a single implicit place).  A final-to-start control flow
//    is implied by the cyclic token interpretation.
//  - instant_message_model   (Figure 2): write, transmit <<move>> p1->p2,
//    read; an archive <<move>> p2->p1 returns the message so the system is
//    recurrent (one transmit per archive in steady state).
//  - pda_handover_model      (Figure 5): the PDA-on-a-train scenario as a
//    ring of N transmitters (N = 2 reproduces the figure's single hop);
//    each hop is download/detect-weak-signal/search, a <<move>> handover,
//    then the equal-probability continue/abort outcome of the paper.
//  - tomcat_model            (Figures 8-9): M clients against the Tomcat
//    JSP server, with or without the direct-servlet-lookup optimisation
//    (with it, steady state runs locate-servlet/execute; without it, every
//    request pays locate/translate/compile/execute).
#pragma once

#include <cstddef>

#include "uml/model.hpp"

namespace choreo::chor {

struct FileParams {
  double open_rate = 2.0;
  double read_rate = 1.8;
  double write_rate = 1.2;
  double close_rate = 3.0;
};
uml::Model file_activity_model(const FileParams& params = {});

struct InstantMessageParams {
  double write_rate = 1.2;
  double transmit_rate = 0.7;
  double open_rate = 2.0;
  double read_rate = 1.8;
  double close_rate = 3.0;
  double archive_rate = 5.0;
};
uml::Model instant_message_model(const InstantMessageParams& params = {});

struct PdaParams {
  std::size_t transmitters = 2;
  double download_rate = 2.0;
  double detect_rate = 1.0;
  double search_rate = 4.0;
  double handover_rate = 0.5;
  /// Equal rates give the paper's 50/50 handover outcome.
  double continue_rate = 2.0;
  double abort_rate = 2.0;
};
uml::Model pda_handover_model(const PdaParams& params = {});

struct TomcatParams {
  std::size_t clients = 1;
  /// Client-side rates (Figure 8).
  double request_rate = 5.0;
  double offline_processing_rate = 2.0;
  /// Server-side rates (Figure 9); translate and compile dominate, which is
  /// what makes the servlet cache "very profitable".
  double locate_jsp_rate = 20.0;
  double translate_rate = 0.5;
  double compile_rate = 0.8;
  double execute_rate = 10.0;
  double respond_rate = 25.0;
  double locate_servlet_rate = 40.0;
};
/// `cached` selects the direct-servlet-lookup server of the optimisation.
uml::Model tomcat_model(bool cached, const TomcatParams& params = {});

}  // namespace choreo::chor
