// The Choreographer reflector: writes analysis results back into the UML
// model as tagged values, so the annotated diagrams can be re-opened in the
// drawing tool (paper Figures 6-7).
//
//   - activity diagrams: each action state gets a "throughput" tag (the
//     steady-state completion rate of its activity);
//   - state diagrams: each simple state gets a "probability" tag (its
//     steady-state probability).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "uml/model.hpp"

namespace choreo::chor {

/// (PEPA action name, throughput) pairs; names as produced by extraction.
using Throughputs = std::vector<std::pair<std::string, double>>;
/// (PEPA constant name, probability) pairs; names as produced by extraction.
using Probabilities = std::vector<std::pair<std::string, double>>;

/// Annotates matching action states; returns the number of tags written.
std::size_t reflect_throughputs(uml::ActivityGraph& graph,
                                const Throughputs& throughputs);

/// Annotates the states of machine `m` given its extraction-time constant
/// names; returns the number of tags written.
std::size_t reflect_probabilities(uml::StateMachine& machine,
                                  const std::vector<std::string>& state_constants,
                                  const Probabilities& probabilities);

}  // namespace choreo::chor
