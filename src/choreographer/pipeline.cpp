#include "choreographer/pipeline.hpp"

#include <algorithm>

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/reflect.hpp"
#include "ctmc/steady_state.hpp"
#include "fluid/analysis.hpp"
#include "pepa/measures.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/layout.hpp"
#include "uml/xmi.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "xml/parse.hpp"
#include "xml/write.hpp"

namespace choreo::chor {

const char* to_string(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kNone: return "none";
    case Aggregation::kExact: return "exact";
    case Aggregation::kFluid: return "fluid";
  }
  return "?";
}

StageTimings& StageTimings::operator+=(const StageTimings& other) {
  extract_seconds += other.extract_seconds;
  solve_seconds += other.solve_seconds;
  reflect_seconds += other.reflect_seconds;
  derive_stats.seconds += other.derive_stats.seconds;
  derive_stats.levels += other.derive_stats.levels;
  derive_stats.dedup_hits += other.derive_stats.dedup_hits;
  derive_stats.dedup_misses += other.derive_stats.dedup_misses;
  derive_stats.peak_frontier =
      std::max(derive_stats.peak_frontier, other.derive_stats.peak_frontier);
  derive_stats.canonical_rewrites += other.derive_stats.canonical_rewrites;
  fluid_steps += other.fluid_steps;
  fluid_rejected_steps += other.fluid_rejected_steps;
  return *this;
}

namespace {

/// Invokes the caller's cooperative cancellation/deadline hook, if any,
/// then the resource governor's own check.
void checkpoint(const AnalysisOptions& options) {
  if (options.checkpoint) options.checkpoint();
  if (options.budget != nullptr) options.budget->check("checkpoint");
}

/// The solver options for one stage: the caller's settings plus the
/// governor, so iteration loops abort on cancellation too.
ctmc::SolveOptions governed_solver(const AnalysisOptions& options) {
  ctmc::SolveOptions solver = options.solver;
  if (solver.budget == nullptr) solver.budget = options.budget;
  return solver;
}

/// The fluid backend's knobs from the analysis options: the ODE tolerance
/// trio, the state bound reused as the local-derivative-set bound, and the
/// shared governor.
fluid::FluidOptions governed_fluid(const AnalysisOptions& options) {
  fluid::FluidOptions fluid;
  fluid.build.max_local_states = options.max_states;
  fluid.ode.rel_tol = options.fluid_rel_tol;
  fluid.ode.abs_tol = options.fluid_abs_tol;
  fluid.ode.t_end = options.fluid_t_end;
  fluid.ode.budget = options.budget;
  return fluid;
}

ActivityGraphResult analyse_activity_graph(uml::ActivityGraph& graph,
                                           const AnalysisOptions& options) {
  util::Stopwatch timer;
  ExtractOptions extract_options;
  extract_options.default_rate = options.default_rate;
  ActivityExtraction extraction = extract_activity_graph(graph, extract_options);

  ActivityGraphResult result;
  result.graph_name = graph.name();
  result.timings.extract_seconds = timer.seconds();

  checkpoint(options);
  pepanet::NetSemantics semantics(extraction.net);

  if (options.aggregation == Aggregation::kFluid) {
    // The fluid backend works on a plain PEPA term; a single-place net
    // without firings is exactly one (the place's context).  Mobile nets
    // have no vector form — markings move tokens between places.
    if (extraction.net.place_count() != 1 ||
        extraction.net.transition_count() != 0) {
      throw util::ModelError(util::msg(
          "fluid aggregation requires a single-location activity graph "
          "without mobility; '", graph.name(), "' has ",
          extraction.net.place_count(), " places and ",
          extraction.net.transition_count(), " net transitions"));
    }
    timer.restart();
    const pepa::ProcessId system =
        semantics.place_context(extraction.net.initial_marking(), 0);
    const auto fluid =
        fluid::solve_steady(semantics.pepa(), system, governed_fluid(options));
    result.marking_count = fluid.form.dimension();
    result.transition_count = fluid.form.transitions().size();
    result.timings.solve_seconds = timer.seconds();
    result.timings.fluid_steps = fluid.stats.steps;
    result.timings.fluid_rejected_steps = fluid.stats.rejected_steps;

    checkpoint(options);
    timer.restart();
    Throughputs fluid_throughputs;
    for (const auto& action_name : extraction.action_names) {
      if (!action_name) continue;
      const auto action = extraction.net.arena().find_action(*action_name);
      CHOREO_ASSERT(action.has_value());
      double value = 0.0;
      for (const auto& [id, throughput] : fluid.throughputs) {
        if (id == *action) value = throughput;
      }
      fluid_throughputs.emplace_back(*action_name, value);
    }
    result.throughputs = fluid_throughputs;
    reflect_throughputs(graph, fluid_throughputs);
    result.timings.reflect_seconds = timer.seconds();
    return result;
  }

  pepanet::NetDeriveOptions derive_options;
  derive_options.max_markings = options.max_states;
  derive_options.threads = options.derive_threads;
  derive_options.pool = options.derive_pool;
  derive_options.budget = options.budget;
  // Exact aggregation derives the strong-equivalence quotient directly:
  // symmetric markings collapse at discovery time, so the interned graph,
  // max_states and the budget's peak bytes all cover the quotient only.
  // Every per-action throughput survives the quotient, so the solve and
  // measure legs below are shared with the unaggregated path.
  derive_options.aggregate = options.aggregation == Aggregation::kExact;
  const auto space = pepanet::NetStateSpace::derive(semantics, derive_options);

  result.marking_count = space.marking_count();
  result.transition_count = space.transitions().size();
  result.timings.derive_stats = space.stats();

  checkpoint(options);
  timer.restart();
  Throughputs throughputs;
  const auto solved =
      ctmc::steady_state(space.generator(), governed_solver(options));
  result.timings.solve_seconds = timer.seconds();
  checkpoint(options);
  timer.restart();
  for (const auto& action_name : extraction.action_names) {
    if (!action_name) continue;
    const auto action = extraction.net.arena().find_action(*action_name);
    CHOREO_ASSERT(action.has_value());
    throughputs.emplace_back(
        *action_name,
        pepanet::action_throughput(space, solved.distribution, *action));
  }
  result.throughputs = throughputs;
  reflect_throughputs(graph, throughputs);
  result.timings.reflect_seconds = timer.seconds();
  return result;
}

StateMachineResult analyse_state_machines(uml::Model& model,
                                          const AnalysisOptions& options) {
  util::Stopwatch timer;
  StatechartExtraction extraction = extract_state_machines(model);

  StateMachineResult result;
  result.timings.extract_seconds = timer.seconds();

  checkpoint(options);
  pepa::Semantics semantics(extraction.model.arena());

  if (options.aggregation == Aggregation::kFluid) {
    // Population-level solve: each machine is one sequential component, so
    // its state occupancies are populations of count-one groups — exactly
    // the per-state probabilities the reflector wants.
    timer.restart();
    const auto fluid = fluid::solve_steady(semantics, extraction.model.system(),
                                           governed_fluid(options));
    result.state_count = fluid.form.dimension();
    result.transition_count = fluid.form.transitions().size();
    result.timings.solve_seconds = timer.seconds();
    result.timings.fluid_steps = fluid.stats.steps;
    result.timings.fluid_rejected_steps = fluid.stats.rejected_steps;

    checkpoint(options);
    timer.restart();
    const pepa::ProcessArena& arena = extraction.model.arena();
    for (std::size_t m = 0; m < model.state_machines().size(); ++m) {
      Probabilities probabilities;
      std::vector<double> values;
      for (const std::string& constant_name : extraction.state_constants[m]) {
        const auto constant = arena.find_constant(constant_name);
        CHOREO_ASSERT(constant.has_value());
        const double probability = fluid.population(*constant);
        probabilities.emplace_back(constant_name, probability);
        values.push_back(probability);
      }
      result.probabilities.push_back(std::move(values));
      reflect_probabilities(model.state_machines()[m],
                            extraction.state_constants[m], probabilities);
    }
    for (const auto& [action, value] : fluid.throughputs) {
      result.throughputs.emplace_back(arena.action_name(action), value);
    }
    result.timings.reflect_seconds = timer.seconds();
    return result;
  }

  pepa::DeriveOptions derive_options;
  derive_options.max_states = options.max_states;
  derive_options.threads = options.derive_threads;
  derive_options.pool = options.derive_pool;
  derive_options.budget = options.budget;
  // Exact aggregation: quotient-direct derivation.  The state-probability
  // and throughput measures below scan states for the presence of each
  // machine's constants, which is invariant under the replica reordering
  // the quotient collapses, so state-diagram analyses aggregate exactly
  // too (the full chain is never built).
  derive_options.aggregate = options.aggregation == Aggregation::kExact;
  const auto space = pepa::StateSpace::derive(
      semantics, extraction.model.system(), derive_options);

  result.state_count = space.state_count();
  result.transition_count = space.transitions().size();
  result.timings.derive_stats = space.stats();

  checkpoint(options);
  timer.restart();
  const auto solved =
      ctmc::steady_state(space.generator(), governed_solver(options));
  result.timings.solve_seconds = timer.seconds();

  checkpoint(options);
  timer.restart();
  const pepa::ProcessArena& arena = extraction.model.arena();
  for (std::size_t m = 0; m < model.state_machines().size(); ++m) {
    Probabilities probabilities;
    std::vector<double> values;
    for (const std::string& constant_name : extraction.state_constants[m]) {
      const auto constant = arena.find_constant(constant_name);
      CHOREO_ASSERT(constant.has_value());
      const double probability = pepa::state_probability(
          space, solved.distribution, arena, *constant);
      probabilities.emplace_back(constant_name, probability);
      values.push_back(probability);
    }
    result.probabilities.push_back(std::move(values));
    reflect_probabilities(model.state_machines()[m],
                          extraction.state_constants[m], probabilities);
  }
  for (const auto& [action, value] :
       pepa::all_throughputs(space, solved.distribution, arena)) {
    result.throughputs.emplace_back(
        extraction.model.arena().action_name(action), value);
  }
  result.timings.reflect_seconds = timer.seconds();
  return result;
}

}  // namespace

AnalysisReport analyse(uml::Model& model, const AnalysisOptions& options) {
  model.validate();
  if (!options.rates.empty()) apply_rates(model, options.rates);

  AnalysisReport report;
  for (uml::ActivityGraph& graph : model.activity_graphs()) {
    checkpoint(options);
    report.activity_graphs.push_back(analyse_activity_graph(graph, options));
  }
  if (!model.state_machines().empty()) {
    checkpoint(options);
    report.state_machines.push_back(analyse_state_machines(model, options));
  }
  return report;
}

xml::Document analyse_project(const xml::Document& project,
                              const AnalysisOptions& options,
                              AnalysisReport* report) {
  // Poseidon preprocessor: split metamodel content from layout (Figure 4).
  uml::SplitProject split = uml::preprocess(project);
  uml::Model model = uml::from_xmi(split.model);

  AnalysisReport local_report = analyse(model, options);
  if (report != nullptr) *report = std::move(local_report);

  // Reflector output, then the Poseidon postprocessor re-merges layout.
  xml::Document reflected = uml::to_xmi(model);
  return uml::postprocess(reflected, split.layout);
}

AnalysisReport analyse_project_file(const std::string& input_path,
                                    const std::string& output_path,
                                    const AnalysisOptions& options) {
  AnalysisReport report;
  const xml::Document project = xml::parse_file(input_path);
  const xml::Document annotated = analyse_project(project, options, &report);
  xml::write_file(annotated, output_path);
  return report;
}

}  // namespace choreo::chor
