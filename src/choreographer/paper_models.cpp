#include "choreographer/paper_models.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::chor {

namespace {
using uml::ActivityGraph;
using uml::NodeId;
using uml::ObjectNodeId;

/// Attaches `box` as both input and output of `action` (the object is
/// required by and updated by the activity, as in the paper's Figure 1).
void involve(ActivityGraph& graph, NodeId action, ObjectNodeId box) {
  graph.add_object_flow(action, box, /*into_action=*/true);
  graph.add_object_flow(action, box, /*into_action=*/false);
}
}  // namespace

uml::Model file_activity_model(const FileParams& params) {
  uml::Model model("file");
  ActivityGraph graph("file_activities");

  const NodeId initial = graph.add_initial();
  const NodeId decision = graph.add_decision("read_or_write");
  const NodeId openread = graph.add_action("openread", params.open_rate);
  const NodeId openwrite = graph.add_action("openwrite", params.open_rate);
  const NodeId read = graph.add_action("read", params.read_rate);
  const NodeId write = graph.add_action("write", params.write_rate);
  const NodeId close_r = graph.add_action("close_after_read", params.close_rate);
  const NodeId close_w = graph.add_action("close_after_write", params.close_rate);
  const NodeId final_node = graph.add_final();

  graph.add_control_flow(initial, decision);
  graph.add_control_flow(decision, openread);
  graph.add_control_flow(decision, openwrite);
  graph.add_control_flow(openread, read);
  graph.add_control_flow(read, close_r);
  graph.add_control_flow(openwrite, write);
  graph.add_control_flow(write, close_w);
  graph.add_control_flow(close_r, final_node);
  graph.add_control_flow(close_w, final_node);

  // One file object; no atloc tags (no mobility in Figure 1).
  const ObjectNodeId f = graph.add_object("f", "FILE", "");
  for (NodeId action : {openread, openwrite, read, write, close_r, close_w}) {
    involve(graph, action, f);
  }
  model.add_activity_graph(std::move(graph));
  return model;
}

uml::Model instant_message_model(const InstantMessageParams& params) {
  uml::Model model("instant_message");
  ActivityGraph graph("instant_message");

  const NodeId initial = graph.add_initial();
  const NodeId openwrite = graph.add_action("openwrite", params.open_rate);
  const NodeId write = graph.add_action("write", params.write_rate);
  const NodeId close_w = graph.add_action("close_after_write", params.close_rate);
  const NodeId transmit =
      graph.add_action("transmit", params.transmit_rate, /*is_move=*/true);
  const NodeId openread = graph.add_action("openread", params.open_rate);
  const NodeId read = graph.add_action("read", params.read_rate);
  const NodeId close_r = graph.add_action("close_after_read", params.close_rate);
  const NodeId archive =
      graph.add_action("archive", params.archive_rate, /*is_move=*/true);

  graph.add_control_flow(initial, openwrite);
  graph.add_control_flow(openwrite, write);
  graph.add_control_flow(write, close_w);
  graph.add_control_flow(close_w, transmit);
  graph.add_control_flow(transmit, openread);
  graph.add_control_flow(openread, read);
  graph.add_control_flow(read, close_r);
  graph.add_control_flow(close_r, archive);
  graph.add_control_flow(archive, openwrite);

  // Figure 2's object boxes: the message at p1 before the transmit, at p2
  // afterwards (state marks track the figure's f, f*, f**, ... sequence).
  const ObjectNodeId at_p1 = graph.add_object("f", "FILE", "p1");
  const ObjectNodeId at_p1_written = graph.add_object("f", "FILE", "p1", "**");
  const ObjectNodeId at_p2 = graph.add_object("f", "FILE", "p2");
  const ObjectNodeId at_p2_read = graph.add_object("f", "FILE", "p2", "''");

  involve(graph, openwrite, at_p1);
  involve(graph, write, at_p1);
  involve(graph, close_w, at_p1_written);
  graph.add_object_flow(transmit, at_p1_written, /*into_action=*/true);
  graph.add_object_flow(transmit, at_p2, /*into_action=*/false);
  involve(graph, openread, at_p2);
  involve(graph, read, at_p2);
  involve(graph, close_r, at_p2_read);
  graph.add_object_flow(archive, at_p2_read, /*into_action=*/true);
  graph.add_object_flow(archive, at_p1, /*into_action=*/false);

  model.add_activity_graph(std::move(graph));
  return model;
}

uml::Model pda_handover_model(const PdaParams& params) {
  if (params.transmitters < 2) {
    throw util::ModelError("the handover ring needs at least two transmitters");
  }
  uml::Model model("pda_handover");
  ActivityGraph graph("pda_handover");

  const std::size_t n = params.transmitters;
  auto transmitter = [](std::size_t i) {
    return "transmitter_" + std::to_string(i + 1);
  };
  auto suffixed = [](const char* stem, std::size_t i) {
    return std::string(stem) + "_" + std::to_string(i + 1);
  };

  const NodeId initial = graph.add_initial();
  std::vector<NodeId> download(n);
  for (std::size_t i = 0; i < n; ++i) {
    download[i] = graph.add_action(suffixed("download_file", i),
                                   params.download_rate);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + 1) % n;
    const NodeId detect = graph.add_action(suffixed("detect_weak_signal", i),
                                           params.detect_rate);
    const NodeId search = graph.add_action(
        suffixed("search_for_transmitters", i), params.search_rate);
    const NodeId handover = graph.add_action(suffixed("handover", i),
                                             params.handover_rate,
                                             /*is_move=*/true);
    const NodeId outcome = graph.add_decision(suffixed("outcome", i));
    const NodeId cont = graph.add_action(suffixed("continue_download", i),
                                         params.continue_rate);
    const NodeId abort = graph.add_action(suffixed("abort_download", i),
                                          params.abort_rate);

    graph.add_control_flow(download[i], detect);
    graph.add_control_flow(detect, search);
    graph.add_control_flow(search, handover);
    graph.add_control_flow(handover, outcome);
    graph.add_control_flow(outcome, cont);
    graph.add_control_flow(outcome, abort);
    graph.add_control_flow(cont, download[next]);
    graph.add_control_flow(abort, download[next]);

    const ObjectNodeId here = graph.add_object("session", "PDA", transmitter(i));
    const ObjectNodeId there =
        graph.add_object("session", "PDA", transmitter(next), "*");
    involve(graph, download[i], here);
    involve(graph, detect, here);
    involve(graph, search, here);
    graph.add_object_flow(handover, here, /*into_action=*/true);
    graph.add_object_flow(handover, there, /*into_action=*/false);
    involve(graph, cont, there);
    involve(graph, abort, there);
  }
  graph.add_control_flow(initial, download[0]);

  model.add_activity_graph(std::move(graph));
  return model;
}

uml::Model tomcat_model(bool cached, const TomcatParams& params) {
  if (params.clients == 0) {
    throw util::ModelError("the Tomcat scenario needs at least one client");
  }
  uml::Model model(cached ? "tomcat_cached" : "tomcat_uncached");

  // Clients (Figure 8).  Replicas share the context "Client" so the
  // extractor interleaves them; the response is driven by the server.
  for (std::size_t c = 0; c < params.clients; ++c) {
    uml::StateMachine client("client_" + std::to_string(c + 1), "Client");
    const auto generate = client.add_state("GenerateRequest");
    const auto wait = client.add_state("WaitForResponse");
    const auto process = client.add_state("ProcessResponse");
    client.set_initial(generate);
    client.add_transition(generate, wait, "request", params.request_rate);
    client.add_passive_transition(wait, process, "response");
    client.add_transition(process, generate, "offlineProcessing",
                          params.offline_processing_rate);
    model.add_state_machine(std::move(client));
  }

  // Server (Figure 9).  The request is passive (clients drive it); the
  // response is active (the server drives the clients' passive response).
  uml::StateMachine server("server", "Server");
  const auto idle = server.add_state("ServerIdle");
  const auto processing = server.add_state("ProcessRequest");
  const auto sending = server.add_state("SendHTTPResponse");
  server.set_initial(idle);
  server.add_passive_transition(idle, processing, "request");
  if (cached) {
    // Direct servlet lookup: the resident servlet executes immediately.
    const auto resident = server.add_state("CompiledJavaCode");
    server.add_transition(processing, resident, "locateservlet",
                          params.locate_servlet_rate);
    server.add_transition(resident, sending, "execute", params.execute_rate);
  } else {
    // The full locate / translate / compile / execute JSP lifecycle.
    const auto jsp = server.add_state("AccessJSPFile");
    const auto generated = server.add_state("GeneratedJavaCode");
    const auto compiled = server.add_state("CompiledJavaCode");
    server.add_transition(processing, jsp, "locatejsp", params.locate_jsp_rate);
    server.add_transition(jsp, generated, "translate", params.translate_rate);
    server.add_transition(generated, compiled, "compile", params.compile_rate);
    server.add_transition(compiled, sending, "execute", params.execute_rate);
  }
  server.add_transition(sending, idle, "response", params.respond_rate);
  model.add_state_machine(std::move(server));
  return model;
}

}  // namespace choreo::chor
