// Rate-sensitivity analysis: which activity should a designer speed up?
//
// For a chosen target measure (the throughput of one activity), computes
// the elasticity with respect to every rated activity of the model:
//
//     E_a = (d log target) / (d log rate_a)
//
// estimated by central finite differences over the exact CTMC solution.
// Elasticities compose naturally: throughput is homogeneous of degree 1 in
// the full rate vector, so over *all* activities they sum to 1 -- the
// reported numbers are literally "shares of the bottleneck".
#pragma once

#include <string>
#include <vector>

#include "choreographer/pipeline.hpp"
#include "uml/model.hpp"

namespace choreo::chor {

struct SensitivityOptions {
  /// Relative perturbation h for the central difference (rate * (1 +/- h)).
  double relative_step = 0.02;
  AnalysisOptions analysis;
};

struct SensitivityEntry {
  std::string activity;
  double base_rate = 0.0;
  /// d log(target) / d log(rate); ~0 = irrelevant, ~1 = the bottleneck.
  double elasticity = 0.0;
};

struct SensitivityReport {
  std::string target;
  double base_value = 0.0;
  /// One entry per rated activity, ordered by descending elasticity.
  std::vector<SensitivityEntry> entries;
};

/// Sensitivity of the throughput of `target_action` to every activity rate
/// in the model (activity diagrams and state machines alike).  Throws
/// util::ModelError when the target does not occur.
SensitivityReport throughput_sensitivity(const uml::Model& model,
                                         const std::string& target_action,
                                         const SensitivityOptions& options = {});

}  // namespace choreo::chor
