#include "choreographer/sensitivity.hpp"

#include <algorithm>
#include <map>

#include "choreographer/names.hpp"
#include "util/error.hpp"

namespace choreo::chor {

namespace {

/// Every rated activity of the model with its current rate (activity-state
/// tags and state-machine transitions; passive transitions carry no rate of
/// their own and are skipped).
std::map<std::string, double> rated_activities(const uml::Model& model,
                                               double default_rate) {
  std::map<std::string, double> rates;
  for (const uml::ActivityGraph& graph : model.activity_graphs()) {
    for (const uml::ActivityNode& node : graph.nodes()) {
      if (node.kind != uml::ActivityNode::Kind::kAction) continue;
      rates[node.name] = node.tags.get_double("rate", default_rate);
    }
  }
  for (const uml::StateMachine& machine : model.state_machines()) {
    for (const uml::MachineTransition& t : machine.transitions()) {
      if (t.passive) continue;
      rates[t.action] = t.rate;
    }
  }
  return rates;
}

/// Throughput of `action` over every analysed view of the model.
double target_throughput(uml::Model model, const std::string& action,
                         const AnalysisOptions& options) {
  const AnalysisReport report = analyse(model, options);
  const std::string sanitised = sanitise_identifier(action);
  for (const auto& graph : report.activity_graphs) {
    for (const auto& [name, value] : graph.throughputs) {
      if (name == sanitised || name == action) return value;
    }
  }
  for (const auto& machines : report.state_machines) {
    for (const auto& [name, value] : machines.throughputs) {
      if (name == sanitised || name == action) return value;
    }
  }
  throw util::ModelError(
      util::msg("target activity '", action, "' does not occur in the model"));
}

}  // namespace

SensitivityReport throughput_sensitivity(const uml::Model& model,
                                         const std::string& target_action,
                                         const SensitivityOptions& options) {
  SensitivityReport report;
  report.target = target_action;
  report.base_value =
      target_throughput(model, target_action, options.analysis);
  if (!(report.base_value > 0.0)) {
    throw util::ModelError(util::msg("target activity '", target_action,
                                     "' has zero throughput; elasticities are"
                                     " undefined"));
  }

  const double h = options.relative_step;
  for (const auto& [activity, rate] :
       rated_activities(model, options.analysis.default_rate)) {
    auto value_at = [&](double scaled_rate) {
      uml::Model perturbed = model;
      AnalysisOptions analysis = options.analysis;
      analysis.rates.emplace_back(activity, scaled_rate);
      return target_throughput(std::move(perturbed), target_action, analysis);
    };
    const double up = value_at(rate * (1.0 + h));
    const double down = value_at(rate * (1.0 - h));
    SensitivityEntry entry;
    entry.activity = activity;
    entry.base_rate = rate;
    entry.elasticity = (up - down) / (2.0 * h * report.base_value);
    report.entries.push_back(std::move(entry));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              return a.elasticity > b.elasticity;
            });
  return report;
}

}  // namespace choreo::chor
