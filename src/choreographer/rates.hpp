// .rates files: externally supplied rate assignments (the ".rates" input of
// the paper's Figure 4 pipeline).  Format, one assignment per line:
//
//   // comments and blank lines allowed
//   download_file = 2.0
//   handover      = 0.5
//
// Names refer to activities: the assignment overrides the "rate" tagged
// value of the matching action states and the rate of matching state-
// machine transitions throughout the model.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "uml/model.hpp"

namespace choreo::chor {

using RateAssignments = std::vector<std::pair<std::string, double>>;

/// Parses the .rates format.  Throws util::ParseError on malformed lines.
RateAssignments parse_rates(std::string_view source,
                            const std::string& source_name = "<rates>");
RateAssignments parse_rates_file(const std::string& path);

/// Applies the assignments to the model in place; returns how many
/// activities/transitions were actually re-rated.
std::size_t apply_rates(uml::Model& model, const RateAssignments& rates);

}  // namespace choreo::chor
