#include "choreographer/rates.hpp"

#include <fstream>
#include <sstream>

#include "choreographer/names.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::chor {

RateAssignments parse_rates(std::string_view source,
                            const std::string& source_name) {
  RateAssignments out;
  std::size_t line_number = 0;
  for (const std::string& raw_line : util::split(source, '\n')) {
    ++line_number;
    std::string_view line = util::trim(raw_line);
    if (const auto comment = line.find("//"); comment != std::string_view::npos) {
      line = util::trim(line.substr(0, comment));
    }
    if (line.empty() || line.front() == '#' || line.front() == '%') continue;
    const auto equals = line.find('=');
    if (equals == std::string_view::npos) {
      throw util::ParseError(source_name, line_number, 1,
                             "expected 'name = rate'");
    }
    const std::string name{util::trim(line.substr(0, equals))};
    const std::string value{util::trim(line.substr(equals + 1))};
    if (name.empty()) {
      throw util::ParseError(source_name, line_number, 1, "empty activity name");
    }
    double rate = 0.0;
    try {
      std::size_t consumed = 0;
      rate = std::stod(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      throw util::ParseError(source_name, line_number, 1,
                             util::msg("malformed rate '", value, "'"));
    }
    if (!(rate > 0.0)) {
      throw util::ParseError(source_name, line_number, 1,
                             util::msg("rate must be positive, got ", rate));
    }
    out.emplace_back(name, rate);
  }
  return out;
}

RateAssignments parse_rates_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw util::Error(util::msg("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const std::string contents = buffer.str();
  return parse_rates(contents, path);
}

std::size_t apply_rates(uml::Model& model, const RateAssignments& rates) {
  std::size_t applied = 0;
  for (const auto& [name, rate] : rates) {
    const std::string sanitised = sanitise_identifier(name);
    for (uml::ActivityGraph& graph : model.activity_graphs()) {
      for (uml::ActivityNode& node : graph.nodes()) {
        if (node.kind != uml::ActivityNode::Kind::kAction) continue;
        if (node.name == name || sanitise_identifier(node.name) == sanitised) {
          node.tags.set("rate", util::format_double(rate));
          ++applied;
        }
      }
    }
    for (uml::StateMachine& machine : model.state_machines()) {
      for (uml::MachineTransition& t : machine.transitions()) {
        if (t.action == name || sanitise_identifier(t.action) == sanitised) {
          t.rate = rate;
          t.passive = false;
          ++applied;
        }
      }
    }
  }
  return applied;
}

}  // namespace choreo::chor
