#include "choreographer/reflect.hpp"

#include "choreographer/names.hpp"
#include "util/strings.hpp"

namespace choreo::chor {

std::size_t reflect_throughputs(uml::ActivityGraph& graph,
                                const Throughputs& throughputs) {
  std::size_t written = 0;
  for (uml::ActivityNode& node : graph.nodes()) {
    if (node.kind != uml::ActivityNode::Kind::kAction) continue;
    const std::string sanitised = sanitise_identifier(node.name);
    for (const auto& [action, value] : throughputs) {
      if (action == sanitised || action == node.name) {
        node.tags.set("throughput", util::format_double(value));
        ++written;
        break;
      }
    }
  }
  return written;
}

std::size_t reflect_probabilities(uml::StateMachine& machine,
                                  const std::vector<std::string>& state_constants,
                                  const Probabilities& probabilities) {
  std::size_t written = 0;
  for (uml::StateId s = 0; s < machine.states().size(); ++s) {
    if (s >= state_constants.size()) break;
    for (const auto& [constant, value] : probabilities) {
      if (constant == state_constants[s]) {
        machine.states()[s].tags.set("probability", util::format_double(value));
        ++written;
        break;
      }
    }
  }
  return written;
}

}  // namespace choreo::chor
