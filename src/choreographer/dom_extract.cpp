#include "choreographer/dom_extract.hpp"

#include <unordered_map>

#include "util/error.hpp"
#include "xml/query.hpp"

namespace choreo::chor {

namespace {

std::string need(const xml::Node& node, const char* attribute) {
  const auto value = node.attr(attribute);
  if (!value) {
    throw util::ModelError(util::msg("<", node.name(), "> lacks '", attribute,
                                     "' (DOM extractor)"));
  }
  return *value;
}

void copy_tags(const xml::Node& element, uml::TaggedValues& tags) {
  for (const xml::Node* child : element.find_children("UML:TaggedValue")) {
    tags.set(need(*child, "tag"), need(*child, "value"));
  }
}

}  // namespace

ActivityExtraction extract_activity_graph_dom(const xml::Document& document,
                                              const ExtractOptions& options) {
  const xml::Node* element = xml::select_first(
      document.root(), "XMI.content/UML:Model/UML:ActivityGraph");
  if (element == nullptr) {
    throw util::ModelError("document has no UML:ActivityGraph");
  }

  // Hand-rolled DOM walk (deliberately independent of uml::from_xmi).
  uml::ActivityGraph graph(element->attr_or("name", ""));
  std::unordered_map<std::string, uml::NodeId> nodes;
  std::unordered_map<std::string, uml::ObjectNodeId> objects;

  for (const xml::Node& child : element->children()) {
    if (!child.is_element()) continue;
    if (child.name() == "UML:PseudoState") {
      const std::string kind = child.attr_or("kind", "initial");
      nodes[need(child, "xmi.id")] =
          kind == "initial" ? graph.add_initial()
                            : graph.add_decision(child.attr_or("name", ""));
    } else if (child.name() == "UML:FinalState") {
      nodes[need(child, "xmi.id")] = graph.add_final();
    } else if (child.name() == "UML:ActionState") {
      uml::ActivityNode node;
      node.kind = uml::ActivityNode::Kind::kAction;
      node.name = need(child, "name");
      copy_tags(child, node.tags);
      for (const xml::Node* stereotype : child.find_children("UML:Stereotype")) {
        node.is_move |= stereotype->attr_or("name", "") == "move";
      }
      nodes[need(child, "xmi.id")] = graph.add_node(std::move(node));
    } else if (child.name() == "UML:ObjectFlowState") {
      const uml::ObjectNodeId id =
          graph.add_object(need(child, "name"), child.attr_or("classifier", ""),
                           "", child.attr_or("state", ""));
      copy_tags(child, graph.objects()[id].tags);
      objects[need(child, "xmi.id")] = id;
    }
  }
  for (const xml::Node& child : element->children()) {
    if (!child.is_element()) continue;
    if (child.name() == "UML:Transition") {
      graph.add_control_flow(nodes.at(need(child, "source")),
                             nodes.at(need(child, "target")));
    } else if (child.name() == "UML:ObjectFlow") {
      const std::string source = need(child, "source");
      const std::string target = need(child, "target");
      if (objects.count(source)) {
        graph.add_object_flow(nodes.at(target), objects.at(source), true);
      } else {
        graph.add_object_flow(nodes.at(source), objects.at(target), false);
      }
    }
  }
  return extract_activity_graph(graph, options);
}

}  // namespace choreo::chor
