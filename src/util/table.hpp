// Fixed-width text tables for benchmark report modes and examples.
//
// Every bench binary prints the paper-style rows through this type so the
// EXPERIMENTS.md transcripts have a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace choreo::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with format_double().
  void add_row_values(const std::string& label, const std::vector<double>& values);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with column alignment and a rule under the header.
  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& out, const TextTable& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace choreo::util
