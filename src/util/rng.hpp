// Deterministic, fast pseudo-random number generation for the simulation
// engine.  xoshiro256** with a splitmix64 seeder; every simulation run is
// reproducible from a single 64-bit seed, and parallel replications use
// the generator's jump function to obtain non-overlapping streams.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace choreo::util {

/// splitmix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in (0, 1]; safe as the argument of log().
  double uniform_positive() noexcept;

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Samples an index with probability weights[i] / sum(weights).
  /// Weights must be non-negative with a positive sum.
  std::size_t discrete(std::span<const double> weights) noexcept;

  /// Advances the state by 2^128 steps: yields an independent stream for a
  /// parallel replication.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace choreo::util
