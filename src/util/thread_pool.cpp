#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace choreo::util {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    worker_count = hw > 1 ? hw - 1 : 0;  // leave the calling thread a core
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t lanes = workers_.size() + 1;
  if (lanes == 1 || count == 1) {
    body(0, count);
    return;
  }
  const std::size_t chunks = std::min(lanes, count);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;

  std::atomic<std::size_t> remaining{chunks - 1};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  std::condition_variable done;
  std::mutex done_mutex;

  auto run_chunk = [&](std::size_t begin, std::size_t end) {
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };

  std::size_t begin = 0;
  for (std::size_t chunk = 0; chunk + 1 < chunks; ++chunk) {
    const std::size_t size = base + (chunk < extra ? 1 : 0);
    const std::size_t end = begin + size;
    {
      std::lock_guard lock(mutex_);
      tasks_.push([&, begin, end] {
        run_chunk(begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard done_lock(done_mutex);
          done.notify_one();
        }
      });
    }
    wake_.notify_one();
    begin = end;
  }
  run_chunk(begin, count);  // the calling thread takes the final chunk

  std::unique_lock lock(done_mutex);
  done.wait(lock, [&] { return remaining.load() == 0; });
  if (failure) std::rethrow_exception(failure);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace choreo::util
