#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace choreo::util {

namespace {

/// Per-invocation completion latch for the parallel loops.  The pending
/// count is decremented — and the waiter notified — under the mutex, and
/// the waiter only ever reads the count under the same mutex, so a task
/// finishing last cannot touch the latch after the waiter has observed
/// zero and destroyed it.
struct CompletionLatch {
  std::size_t pending;
  std::mutex mutex;
  std::condition_variable done;

  explicit CompletionLatch(std::size_t count) : pending(count) {}

  void count_down() {
    std::lock_guard lock(mutex);
    --pending;
    done.notify_one();  // notify while holding: see the struct comment
  }

  bool drained() {
    std::lock_guard lock(mutex);
    return pending == 0;
  }

  void wait() {
    std::unique_lock lock(mutex);
    done.wait(lock, [this] { return pending == 0; });
  }
};

/// First-exception capture shared by the chunks of one parallel loop.
struct FailureSlot {
  std::exception_ptr failure;
  std::mutex mutex;

  void capture() {
    std::lock_guard lock(mutex);
    if (!failure) failure = std::current_exception();
  }

  void rethrow_if_set() {
    if (failure) std::rethrow_exception(failure);
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    worker_count = hw > 1 ? hw - 1 : 0;  // leave the calling thread a core
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::run_one_queued_task() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t lanes = workers_.size() + 1;
  if (lanes == 1 || count == 1) {
    body(0, count);
    return;
  }
  const std::size_t chunks = std::min(lanes, count);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;

  CompletionLatch latch(chunks - 1);
  FailureSlot failure;
  auto run_chunk = [&](std::size_t begin, std::size_t end) {
    try {
      body(begin, end);
    } catch (...) {
      failure.capture();
    }
  };

  std::size_t begin = 0;
  for (std::size_t chunk = 0; chunk + 1 < chunks; ++chunk) {
    const std::size_t size = base + (chunk < extra ? 1 : 0);
    const std::size_t end = begin + size;
    {
      std::lock_guard lock(mutex_);
      tasks_.push([&, begin, end] {
        run_chunk(begin, end);
        latch.count_down();
      });
    }
    wake_.notify_one();
    begin = end;
  }
  run_chunk(begin, count);  // the calling thread takes the final chunk

  // Help drain while waiting: a queued chunk of this loop — or of a nested
  // parallel loop issued from inside one of our chunks — may sit behind
  // tasks whose own waiters are blocked.  Sleeping here would starve them
  // (the nested-parallel_for deadlock); running queued tasks instead
  // guarantees progress.  Once the queue is empty every chunk of this loop
  // has been claimed by some thread and will complete, so the final latch
  // wait cannot hang.
  while (!latch.drained()) {
    if (run_one_queued_task()) continue;
    latch.wait();
    break;
  }
  failure.rethrow_if_set();
}

void ThreadPool::parallel_for_dynamic(
    std::size_t count, std::size_t grain, std::size_t max_lanes,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunk_count = (count + grain - 1) / grain;
  const std::size_t lanes =
      std::min(max_lanes == 0 ? workers_.size() + 1 : max_lanes, chunk_count);
  if (lanes <= 1) {
    body(0, count);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  CompletionLatch latch(lanes - 1);
  FailureSlot failure;
  auto drain_cursor = [&] {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(grain);
      if (begin >= count) return;
      try {
        body(begin, std::min(begin + grain, count));
      } catch (...) {
        failure.capture();
      }
    }
  };

  // One helper task per extra lane; each pulls chunks from the shared
  // cursor until it runs dry, so lanes that draw cheap chunks immediately
  // steal the next one instead of idling at a static split.  On a
  // workerless pool enqueue() runs the helper inline, which simply drains
  // everything before the calling thread gets its turn — still correct.
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    enqueue([&] {
      drain_cursor();
      latch.count_down();
    });
  }
  drain_cursor();  // the calling thread is a lane too

  // The latch wait: helpers may still be queued behind unrelated tasks (or
  // behind each other on a busy pool), so the calling thread executes
  // queued work while it waits — the only wait that guarantees progress.
  while (!latch.drained()) {
    if (run_one_queued_task()) continue;
    latch.wait();
    break;
  }
  failure.rethrow_if_set();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace choreo::util
