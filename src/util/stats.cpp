#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace choreo::util {

void RunningStats::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

namespace {

// Two-sided Student-t quantiles at selected degrees of freedom; rows are
// standard table values.  Index 0 of each array is df=1.
constexpr double kT90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
                           1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761,
                           1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
                           1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701,
                           1.699, 1.697};
constexpr double kT95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                           2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                           2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                           2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                           2.045,  2.042};
constexpr double kT99[] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
                           3.355,  3.250, 3.169, 3.106, 3.055, 3.012, 2.977,
                           2.947,  2.921, 2.898, 2.878, 2.861, 2.845, 2.831,
                           2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763,
                           2.756,  2.750};

}  // namespace

double student_t_quantile(std::size_t degrees_of_freedom, double level) {
  const double* table = nullptr;
  double asymptote = 0.0;
  if (level == 0.90) {
    table = kT90;
    asymptote = 1.645;
  } else if (level == 0.95) {
    table = kT95;
    asymptote = 1.960;
  } else if (level == 0.99) {
    table = kT99;
    asymptote = 2.576;
  } else {
    throw Error(msg("unsupported confidence level ", level,
                    " (supported: 0.90, 0.95, 0.99)"));
  }
  if (degrees_of_freedom == 0) return asymptote;
  if (degrees_of_freedom <= 30) return table[degrees_of_freedom - 1];
  return asymptote;
}

ConfidenceInterval confidence_interval(const RunningStats& stats, double level) {
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.level = level;
  if (stats.count() >= 2) {
    ci.half_width = student_t_quantile(stats.count() - 1, level) * stats.std_error();
  }
  return ci;
}

BatchMeans::BatchMeans(std::size_t batch_count)
    : target_batches_(std::max<std::size_t>(batch_count, 4)) {
  batch_means_.reserve(target_batches_);
}

void BatchMeans::add(double sample) {
  batch_sum_ += sample;
  if (++in_batch_ == batch_size_) close_batch();
}

void BatchMeans::close_batch() {
  batch_means_.push_back(batch_sum_ / static_cast<double>(batch_size_));
  batch_sum_ = 0.0;
  in_batch_ = 0;
  if (batch_means_.size() == target_batches_) {
    // Collapse adjacent batches so batch size doubles: keeps the number of
    // batches bounded while the stream grows, in the classic batch-means way.
    std::vector<double> collapsed;
    collapsed.reserve(target_batches_ / 2);
    for (std::size_t i = 0; i + 1 < batch_means_.size(); i += 2) {
      collapsed.push_back(0.5 * (batch_means_[i] + batch_means_[i + 1]));
    }
    batch_means_ = std::move(collapsed);
    batch_size_ *= 2;
  }
}

ConfidenceInterval BatchMeans::interval(double level) const {
  RunningStats stats;
  for (double mean : batch_means_) stats.add(mean);
  return confidence_interval(stats, level);
}

std::size_t BatchMeans::completed_batches() const noexcept {
  return batch_means_.size();
}

}  // namespace choreo::util
