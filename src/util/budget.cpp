#include "util/budget.hpp"

#include "util/error.hpp"

namespace choreo::util {

void Budget::set_deadline_seconds(double seconds) {
  if (seconds <= 0.0) {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
    return;
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  set_deadline(deadline);
}

void Budget::check(const char* stage) const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    throw InterruptedError(InterruptedError::Reason::kCancelled, stage);
  }
  if (deadline_passed()) {
    throw InterruptedError(InterruptedError::Reason::kDeadline, stage);
  }
  const std::size_t bound = max_state_bytes_.load(std::memory_order_relaxed);
  if (bound != 0 &&
      state_bytes_.load(std::memory_order_relaxed) > bound) {
    throw BudgetError(msg("state storage exceeds the configured budget of ",
                          bound, " bytes (state-space explosion)"));
  }
}

void Budget::charge_states(std::size_t states, std::size_t bytes) {
  states_.fetch_add(states, std::memory_order_relaxed);
  const std::size_t now =
      state_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = peak_state_bytes_.load(std::memory_order_relaxed);
  while (peak < now && !peak_state_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void Budget::note_level(std::size_t frontier) {
  levels_.fetch_add(1, std::memory_order_relaxed);
  std::size_t peak = peak_frontier_.load(std::memory_order_relaxed);
  while (peak < frontier && !peak_frontier_.compare_exchange_weak(
                                peak, frontier, std::memory_order_relaxed)) {
  }
}

BudgetUsage Budget::usage() const {
  BudgetUsage usage;
  usage.states = states_.load(std::memory_order_relaxed);
  usage.state_bytes = state_bytes_.load(std::memory_order_relaxed);
  usage.peak_state_bytes = peak_state_bytes_.load(std::memory_order_relaxed);
  usage.levels = levels_.load(std::memory_order_relaxed);
  usage.peak_frontier = peak_frontier_.load(std::memory_order_relaxed);
  usage.solver_iterations =
      solver_iterations_.load(std::memory_order_relaxed);
  return usage;
}

}  // namespace choreo::util
