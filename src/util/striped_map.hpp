// A lock-striped hash map for concurrent memoisation caches.
//
// The map is partitioned into a fixed number of stripes, each an ordinary
// unordered_map behind its own mutex; a key's stripe is chosen by its hash,
// so threads working on unrelated keys almost never contend.  Value
// addresses are stable (unordered_map never relocates elements), which lets
// callers hand out references that survive later inserts — the contract the
// PEPA semantics caches rely on.
//
// The intended access pattern is publish-on-miss: look the key up, compute
// the value outside any stripe lock on a miss, then try_emplace it; when
// two threads race to publish, the first wins and both observe the same
// stored value (memoised computations are deterministic, so the loser's
// copy is identical and is simply discarded).
//
// Batch entry points (find_batch / try_emplace_batch) serve callers that
// touch many keys at once — the exploration engine pre-resolves a whole
// expansion chunk and publishes a whole frontier level per call.  They
// group the keys by stripe and lock each touched stripe once, so the
// per-key cost drops from one lock round-trip to a shared one.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace choreo::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  static constexpr std::size_t kStripes = 64;

  StripedMap() : stripes_(std::make_unique<std::array<Stripe, kStripes>>()) {}

  // Movable (the stripes live behind one pointer, so objects holding a
  // StripedMap can still be returned by value); moving while other threads
  // touch either map is a caller bug, as for any standard container.  The
  // moved-from map is left empty but fully usable — it keeps (or is given)
  // a valid stripe array rather than a null pointer.
  StripedMap(StripedMap&& other) : StripedMap() {
    stripes_.swap(other.stripes_);
  }
  StripedMap& operator=(StripedMap&& other) {
    if (this != &other) {
      stripes_.swap(other.stripes_);
      other.clear();
    }
    return *this;
  }

  /// Pointer to the stored value, or nullptr when absent.  The pointer is
  /// stable until clear().
  const Value* find(const Key& key) const {
    const Stripe& stripe = (*stripes_)[stripe_index(key)];
    std::lock_guard lock(stripe.mutex);
    auto it = stripe.map.find(key);
    return it == stripe.map.end() ? nullptr : &it->second;
  }

  /// Inserts (key, value) unless present; returns the stored value (the
  /// winner's under a race) and whether this call inserted it.
  std::pair<const Value*, bool> try_emplace(const Key& key, Value value) {
    Stripe& stripe = (*stripes_)[stripe_index(key)];
    std::lock_guard lock(stripe.mutex);
    auto [it, inserted] = stripe.map.try_emplace(key, std::move(value));
    return {&it->second, inserted};
  }

  /// Batched find: sets out[i] to the stored value for *keys[i] (nullptr
  /// when absent), visiting each touched stripe exactly once.  Safe to call
  /// concurrently with find/try_emplace from other threads; the returned
  /// pointers are stable until clear().
  void find_batch(std::span<const Key* const> keys,
                  std::span<const Value*> out) const {
    CHOREO_ASSERT(keys.size() == out.size());
    if (keys.size() < kBatchGroupingThreshold) {
      for (std::size_t i = 0; i < keys.size(); ++i) out[i] = find(*keys[i]);
      return;
    }
    const StripeOrder order(*this, keys);
    for (std::size_t s = 0; s < kStripes; ++s) {
      if (order.begin(s) == order.end(s)) continue;
      const Stripe& stripe = (*stripes_)[s];
      std::lock_guard lock(stripe.mutex);
      for (std::uint32_t o = order.begin(s); o < order.end(s); ++o) {
        const std::size_t i = order.key_at(o);
        auto it = stripe.map.find(*keys[i]);
        out[i] = it == stripe.map.end() ? nullptr : &it->second;
      }
    }
  }

  /// Batched insert of (*keys[i], values[i]) pairs, visiting each touched
  /// stripe exactly once.  Keys already present keep their stored value
  /// (try_emplace semantics, applied in batch order).
  void try_emplace_batch(std::span<const Key* const> keys,
                         std::span<const Value> values) {
    CHOREO_ASSERT(keys.size() == values.size());
    if (keys.size() < kBatchGroupingThreshold) {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        try_emplace(*keys[i], values[i]);
      }
      return;
    }
    const StripeOrder order(*this, keys);
    for (std::size_t s = 0; s < kStripes; ++s) {
      if (order.begin(s) == order.end(s)) continue;
      Stripe& stripe = (*stripes_)[s];
      std::lock_guard lock(stripe.mutex);
      for (std::uint32_t o = order.begin(s); o < order.end(s); ++o) {
        const std::size_t i = order.key_at(o);
        stripe.map.try_emplace(*keys[i], values[i]);
      }
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : *stripes_) {
      std::lock_guard lock(stripe.mutex);
      total += stripe.map.size();
    }
    return total;
  }

  void clear() {
    for (Stripe& stripe : *stripes_) {
      std::lock_guard lock(stripe.mutex);
      stripe.map.clear();
    }
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };

  /// Below this batch size the counting sort costs more than it saves.
  static constexpr std::size_t kBatchGroupingThreshold = 8;

  /// Counting sort of a key batch by stripe: key_at(begin(s)..end(s))
  /// enumerates the positions of stripe s's keys, preserving batch order
  /// within a stripe.
  struct StripeOrder {
    std::array<std::uint32_t, kStripes + 1> bounds{};
    std::vector<std::uint32_t> ordered;

    StripeOrder(const StripedMap& map, std::span<const Key* const> keys) {
      std::vector<std::uint8_t> stripe_of(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        stripe_of[i] = static_cast<std::uint8_t>(map.stripe_index(*keys[i]));
        ++bounds[stripe_of[i] + 1];
      }
      for (std::size_t s = 0; s < kStripes; ++s) bounds[s + 1] += bounds[s];
      std::array<std::uint32_t, kStripes> next{};
      for (std::size_t s = 0; s < kStripes; ++s) next[s] = bounds[s];
      ordered.resize(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        ordered[next[stripe_of[i]]++] = static_cast<std::uint32_t>(i);
      }
    }

    std::uint32_t begin(std::size_t s) const { return bounds[s]; }
    std::uint32_t end(std::size_t s) const { return bounds[s + 1]; }
    std::size_t key_at(std::uint32_t o) const { return ordered[o]; }
  };

  std::size_t stripe_index(const Key& key) const {
    // Mix the hash before striping: unordered_map buckets use the low bits
    // too, and identity-ish hashes (integer keys) would otherwise put every
    // key of one map bucket into one stripe.
    std::size_t h = Hash{}(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h % kStripes;
  }

  std::unique_ptr<std::array<Stripe, kStripes>> stripes_;
};

}  // namespace choreo::util
