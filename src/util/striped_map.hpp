// A lock-striped hash map for concurrent memoisation caches.
//
// The map is partitioned into a fixed number of stripes, each an ordinary
// unordered_map behind its own mutex; a key's stripe is chosen by its hash,
// so threads working on unrelated keys almost never contend.  Value
// addresses are stable (unordered_map never relocates elements), which lets
// callers hand out references that survive later inserts — the contract the
// PEPA semantics caches rely on.
//
// The intended access pattern is publish-on-miss: look the key up, compute
// the value outside any stripe lock on a miss, then try_emplace it; when
// two threads race to publish, the first wins and both observe the same
// stored value (memoised computations are deterministic, so the loser's
// copy is identical and is simply discarded).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace choreo::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  static constexpr std::size_t kStripes = 64;

  StripedMap() : stripes_(std::make_unique<std::array<Stripe, kStripes>>()) {}

  // Movable (the stripes live behind one pointer, so objects holding a
  // StripedMap can still be returned by value); moving while other threads
  // touch the map is a caller bug, as for any standard container.
  StripedMap(StripedMap&&) noexcept = default;
  StripedMap& operator=(StripedMap&&) noexcept = default;

  /// Pointer to the stored value, or nullptr when absent.  The pointer is
  /// stable until clear().
  const Value* find(const Key& key) const {
    const Stripe& stripe = stripe_of(key);
    std::lock_guard lock(stripe.mutex);
    auto it = stripe.map.find(key);
    return it == stripe.map.end() ? nullptr : &it->second;
  }

  /// Inserts (key, value) unless present; returns the stored value (the
  /// winner's under a race) and whether this call inserted it.
  std::pair<const Value*, bool> try_emplace(const Key& key, Value value) {
    Stripe& stripe = stripe_of(key);
    std::lock_guard lock(stripe.mutex);
    auto [it, inserted] = stripe.map.try_emplace(key, std::move(value));
    return {&it->second, inserted};
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : *stripes_) {
      std::lock_guard lock(stripe.mutex);
      total += stripe.map.size();
    }
    return total;
  }

  void clear() {
    for (Stripe& stripe : *stripes_) {
      std::lock_guard lock(stripe.mutex);
      stripe.map.clear();
    }
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };

  const Stripe& stripe_of(const Key& key) const {
    // Mix the hash before striping: unordered_map buckets use the low bits
    // too, and identity-ish hashes (integer keys) would otherwise put every
    // key of one map bucket into one stripe.
    std::size_t h = Hash{}(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return (*stripes_)[h % kStripes];
  }
  Stripe& stripe_of(const Key& key) {
    return const_cast<Stripe&>(std::as_const(*this).stripe_of(key));
  }

  std::unique_ptr<std::array<Stripe, kStripes>> stripes_;
};

}  // namespace choreo::util
