#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  CHOREO_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw Error(msg("table row has ", cells.size(), " cells, expected ",
                    header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::string& label,
                               const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double value : values) cells.push_back(format_double(value));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const TextTable& table) {
  return out << table.to_string();
}

}  // namespace choreo::util
