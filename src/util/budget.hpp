// Resource governance for long-running analyses: one Budget object per job
// carries the wall-clock deadline, the cooperative cancellation flag and a
// state/byte accounting hook, and is threaded from the service scheduler
// down into the hot loops of the pipeline — the level-synchronous BFS of
// pepa::StateSpace::derive / pepanet::NetStateSpace::derive and the solver
// iteration loops of ctmc::steady_state / ctmc::transient.
//
// Checks are *cooperative* and placed only at deterministic points (once
// per breadth-first frontier level, every few solver iterations), so an
// interrupted run stops within one frontier level while uninterrupted runs
// remain byte-identical at any lane count.  An observed interruption
// raises util::InterruptedError; an exhausted byte budget raises
// util::BudgetError.  All members are thread-safe: exploration lanes
// charge concurrently while a client thread cancels.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>

namespace choreo::util {

/// Progress counters a Budget has accumulated, readable while the job is
/// still running (JobHandle::progress) and after an interruption (partial
/// DeriveStats for cancelled/timed-out jobs).
struct BudgetUsage {
  /// States/markings discovered by explorations charged to this budget.
  std::size_t states = 0;
  /// Approximate bytes currently held by those states.
  std::size_t state_bytes = 0;
  /// High-water mark of state_bytes.
  std::size_t peak_state_bytes = 0;
  /// Breadth-first levels explored.
  std::size_t levels = 0;
  /// Largest frontier (states expanded in one level).
  std::size_t peak_frontier = 0;
  /// Solver iterations charged to this budget.
  std::size_t solver_iterations = 0;
};

class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  /// How many solver iterations (linear-solver sweeps, uniformisation
  /// terms, ODE step attempts) run between cooperative check() calls.
  /// Shared by ctmc::steady_state, ctmc::transient and fluid::integrate so
  /// the cancellation latency of every iterative solver is the same.
  static constexpr std::size_t kSolverCheckStride = 8;

  Budget() = default;

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Absolute wall-clock deadline; Clock::time_point::max() (the default)
  /// disables it.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Relative convenience: `seconds` from now; <= 0 disables the deadline.
  void set_deadline_seconds(double seconds);

  /// Approximate byte bound on states charged to this budget; 0 (the
  /// default) disables it.  Exceeding it makes check() throw BudgetError.
  void set_max_state_bytes(std::size_t bytes) {
    max_state_bytes_.store(bytes, std::memory_order_relaxed);
  }

  /// Requests cooperative cancellation; the next check() throws.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool deadline_passed() const {
    // Load the deadline first and short-circuit when none is set: this runs
    // every solver check stride and every BFS level, and most jobs have no
    // deadline — skipping Clock::now() keeps the common case a single load.
    const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != kNoDeadline && Clock::now().time_since_epoch().count() > ns;
  }

  /// The cooperative checkpoint: throws InterruptedError(kCancelled) when
  /// cancellation was requested, InterruptedError(kDeadline) when the
  /// deadline passed, and BudgetError when the byte budget is exhausted.
  /// `stage` names the caller for error texts and the service's
  /// interrupted-in-stage metric ("derive", "solve", "checkpoint", ...).
  void check(const char* stage) const;

  /// Accounting hooks (thread-safe; any exploration lane may call them).
  void charge_states(std::size_t states, std::size_t bytes);
  void release_state_bytes(std::size_t bytes) {
    state_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  void note_level(std::size_t frontier);
  void charge_solver_iterations(std::size_t iterations) {
    solver_iterations_.fetch_add(iterations, std::memory_order_relaxed);
  }

  /// Point-in-time copy of the accumulated counters.
  BudgetUsage usage() const;

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::size_t> max_state_bytes_{0};

  std::atomic<std::size_t> states_{0};
  std::atomic<std::size_t> state_bytes_{0};
  std::atomic<std::size_t> peak_state_bytes_{0};
  std::atomic<std::size_t> levels_{0};
  std::atomic<std::size_t> peak_frontier_{0};
  std::atomic<std::size_t> solver_iterations_{0};
};

}  // namespace choreo::util
