// Deterministic parallel merge sort over the shared thread pool.
//
// The range is cut into one chunk per lane, chunks are sorted concurrently
// with std::sort, then pairs of adjacent runs are merged (also concurrently)
// with std::inplace_merge until one run remains.  Callers that need a
// reproducible result independent of the lane count must supply a *total*
// strict weak order (e.g. break comparison ties on an original-index tag):
// under a total order there is exactly one sorted permutation, so the
// parallel and sequential paths produce identical output.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/thread_pool.hpp"

namespace choreo::util {

template <typename Iterator, typename Compare>
void parallel_sort(Iterator begin, Iterator end, Compare comp,
                   ThreadPool& pool = ThreadPool::shared(),
                   std::size_t min_chunk = 1 << 14) {
  const std::size_t count = static_cast<std::size_t>(end - begin);
  const std::size_t lanes = pool.worker_count() + 1;
  std::size_t chunks = std::min(lanes, count / min_chunk);
  if (chunks < 2) {
    std::sort(begin, end, comp);
    return;
  }

  // Chunk boundaries (chunks + 1 offsets, balanced sizes).
  std::vector<std::size_t> bounds(chunks + 1, 0);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = count * c / chunks;

  pool.parallel_for(chunks, [&](std::size_t first, std::size_t last) {
    for (std::size_t c = first; c < last; ++c) {
      std::sort(begin + bounds[c], begin + bounds[c + 1], comp);
    }
  });

  // log2(chunks) rounds of pairwise merges of adjacent runs.
  for (std::size_t width = 1; width < chunks; width *= 2) {
    const std::size_t pairs = chunks / (2 * width) + (chunks % (2 * width) > width);
    pool.parallel_for(pairs, [&](std::size_t first, std::size_t last) {
      for (std::size_t p = first; p < last; ++p) {
        const std::size_t lo = 2 * width * p;
        const std::size_t mid = lo + width;
        const std::size_t hi = std::min(lo + 2 * width, chunks);
        std::inplace_merge(begin + bounds[lo], begin + bounds[mid],
                           begin + bounds[hi], comp);
      }
    });
  }
}

}  // namespace choreo::util
