#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace choreo::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 seeder(seed);
  for (auto& word : state_) word = seeder.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform_positive() noexcept {
  return 1.0 - uniform();
}

double Xoshiro256::exponential(double rate) noexcept {
  return -std::log(uniform_positive()) / rate;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    const std::uint64_t sample = next();
    if (sample >= threshold) return sample % bound;
  }
}

std::size_t Xoshiro256::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  CHOREO_ASSERT(total > 0.0);
  double point = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: land on the last entry
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> accumulated{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) accumulated[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = accumulated;
}

}  // namespace choreo::util
