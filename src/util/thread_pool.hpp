// A small fixed-size thread pool with a parallel_for convenience wrapper.
//
// Used by the sparse CTMC kernels and the simulation engine's independent
// replications.  Work is partitioned into contiguous chunks, one per worker,
// which suits the regular, memory-bound loops in this codebase better than
// work stealing would.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace choreo::util {

class ThreadPool {
 public:
  /// Spawns `worker_count` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Runs body(begin, end) over contiguous chunks of [0, count) across the
  /// pool (and the calling thread), returning once every chunk completed.
  /// Exceptions from chunks are rethrown (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// The process-wide pool used by library kernels by default.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace choreo::util
