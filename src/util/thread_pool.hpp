// A small fixed-size thread pool with two loop-parallelism entry points and
// a submit() entry point for irregular, long-lived tasks.
//
// parallel_for partitions work into contiguous chunks, one per worker,
// which suits regular, memory-bound loops (the sparse CTMC kernels, the
// simulation engine's independent replications).  parallel_for_dynamic
// hands out chunks from an atomic cursor instead, so lanes that finish
// early steal the remainder — the right shape for irregular per-item cost
// like state-space frontier expansion.  Both are drain-safe: a thread that
// waits for chunks to finish helps execute queued tasks instead of
// sleeping, so nested invocations (a parallel_for inside a parallel_for
// chunk, or inside a sweep point running on the same pool) cannot
// deadlock the pool.  submit() serves the analysis service's scheduler,
// whose jobs are neither regular nor short-lived and need an individually
// waitable completion handle.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace choreo::util {

class ThreadPool {
 public:
  /// Spawns `worker_count` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t worker_count = 0);

  /// Drains every queued task (workers finish outstanding work before
  /// exiting), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Runs body(begin, end) over contiguous chunks of [0, count) across the
  /// pool (and the calling thread), returning once every chunk completed.
  /// Exceptions from chunks are rethrown (first one wins).  While waiting
  /// for its chunks the calling thread executes other queued tasks, so
  /// nesting parallel_for inside a chunk body is deadlock-free.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Work-stealing variant: [0, count) is split into chunks of `grain`
  /// items handed out by an atomic cursor, so up to `max_lanes` lanes (the
  /// calling thread plus pool workers; 0 sizes to the pool) pull the next
  /// chunk as they finish the last — no lane waits on a static split when
  /// per-item cost is irregular.  The chunk boundaries depend only on
  /// (count, grain), never on the interleaving, so a body that writes
  /// item-indexed slots produces identical output at every lane count.
  /// The calling thread participates and, once the cursor is exhausted,
  /// helps drain the task queue until the remaining lanes finish.
  /// Exceptions from chunks are rethrown (first one wins).
  void parallel_for_dynamic(
      std::size_t count, std::size_t grain, std::size_t max_lanes,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueues one task for asynchronous execution and returns a future that
  /// becomes ready when it completes (exceptions propagate through the
  /// future).  Unlike parallel_for, the caller does not participate: tasks
  /// may be long-lived and irregular.  On a pool with no workers the task
  /// runs inline, so submit() never deadlocks.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// The process-wide pool used by library kernels by default.
  ///
  /// Static-destruction contract: the pool is a function-local static, so
  /// it is constructed on first call and destroyed during static
  /// destruction in reverse order of construction relative to other
  /// function-local statics.  Code that can run during static destruction
  /// (destructors of objects with static storage, atexit handlers) may use
  /// shared() safely provided shared() was first called before that object
  /// finished constructing/registering — the pool is then older and is
  /// destroyed later.  Constructing such an object is easiest done by
  /// touching shared() in its own constructor.  Calling shared() for the
  /// very first time during static destruction is undefined (it would
  /// construct a pool that is never destroyed before process teardown
  /// joins it).
  static ThreadPool& shared();

 private:
  void worker_loop();
  /// Pushes a type-erased task and wakes a worker (runs inline when the
  /// pool has no workers).
  void enqueue(std::function<void()> task);
  /// Pops and runs one queued task if any is available; returns whether it
  /// did.  Used by waiting threads to help drain the queue — the queued
  /// task may belong to any caller, including a nested parallel loop.
  bool run_one_queued_task();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace choreo::util
