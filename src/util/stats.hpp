// Online statistics and confidence intervals for the simulation engine.
#pragma once

#include <cstddef>
#include <vector>

namespace choreo::util {

/// Welford's online algorithm for mean and variance.
class RunningStats {
 public:
  void add(double sample) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double std_error() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double level = 0.95;

  double low() const noexcept { return mean - half_width; }
  double high() const noexcept { return mean + half_width; }
  bool contains(double value) const noexcept {
    return value >= low() && value <= high();
  }
};

/// Student-t confidence interval for the mean of the accumulated samples.
/// Falls back to the normal quantile for more than 30 degrees of freedom.
ConfidenceInterval confidence_interval(const RunningStats& stats,
                                       double level = 0.95);

/// Two-sided Student-t quantile at the given confidence level
/// (supported levels: 0.90, 0.95, 0.99).
double student_t_quantile(std::size_t degrees_of_freedom, double level);

/// Batch-means estimator: partitions a correlated sample stream into
/// `batch_count` contiguous batches and treats batch means as i.i.d.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batch_count = 32);

  void add(double sample);
  /// Confidence interval over the completed batches.
  ConfidenceInterval interval(double level = 0.95) const;
  std::size_t completed_batches() const noexcept;

 private:
  void close_batch();

  std::size_t target_batches_;
  std::size_t batch_size_ = 1;
  std::size_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::vector<double> batch_means_;
};

}  // namespace choreo::util
