// Error handling primitives shared by every choreo library.
//
// All recoverable failures in the toolchain (parse errors, ill-formed
// models, solver non-convergence, ...) are reported as exceptions derived
// from choreo::util::Error.  Programming errors (broken invariants) use
// CHOREO_ASSERT which aborts in all build types: a performance-analysis
// result computed from a corrupted state space is worse than no result.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace choreo::util {

/// Base class of all recoverable errors thrown by choreo libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Error while parsing a textual artefact (XML, PEPA source, .rates, ...).
class ParseError : public Error {
 public:
  ParseError(std::string artefact, std::size_t line, std::size_t column,
             const std::string& message)
      : Error(artefact + ":" + std::to_string(line) + ":" + std::to_string(column) +
              ": " + message),
        artefact_(std::move(artefact)),
        line_(line),
        column_(column) {}

  const std::string& artefact() const noexcept { return artefact_; }
  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::string artefact_;
  std::size_t line_;
  std::size_t column_;
};

/// A structurally ill-formed model (undefined process constant, unbalanced
/// net transition, activity diagram without an initial node, ...).
class ModelError : public Error {
 public:
  using Error::Error;
};

/// A numerical routine failed (singular generator, non-convergence, ...).
class NumericError : public Error {
 public:
  using Error::Error;
};

/// A configured resource budget was exhausted: the max_states/max_markings
/// safety bound tripped, or a Budget's byte limit was exceeded.  Derived
/// from ModelError because the bound is a property of the submitted model
/// under the current options (and existing catch sites treat it as such);
/// catching BudgetError specifically identifies the retryable failures.
class BudgetError : public ModelError {
 public:
  using ModelError::ModelError;
};

/// Cooperative interruption: a cancellation request or an expired deadline
/// observed inside a long-running stage (state-space derivation, a solver
/// iteration loop) or at a pipeline stage boundary.  `stage()` names where
/// the interruption was observed ("derive", "solve", "checkpoint", ...).
class InterruptedError : public Error {
 public:
  enum class Reason { kCancelled, kDeadline };

  InterruptedError(Reason reason, std::string stage)
      : Error(std::string(reason == Reason::kCancelled
                              ? "interrupted: cancellation requested"
                              : "interrupted: deadline exceeded") +
              " (in " + stage + ")"),
        reason_(reason),
        stage_(std::move(stage)) {}

  Reason reason() const noexcept { return reason_; }
  const std::string& stage() const noexcept { return stage_; }

 private:
  Reason reason_;
  std::string stage_;
};

/// Builds an error message from stream-style pieces:
///   throw ModelError(msg("undefined constant '", name, "'"));
template <typename... Parts>
std::string msg(Parts&&... parts) {
  std::ostringstream out;
  (out << ... << parts);
  return out.str();
}

[[noreturn]] void assert_fail(const char* expr, const char* file, int line);

}  // namespace choreo::util

#define CHOREO_ASSERT(expr)                                        \
  do {                                                             \
    if (!(expr)) ::choreo::util::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)
