#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace choreo::util {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "choreo internal invariant violated: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}

}  // namespace choreo::util
