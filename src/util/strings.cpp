#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace choreo::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t begin = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > begin) out.emplace_back(text.substr(begin, i - begin));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  auto head = static_cast<unsigned char>(name.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : name.substr(1)) {
    auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && uc != '_') return false;
  }
  return true;
}

std::string format_double(double value) {
  // -0.0 == 0.0, so the zero fast path must consult the sign bit or it
  // silently drops the sign of negative zero.
  if (value == 0.0) return std::signbit(value) ? "-0" : "0";
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Shortest representation from a ladder of precisions that round-trips
  // visually (reports, model printers); not meant for serialising exact bits.
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buffer;
}

}  // namespace choreo::util
