// An append-only vector with stable addresses and lock-free reads.
//
// Storage is a chain of geometrically growing segments published through
// atomic pointers, so ids handed out by push_back() stay valid forever and
// operator[] never takes a lock — the property the hash-consing arena needs
// once state-space exploration workers intern terms concurrently.  Appends
// are serialised by an internal mutex (they are the rare path: interning
// mostly *finds* nodes); readers only ever touch slots whose index they
// obtained through some synchronising handoff (the arena's stripe mutexes),
// which orders the slot's construction before the read.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace choreo::util {

template <typename T>
class SegmentedVector {
 public:
  /// First segment holds kFirstSegment elements; segment s holds twice as
  /// many as segment s-1.  30 segments cover > 2^40 elements.
  static constexpr std::size_t kFirstSegmentLog2 = 10;
  static constexpr std::size_t kSegments = 30;

  SegmentedVector() = default;

  ~SegmentedVector() {
    const std::size_t count = size_.load(std::memory_order_acquire);
    for (std::size_t s = 0; s < kSegments; ++s) {
      T* segment = segments_[s].load(std::memory_order_acquire);
      if (segment == nullptr) break;
      const std::size_t base = segment_base(s);
      const std::size_t live =
          count > base ? std::min(count - base, segment_capacity(s)) : 0;
      for (std::size_t i = 0; i < live; ++i) segment[i].~T();
      ::operator delete[](segment, std::align_val_t(alignof(T)));
    }
  }

  SegmentedVector(const SegmentedVector&) = delete;
  SegmentedVector& operator=(const SegmentedVector&) = delete;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  /// Appends a copy/move of `value` and returns its index.  Thread-safe
  /// against concurrent push_back and operator[].
  template <typename U>
  std::size_t push_back(U&& value) {
    std::lock_guard lock(append_mutex_);
    const std::size_t index = size_.load(std::memory_order_relaxed);
    const std::size_t s = segment_of(index);
    T* segment = segments_[s].load(std::memory_order_relaxed);
    if (segment == nullptr) {
      segment = static_cast<T*>(::operator new[](
          segment_capacity(s) * sizeof(T), std::align_val_t(alignof(T))));
      segments_[s].store(segment, std::memory_order_release);
    }
    new (&segment[index - segment_base(s)]) T(std::forward<U>(value));
    size_.store(index + 1, std::memory_order_release);
    return index;
  }

  /// Lock-free element access.  The caller must have obtained `index`
  /// through a synchronising handoff with the appending thread (or be the
  /// appending thread itself).
  const T& operator[](std::size_t index) const {
    const std::size_t s = segment_of(index);
    T* segment = segments_[s].load(std::memory_order_acquire);
    CHOREO_ASSERT(segment != nullptr);
    return segment[index - segment_base(s)];
  }

  T& operator[](std::size_t index) {
    return const_cast<T&>(std::as_const(*this)[index]);
  }

 private:
  /// Segment s covers indices [base(s), base(s) + capacity(s)) where
  /// base(s) = first * (2^s - 1) and capacity(s) = first * 2^s.
  static constexpr std::size_t segment_capacity(std::size_t s) {
    return std::size_t{1} << (kFirstSegmentLog2 + s);
  }
  static constexpr std::size_t segment_base(std::size_t s) {
    return ((std::size_t{1} << s) - 1) << kFirstSegmentLog2;
  }
  static constexpr std::size_t segment_of(std::size_t index) {
    return std::bit_width((index >> kFirstSegmentLog2) + 1) - 1;
  }

  std::array<std::atomic<T*>, kSegments> segments_{};
  std::atomic<std::size_t> size_{0};
  std::mutex append_mutex_;
};

}  // namespace choreo::util
