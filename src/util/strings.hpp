// Small string utilities used across the toolchain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace choreo::util {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view name);

/// Renders a double compactly ("0.5", "2", "1e-09") for reports and printers.
std::string format_double(double value);

}  // namespace choreo::util
