// GraphViz (DOT) rendering of derived PEPA state spaces — the textual
// counterpart of the PEPA Workbench's derivation-graph view.
#pragma once

#include <string>

#include "pepa/statespace.hpp"

namespace choreo::pepa {

struct DotOptions {
  /// Label states with their full term (false: just the index).
  bool term_labels = true;
  /// Append rates to edge labels.
  bool rate_labels = true;
  /// Highlight the initial state.
  bool mark_initial = true;
};

/// The derivation graph as a DOT digraph.
std::string to_dot(const ProcessArena& arena, const StateSpace& space,
                   const DotOptions& options = {});

/// Escapes a string for use inside a double-quoted DOT label.
std::string dot_escape(const std::string& raw);

}  // namespace choreo::pepa
