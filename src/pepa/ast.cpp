#include "pepa/ast.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/error.hpp"

namespace choreo::pepa {

namespace {

void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

std::size_t hash_node(const ProcessNode& node) {
  std::size_t seed = static_cast<std::size_t>(node.op);
  hash_combine(seed, node.action);
  hash_combine(seed, std::hash<double>{}(node.rate.value()));
  hash_combine(seed, node.rate.is_passive() ? 1u : 0u);
  hash_combine(seed, node.left);
  hash_combine(seed, node.right);
  hash_combine(seed, node.constant);
  for (ActionId a : node.action_set) hash_combine(seed, a);
  return seed;
}

bool nodes_equal(const ProcessNode& a, const ProcessNode& b) {
  return a.op == b.op && a.action == b.action && a.rate == b.rate &&
         a.left == b.left && a.right == b.right && a.constant == b.constant &&
         a.action_set == b.action_set;
}

std::vector<ActionId> normalise_set(std::vector<ActionId> set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  if (set_contains(set, kTau)) {
    throw util::ModelError("tau may not appear in a cooperation or hiding set");
  }
  return set;
}

}  // namespace

ProcessArena::ProcessArena() : state_(std::make_unique<State>()) {
  state_->action_names.push_back(std::string("tau"));
  state_->action_ids.emplace("tau", kTau);
}

ActionId ProcessArena::action(std::string_view name) {
  std::lock_guard lock(state_->names_mutex);
  auto it = state_->action_ids.find(std::string(name));
  if (it != state_->action_ids.end()) return it->second;
  const ActionId id =
      static_cast<ActionId>(state_->action_names.push_back(std::string(name)));
  state_->action_ids.emplace(std::string(name), id);
  return id;
}

std::optional<ActionId> ProcessArena::find_action(std::string_view name) const {
  std::lock_guard lock(state_->names_mutex);
  auto it = state_->action_ids.find(std::string(name));
  if (it == state_->action_ids.end()) return std::nullopt;
  return it->second;
}

const std::string& ProcessArena::action_name(ActionId id) const {
  CHOREO_ASSERT(id < state_->action_names.size());
  return state_->action_names[id];
}

ConstantId ProcessArena::declare(std::string_view name) {
  std::lock_guard lock(state_->names_mutex);
  auto it = state_->constant_ids.find(std::string(name));
  if (it != state_->constant_ids.end()) return it->second;
  const ConstantId id = static_cast<ConstantId>(
      state_->constant_names.push_back(std::string(name)));
  const std::size_t body_slot = state_->constant_bodies.push_back(kInvalidProcess);
  CHOREO_ASSERT(body_slot == id);
  state_->constant_ids.emplace(std::string(name), id);
  return id;
}

std::optional<ConstantId> ProcessArena::find_constant(std::string_view name) const {
  std::lock_guard lock(state_->names_mutex);
  auto it = state_->constant_ids.find(std::string(name));
  if (it == state_->constant_ids.end()) return std::nullopt;
  return it->second;
}

const std::string& ProcessArena::constant_name(ConstantId id) const {
  CHOREO_ASSERT(id < state_->constant_names.size());
  return state_->constant_names[id];
}

bool ProcessArena::is_defined(ConstantId id) const {
  CHOREO_ASSERT(id < state_->constant_bodies.size());
  return state_->constant_bodies[id].load(std::memory_order_acquire) !=
         kInvalidProcess;
}

void ProcessArena::define(ConstantId id, ProcessId body) {
  CHOREO_ASSERT(id < state_->constant_bodies.size());
  CHOREO_ASSERT(body < state_->nodes.size());
  std::lock_guard lock(state_->names_mutex);
  if (state_->constant_bodies[id].load(std::memory_order_relaxed) !=
      kInvalidProcess) {
    throw util::ModelError(util::msg("constant '", constant_name(id),
                                     "' is defined twice"));
  }
  state_->constant_bodies[id].store(body, std::memory_order_release);
}

ProcessId ProcessArena::body(ConstantId id) const {
  CHOREO_ASSERT(id < state_->constant_bodies.size());
  const ProcessId body =
      state_->constant_bodies[id].load(std::memory_order_acquire);
  if (body == kInvalidProcess) {
    throw util::ModelError(util::msg("constant '", constant_name(id),
                                     "' is used but never defined"));
  }
  return body;
}

ProcessId ProcessArena::stop() {
  ProcessNode node;
  node.op = Op::kStop;
  return intern(std::move(node));
}

ProcessId ProcessArena::prefix(ActionId action, Rate rate, ProcessId continuation) {
  CHOREO_ASSERT(continuation < state_->nodes.size());
  if (rate.is_zero()) {
    throw util::ModelError("prefix activities require a positive rate");
  }
  ProcessNode node;
  node.op = Op::kPrefix;
  node.action = action;
  node.rate = rate;
  node.left = continuation;
  return intern(std::move(node));
}

ProcessId ProcessArena::choice(ProcessId left, ProcessId right) {
  CHOREO_ASSERT(left < state_->nodes.size() && right < state_->nodes.size());
  ProcessNode node;
  node.op = Op::kChoice;
  node.left = left;
  node.right = right;
  return intern(std::move(node));
}

ProcessId ProcessArena::cooperation(ProcessId left, std::vector<ActionId> set,
                                    ProcessId right) {
  CHOREO_ASSERT(left < state_->nodes.size() && right < state_->nodes.size());
  ProcessNode node;
  node.op = Op::kCooperation;
  node.left = left;
  node.right = right;
  node.action_set = normalise_set(std::move(set));
  return intern(std::move(node));
}

ProcessId ProcessArena::hiding(ProcessId process, std::vector<ActionId> set) {
  CHOREO_ASSERT(process < state_->nodes.size());
  ProcessNode node;
  node.op = Op::kHiding;
  node.left = process;
  node.action_set = normalise_set(std::move(set));
  return intern(std::move(node));
}

ProcessId ProcessArena::constant(ConstantId id) {
  CHOREO_ASSERT(id < state_->constant_names.size());
  ProcessNode node;
  node.op = Op::kConstant;
  node.constant = id;
  return intern(std::move(node));
}

ProcessId ProcessArena::constant(std::string_view name) {
  return constant(declare(name));
}

const ProcessNode& ProcessArena::node(ProcessId id) const {
  CHOREO_ASSERT(id < state_->nodes.size());
  return state_->nodes[id];
}

ProcessId ProcessArena::intern(ProcessNode node) {
  const std::size_t hash = hash_node(node);
  // Mix before striping so integer-heavy hashes spread across stripes.
  std::size_t mixed = hash;
  mixed ^= mixed >> 33;
  mixed *= 0xff51afd7ed558ccdULL;
  mixed ^= mixed >> 33;
  Stripe& stripe = state_->stripes[mixed % kStripes];

  std::lock_guard lock(stripe.mutex);
  auto& bucket = stripe.buckets[hash];
  for (ProcessId candidate : bucket) {
    if (nodes_equal(state_->nodes[candidate], node)) return candidate;
  }
  // Publication: push_back stores under the stripe mutex; every reader that
  // learns this id does so via a stripe mutex (or a fork/join handoff), so
  // the node contents are visible before the id is.
  const ProcessId id =
      static_cast<ProcessId>(state_->nodes.push_back(std::move(node)));
  bucket.push_back(id);
  return id;
}

bool set_contains(const std::vector<ActionId>& set, ActionId action) {
  return std::binary_search(set.begin(), set.end(), action);
}

std::vector<ActionId> set_union(const std::vector<ActionId>& a,
                                const std::vector<ActionId>& b) {
  std::vector<ActionId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<ActionId> set_intersection(const std::vector<ActionId>& a,
                                       const std::vector<ActionId>& b) {
  std::vector<ActionId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

namespace {
void collect_alphabet(const ProcessArena& arena, ProcessId process,
                      std::vector<bool>& visited_constants,
                      std::vector<ActionId>& out) {
  const ProcessNode& node = arena.node(process);
  switch (node.op) {
    case Op::kStop:
      return;
    case Op::kPrefix:
      if (node.action != kTau) out.push_back(node.action);
      collect_alphabet(arena, node.left, visited_constants, out);
      return;
    case Op::kChoice:
    case Op::kCooperation:
      collect_alphabet(arena, node.left, visited_constants, out);
      collect_alphabet(arena, node.right, visited_constants, out);
      return;
    case Op::kHiding: {
      std::vector<ActionId> inner;
      collect_alphabet(arena, node.left, visited_constants, inner);
      for (ActionId a : inner) {
        if (!set_contains(node.action_set, a)) out.push_back(a);
      }
      return;
    }
    case Op::kConstant:
      if (visited_constants[node.constant]) return;
      visited_constants[node.constant] = true;
      if (arena.is_defined(node.constant)) {
        collect_alphabet(arena, arena.body(node.constant), visited_constants, out);
      }
      return;
  }
}
}  // namespace

namespace {
/// The rewrite is context-free (the `expanding` stack only detects cycles),
/// so results memoise per node.  Hash-consing shares replicated subtrees;
/// without the memo a 10^6-replica population would be walked once per
/// occurrence instead of once per distinct node.
ProcessId expand_static_impl(ProcessArena& arena, ProcessId process,
                             std::vector<ConstantId>& expanding,
                             std::unordered_map<ProcessId, ProcessId>& memo) {
  if (const auto it = memo.find(process); it != memo.end()) return it->second;
  const ProcessNode node = arena.node(process);  // copy: arena may grow
  ProcessId result = process;
  switch (node.op) {
    case Op::kCooperation: {
      const ProcessId left =
          expand_static_impl(arena, node.left, expanding, memo);
      const ProcessId right =
          expand_static_impl(arena, node.right, expanding, memo);
      result = arena.cooperation(left, node.action_set, right);
      break;
    }
    case Op::kHiding: {
      const ProcessId inner =
          expand_static_impl(arena, node.left, expanding, memo);
      result = arena.hiding(inner, node.action_set);
      break;
    }
    case Op::kConstant: {
      const ProcessId body = arena.body(node.constant);
      const Op body_op = arena.node(body).op;
      if (body_op != Op::kCooperation && body_op != Op::kHiding &&
          body_op != Op::kConstant) {
        break;  // sequential definition: keep the name
      }
      if (std::find(expanding.begin(), expanding.end(), node.constant) !=
          expanding.end()) {
        throw util::ModelError(
            util::msg("unguarded recursion through constant '",
                      arena.constant_name(node.constant), "'"));
      }
      expanding.push_back(node.constant);
      result = expand_static_impl(arena, body, expanding, memo);
      expanding.pop_back();
      break;
    }
    default:
      break;
  }
  memo.emplace(process, result);
  return result;
}
}  // namespace

ProcessId expand_static(ProcessArena& arena, ProcessId process) {
  std::vector<ConstantId> expanding;
  std::unordered_map<ProcessId, ProcessId> memo;
  return expand_static_impl(arena, process, expanding, memo);
}

std::vector<ActionId> alphabet(const ProcessArena& arena, ProcessId process) {
  std::vector<bool> visited(arena.constant_count(), false);
  std::vector<ActionId> out;
  collect_alphabet(arena, process, visited, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace choreo::pepa
