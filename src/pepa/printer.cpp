#include "pepa/printer.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::pepa {

namespace {

// Precedence levels: larger binds tighter.
constexpr int kCooperationLevel = 0;
constexpr int kChoiceLevel = 1;
constexpr int kPrefixLevel = 2;
constexpr int kHidingLevel = 3;
constexpr int kAtomLevel = 4;

void print(const ProcessArena& arena, ProcessId process, int enclosing,
           std::ostringstream& out) {
  const ProcessNode& node = arena.node(process);
  auto parenthesise = [&](int level, auto&& body) {
    const bool needed = level < enclosing;
    if (needed) out << '(';
    body();
    if (needed) out << ')';
  };
  switch (node.op) {
    case Op::kStop:
      out << "Stop";
      return;
    case Op::kConstant:
      out << arena.constant_name(node.constant);
      return;
    case Op::kPrefix:
      parenthesise(kPrefixLevel, [&] {
        out << '(' << arena.action_name(node.action) << ", "
            << node.rate.to_string() << ").";
        // A chained prefix needs no parentheses: '.' associates rightwards.
        print(arena, node.left, kPrefixLevel, out);
      });
      return;
    case Op::kChoice:
      parenthesise(kChoiceLevel, [&] {
        print(arena, node.left, kChoiceLevel, out);
        out << " + ";
        print(arena, node.right, kChoiceLevel, out);
      });
      return;
    case Op::kCooperation:
      parenthesise(kCooperationLevel, [&] {
        // Operands above choice level need no parentheses; a choice operand
        // does (cooperation binds weakest but reads ambiguously otherwise).
        print(arena, node.left, kChoiceLevel + 1, out);
        out << ' ' << set_to_string(arena, node.action_set) << ' ';
        print(arena, node.right, kChoiceLevel + 1, out);
      });
      return;
    case Op::kHiding:
      parenthesise(kHidingLevel, [&] {
        print(arena, node.left, kHidingLevel + 1, out);
        out << "/{";
        for (std::size_t i = 0; i < node.action_set.size(); ++i) {
          if (i != 0) out << ", ";
          out << arena.action_name(node.action_set[i]);
        }
        out << '}';
      });
      return;
  }
  CHOREO_ASSERT(false);
}

}  // namespace

std::string to_string(const ProcessArena& arena, ProcessId process) {
  std::ostringstream out;
  print(arena, process, kCooperationLevel, out);
  return out.str();
}

std::string model_to_source(Model& model) {
  std::ostringstream out;
  // Parameters were substituted during parsing; re-emit them as a comment
  // block so the provenance survives.
  if (!model.parameters().empty()) {
    out << "// original rate parameters (values are inlined below):\n";
    for (const auto& [name, value] : model.parameters()) {
      out << "// " << name << " = " << util::format_double(value) << ";\n";
    }
  }
  const ProcessArena& arena = model.arena();
  for (ConstantId id : model.definitions()) {
    out << arena.constant_name(id) << " = " << to_string(arena, arena.body(id))
        << ";\n";
  }
  // Emit any defined constants created outside add_definition (builders).
  for (ConstantId id = 0; id < arena.constant_count(); ++id) {
    if (!arena.is_defined(id)) continue;
    if (std::find(model.definitions().begin(), model.definitions().end(), id) !=
        model.definitions().end()) {
      continue;
    }
    out << arena.constant_name(id) << " = " << to_string(arena, arena.body(id))
        << ";\n";
  }
  const ProcessId system = model.system();
  const ProcessNode& node = model.arena().node(system);
  if (node.op == Op::kConstant) {
    out << "@system " << arena.constant_name(node.constant) << ";\n";
  } else {
    out << "Sys__emitted = " << to_string(arena, system) << ";\n"
        << "@system Sys__emitted;\n";
  }
  return out.str();
}

std::string set_to_string(const ProcessArena& arena,
                          const std::vector<ActionId>& set) {
  if (set.empty()) return "||";
  std::ostringstream out;
  out << '<';
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (i != 0) out << ", ";
    out << arena.action_name(set[i]);
  }
  out << '>';
  return out.str();
}

}  // namespace choreo::pepa
