// Performance measures over a solved PEPA model.
//
// The Choreographer reflector reports two kinds of result (paper Section 5):
//   - throughput of each activity, written back onto activity diagrams, and
//   - steady-state probability of each local state, written back onto state
//     diagrams (one named constant per UML state).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pepa/statespace.hpp"

namespace choreo::pepa {

/// Steady-state throughput of `action`: expected completions per time unit.
double action_throughput(const StateSpace& space,
                         std::span<const double> distribution, ActionId action);

/// Throughput of every action occurring in the transition system, as
/// (action, throughput) pairs ordered by action id.
std::vector<std::pair<ActionId, double>> all_throughputs(
    const StateSpace& space, std::span<const double> distribution,
    const ProcessArena& arena);

/// True when `constant` occurs as a *sequential position* of `term`: the
/// term itself, or a leaf of its cooperation/hiding structure.  With the
/// one-constant-per-UML-state encoding this asks "is some component
/// currently in this state?".
bool occupies(const ProcessArena& arena, ProcessId term, ConstantId constant);

/// Steady-state probability that some component occupies `constant`.
double state_probability(const StateSpace& space,
                         std::span<const double> distribution,
                         const ProcessArena& arena, ConstantId constant);

/// Expected number of components occupying `constant` in steady state
/// (population measure; equals state_probability for a single replica).
double mean_population(const StateSpace& space,
                       std::span<const double> distribution,
                       const ProcessArena& arena, ConstantId constant);

}  // namespace choreo::pepa
