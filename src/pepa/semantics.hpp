// Structured operational semantics of PEPA.
//
// Provides memoised apparent rates r_alpha(P) and one-step derivatives.
// Because terms are hash-consed, both caches are keyed by node id and every
// semantically-identical subterm is evaluated once, which is what makes
// state-space derivation of cooperating replicas tractable.
//
// Both caches are lock-striped (util::StripedMap) with publish-on-miss:
// parallel exploration workers call derivatives()/apparent_rate()
// concurrently, compute misses outside the stripe locks, and the first
// publisher wins (the computations are deterministic, so racing results
// are identical).  Returned references are stable for the lifetime of the
// Semantics object.
//
// Derivative lists preserve multiplicity: (a, r).P + (a, r).P yields two
// entries, so downstream CTMC construction (which sums parallel transitions)
// sees the correct apparent rate 2r.
#pragma once

#include <cstdint>
#include <vector>

#include "pepa/ast.hpp"
#include "util/striped_map.hpp"

namespace choreo::pepa {

/// One enabled activity of a process term.
struct Derivative {
  ActionId action;
  Rate rate;
  ProcessId target;
};

class Semantics {
 public:
  /// The arena is mutated: derivative targets intern new terms.
  explicit Semantics(ProcessArena& arena) : arena_(arena) {}

  ProcessArena& arena() noexcept { return arena_; }
  const ProcessArena& arena() const noexcept { return arena_; }

  /// Apparent rate of `action` in `process` (total capacity for the action,
  /// Rate() when the action is not enabled).  Throws util::ModelError on
  /// unguarded recursion and on mixed active/passive offerings.
  /// Thread-safe.
  Rate apparent_rate(ProcessId process, ActionId action);

  /// All enabled activities of `process`.  Thread-safe; the returned
  /// reference stays valid for the lifetime of this Semantics.
  const std::vector<Derivative>& derivatives(ProcessId process);

 private:
  std::vector<Derivative> compute_derivatives(ProcessId process);
  Rate compute_apparent(ProcessId process, ActionId action);

  ProcessArena& arena_;
  util::StripedMap<std::uint64_t, Rate> apparent_cache_;
  util::StripedMap<ProcessId, std::vector<Derivative>> derivative_cache_;
};

}  // namespace choreo::pepa
