// Structured operational semantics of PEPA.
//
// Provides memoised apparent rates r_alpha(P) and one-step derivatives.
// Because terms are hash-consed, both caches are keyed by node id and every
// semantically-identical subterm is evaluated once, which is what makes
// state-space derivation of cooperating replicas tractable.
//
// Derivative lists preserve multiplicity: (a, r).P + (a, r).P yields two
// entries, so downstream CTMC construction (which sums parallel transitions)
// sees the correct apparent rate 2r.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pepa/ast.hpp"

namespace choreo::pepa {

/// One enabled activity of a process term.
struct Derivative {
  ActionId action;
  Rate rate;
  ProcessId target;
};

class Semantics {
 public:
  /// The arena is mutated: derivative targets intern new terms.
  explicit Semantics(ProcessArena& arena) : arena_(arena) {}

  ProcessArena& arena() noexcept { return arena_; }
  const ProcessArena& arena() const noexcept { return arena_; }

  /// Apparent rate of `action` in `process` (total capacity for the action,
  /// Rate() when the action is not enabled).  Throws util::ModelError on
  /// unguarded recursion and on mixed active/passive offerings.
  Rate apparent_rate(ProcessId process, ActionId action);

  /// All enabled activities of `process` (cached; do not hold the reference
  /// across further arena mutation).
  const std::vector<Derivative>& derivatives(ProcessId process);

 private:
  std::vector<Derivative> compute_derivatives(ProcessId process);
  Rate compute_apparent(ProcessId process, ActionId action);

  ProcessArena& arena_;
  std::unordered_map<std::uint64_t, Rate> apparent_cache_;
  std::unordered_map<ProcessId, std::vector<Derivative>> derivative_cache_;
  /// Constants currently being expanded (unguarded-recursion detection).
  std::vector<ConstantId> expanding_;
};

}  // namespace choreo::pepa
