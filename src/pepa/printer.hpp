// Pretty-printing of PEPA terms and models in the concrete syntax accepted
// by the parser, with precedence-aware parenthesisation:
//   hiding > prefix > choice > cooperation.
#pragma once

#include <string>

#include "pepa/ast.hpp"

namespace choreo::pepa {

/// Renders a term, e.g. "(openread, r).InStream + (openwrite, r).OutStream".
std::string to_string(const ProcessArena& arena, ProcessId process);

/// Renders a cooperation set, e.g. "<openread, close>"; "||" when empty.
std::string set_to_string(const ProcessArena& arena,
                          const std::vector<ActionId>& set);

}  // namespace choreo::pepa

// model_to_source lives beside the Model type but needs the printer.
#include "pepa/model.hpp"

namespace choreo::pepa {

/// Emits a complete, re-parseable .pepa source for the model: every rate
/// parameter (values inlined where used, re-emitted for documentation),
/// every definition in declaration order, and the @system directive.
/// parse_model(model_to_source(m)) derives an identical state space.
std::string model_to_source(Model& model);

}  // namespace choreo::pepa
