#include "pepa/semantics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace choreo::pepa {

namespace {

std::uint64_t apparent_key(ProcessId process, ActionId action) {
  return (static_cast<std::uint64_t>(process) << 32) | action;
}

/// The stack of constants currently being expanded, for unguarded-recursion
/// detection.  One stack per thread: exploration workers recurse through the
/// shared Semantics concurrently, and the stack is empty between top-level
/// calls, so a thread_local is exactly the per-call-tree state needed.
thread_local std::vector<ConstantId> t_expanding;

/// Exception-safe push/pop on the per-thread expansion stack.
struct ExpandingGuard {
  explicit ExpandingGuard(ConstantId id) { t_expanding.push_back(id); }
  ~ExpandingGuard() { t_expanding.pop_back(); }
};

bool currently_expanding(ConstantId id) {
  return std::find(t_expanding.begin(), t_expanding.end(), id) !=
         t_expanding.end();
}

}  // namespace

Rate Semantics::apparent_rate(ProcessId process, ActionId action) {
  const std::uint64_t key = apparent_key(process, action);
  if (const Rate* hit = apparent_cache_.find(key)) return *hit;
  const Rate rate = compute_apparent(process, action);
  return *apparent_cache_.try_emplace(key, rate).first;
}

Rate Semantics::compute_apparent(ProcessId process, ActionId action) {
  const ProcessNode node = arena_.node(process);  // copy: arena may grow
  switch (node.op) {
    case Op::kStop:
      return Rate();
    case Op::kPrefix:
      return node.action == action ? node.rate : Rate();
    case Op::kChoice:
      return apparent_rate(node.left, action)
          .plus(apparent_rate(node.right, action), arena_.action_name(action));
    case Op::kHiding:
      // Activities of a hidden type appear as tau; their original type has
      // apparent rate zero.  tau itself aggregates the hidden activities.
      if (action == kTau) {
        Rate sum = apparent_rate(node.left, kTau);
        for (ActionId hidden : node.action_set) {
          sum = sum.plus(apparent_rate(node.left, hidden), "tau");
        }
        return sum;
      }
      if (set_contains(node.action_set, action)) return Rate();
      return apparent_rate(node.left, action);
    case Op::kCooperation: {
      const Rate left = apparent_rate(node.left, action);
      const Rate right = apparent_rate(node.right, action);
      if (action != kTau && set_contains(node.action_set, action)) {
        return Rate::min(left, right);
      }
      return left.plus(right, arena_.action_name(action));
    }
    case Op::kConstant: {
      if (currently_expanding(node.constant)) {
        throw util::ModelError(
            util::msg("unguarded recursion through constant '",
                      arena_.constant_name(node.constant), "'"));
      }
      ExpandingGuard guard(node.constant);
      return apparent_rate(arena_.body(node.constant), action);
    }
  }
  CHOREO_ASSERT(false);
  return Rate();
}

const std::vector<Derivative>& Semantics::derivatives(ProcessId process) {
  if (const std::vector<Derivative>* hit = derivative_cache_.find(process)) {
    return *hit;
  }
  std::vector<Derivative> computed = compute_derivatives(process);
  return *derivative_cache_.try_emplace(process, std::move(computed)).first;
}

std::vector<Derivative> Semantics::compute_derivatives(ProcessId process) {
  const ProcessNode node = arena_.node(process);  // copy: arena may grow
  std::vector<Derivative> out;
  switch (node.op) {
    case Op::kStop:
      return out;
    case Op::kPrefix:
      out.push_back({node.action, node.rate, node.left});
      return out;
    case Op::kChoice: {
      // Copies: computing the right list may invalidate a reference into the
      // cache obtained for the left list.
      const std::vector<Derivative> left = derivatives(node.left);
      const std::vector<Derivative> right = derivatives(node.right);
      out = left;
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
    case Op::kHiding: {
      const std::vector<Derivative> inner = derivatives(node.left);
      out.reserve(inner.size());
      for (const Derivative& d : inner) {
        const ActionId action =
            set_contains(node.action_set, d.action) ? kTau : d.action;
        out.push_back({action, d.rate, arena_.hiding(d.target, node.action_set)});
      }
      return out;
    }
    case Op::kCooperation: {
      const std::vector<Derivative> left = derivatives(node.left);
      const std::vector<Derivative> right = derivatives(node.right);
      // Independent moves (action outside the cooperation set; tau is never
      // in the set).
      for (const Derivative& d : left) {
        if (set_contains(node.action_set, d.action)) continue;
        out.push_back(
            {d.action, d.rate,
             arena_.cooperation(d.target, node.action_set, node.right)});
      }
      for (const Derivative& d : right) {
        if (set_contains(node.action_set, d.action)) continue;
        out.push_back(
            {d.action, d.rate,
             arena_.cooperation(node.left, node.action_set, d.target)});
      }
      // Shared moves: each pair of co-operating activities, scaled by the
      // apparent-rate law.
      for (ActionId shared : node.action_set) {
        const Rate apparent_left = apparent_rate(node.left, shared);
        const Rate apparent_right = apparent_rate(node.right, shared);
        if (apparent_left.is_zero() || apparent_right.is_zero()) continue;
        for (const Derivative& dl : left) {
          if (dl.action != shared) continue;
          for (const Derivative& dr : right) {
            if (dr.action != shared) continue;
            const Rate rate =
                cooperation_rate(dl.rate, apparent_left, dr.rate, apparent_right,
                                 arena_.action_name(shared));
            out.push_back(
                {shared, rate,
                 arena_.cooperation(dl.target, node.action_set, dr.target)});
          }
        }
      }
      return out;
    }
    case Op::kConstant: {
      if (currently_expanding(node.constant)) {
        throw util::ModelError(
            util::msg("unguarded recursion through constant '",
                      arena_.constant_name(node.constant), "'"));
      }
      ExpandingGuard guard(node.constant);
      out = derivatives(arena_.body(node.constant));
      return out;
    }
  }
  CHOREO_ASSERT(false);
  return out;
}

}  // namespace choreo::pepa
