#include "pepa/dot.hpp"

#include <sstream>

#include "pepa/printer.hpp"
#include "util/strings.hpp"

namespace choreo::pepa {

std::string dot_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string to_dot(const ProcessArena& arena, const StateSpace& space,
                   const DotOptions& options) {
  std::ostringstream out;
  out << "digraph derivation {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    out << "  s" << s << " [label=\"";
    if (options.term_labels) {
      out << dot_escape(to_string(arena, space.state_term(s)));
    } else {
      out << s;
    }
    out << '"';
    if (options.mark_initial && s == 0) out << ", style=bold";
    out << "];\n";
  }
  for (const StateTransition& t : space.transitions()) {
    out << "  s" << t.source << " -> s" << t.target << " [label=\""
        << dot_escape(arena.action_name(t.action));
    if (options.rate_labels) out << ", " << util::format_double(t.rate);
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace choreo::pepa
