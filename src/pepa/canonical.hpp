// Sort-canonical representatives of PEPA terms: the state policy behind
// on-the-fly aggregation (explore::run's canonicalization stage).
//
// PEPA cooperation over one action set L is commutative and associative up
// to strong equivalence (the apparent-rate minimum is symmetric and
// associative), so the siblings of a maximal cooperation spine sharing the
// same set — in particular the replicated components of the `pepa::families`
// populations, folded over the empty set — may be reordered freely without
// changing the induced CTMC up to lumping.  The canonicalizer flattens every
// such spine, canonicalizes the siblings, sorts them under a *structural*
// order, and rebuilds the same balanced shape `families.cpp` uses.  Deriving
// through this rewrite makes the explored space the population-vector
// quotient of Ding & Hillston's vector form: a state is "how many replicas
// sit in each local derivative", not "which replica sits where".
//
// The sibling order must not depend on ProcessIds: the arena interns nodes
// concurrently, so ids differ from run to run and lane count to lane count,
// while the byte-identity guarantee (tests/test_golden_artifacts.cpp) and
// the lanes {1,2,8} determinism of the quotient space require a stable
// order.  structural_compare therefore orders terms by their syntax alone
// (operator, then per-operator fields, then children), which is invariant
// across arenas, runs and lane counts; ActionIds and ConstantIds are
// registered single-threaded at model-build time and are deterministic.
#pragma once

#include "pepa/ast.hpp"
#include "util/striped_map.hpp"

namespace choreo::pepa {

/// Total structural order on terms of one arena: <0, 0, >0 as `a` comes
/// before, equals, or follows `b`.  Hash-consing makes equal subterms share
/// ids, so the a == b short-circuit keeps comparisons of large equal
/// subtrees O(1).  Deterministic across runs and lane counts (never
/// consults raw ProcessIds).
int structural_compare(const ProcessArena& arena, ProcessId a, ProcessId b);

inline bool structural_less(const ProcessArena& arena, ProcessId a,
                            ProcessId b) {
  return structural_compare(arena, a, b) < 0;
}

/// Memoized canonical-representative computation.  Thread-safe: the memo is
/// a StripedMap and the arena interns concurrently; racing computations of
/// the same term produce the same id, so the first publisher winning is
/// harmless.  Usable directly as explore::run's canonicalization stage.
class Canonicalizer {
 public:
  explicit Canonicalizer(ProcessArena& arena) : arena_(arena) {}

  /// The canonical representative of `term`'s strong-equivalence class
  /// under sibling reordering.  Idempotent: canonical(canonical(t)) ==
  /// canonical(t).
  ProcessId canonical(ProcessId term);

  /// explore::run hook: rewrite in place, report whether it changed.
  bool operator()(ProcessId& term) {
    const ProcessId replacement = canonical(term);
    if (replacement == term) return false;
    term = replacement;
    return true;
  }

  ProcessArena& arena() noexcept { return arena_; }

 private:
  ProcessArena& arena_;
  util::StripedMap<ProcessId, ProcessId> memo_;
};

}  // namespace choreo::pepa
