// Parser for the concrete PEPA syntax (the PEPA Workbench dialect):
//
//   // a comment
//   r  = 2.0;                          // rate parameter (numeric expression)
//   File      = (openread, r).InStream + (openwrite, r).OutStream;
//   InStream  = (read, 1.8).InStream + (close, 3.0).File;
//   OutStream = (write, 1.2).OutStream + (close, 3.0).File;
//   Reader    = (openread, infty).(read, infty).(close, infty).Reader;
//   System    = File <openread, read, close> Reader;
//   @system System;                    // optional; defaults to the last def
//
// Rates are numeric expressions over literals and previously defined
// parameters (+ - * / and parentheses), the passive rate "infty" (alias
// "T"), or a weighted passive "2 * infty".  A definition whose right-hand
// side is a pure numeric expression over known parameters defines a
// parameter; anything else defines a process.
#pragma once

#include <string>
#include <string_view>

#include "pepa/model.hpp"

namespace choreo::pepa {

/// Parses a PEPA model.  Throws util::ParseError with source positions on
/// syntax errors and util::ModelError on semantic ones (duplicate
/// definitions, tau in a cooperation set, ...).
Model parse_model(std::string_view source, std::string source_name = "<pepa>");

/// Parses a model from a file on disk.
Model parse_model_file(const std::string& path);

}  // namespace choreo::pepa
