#include "pepa/aggregate.hpp"

namespace choreo::pepa {

ctmc::LabelledLumping aggregate(const StateSpace& space) {
  std::vector<ctmc::LabelledTransition> transitions;
  transitions.reserve(space.transitions().size());
  for (const StateTransition& t : space.transitions()) {
    transitions.push_back({t.source, t.target, t.action, t.rate});
  }
  return ctmc::compute_labelled_lumping(space.state_count(), transitions);
}

}  // namespace choreo::pepa
