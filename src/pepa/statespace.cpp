#include "pepa/statespace.hpp"

#include <deque>

#include "util/error.hpp"

namespace choreo::pepa {

StateSpace StateSpace::derive(Semantics& semantics, ProcessId initial,
                              const DeriveOptions& options) {
  StateSpace space;
  std::deque<std::size_t> frontier;

  auto index_of_term = [&](ProcessId term) {
    auto it = space.index_.find(term);
    if (it != space.index_.end()) return it->second;
    if (space.states_.size() >= options.max_states) {
      throw util::ModelError(util::msg(
          "state space exceeds the configured bound of ", options.max_states,
          " states (state-space explosion)"));
    }
    const std::size_t index = space.states_.size();
    space.states_.push_back(term);
    space.index_.emplace(term, index);
    frontier.push_back(index);
    return index;
  };

  index_of_term(expand_static(semantics.arena(), initial));
  while (!frontier.empty()) {
    const std::size_t source = frontier.front();
    frontier.pop_front();
    // Copy: target interning may extend the arena and the derivative cache.
    const std::vector<Derivative> moves =
        semantics.derivatives(space.states_[source]);
    for (const Derivative& move : moves) {
      if (move.rate.is_passive()) {
        if (options.allow_top_level_passive) continue;
        throw util::ModelError(util::msg(
            "activity '", semantics.arena().action_name(move.action),
            "' occurs passively at the top level of the model: it would never",
            " be performed; synchronise it with an active partner"));
      }
      const std::size_t target = index_of_term(move.target);
      space.transitions_.push_back({source, target, move.action, move.rate.value()});
    }
  }
  return space;
}

std::optional<std::size_t> StateSpace::index_of(ProcessId term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

ctmc::Generator StateSpace::generator() const {
  std::vector<ctmc::RatedTransition> rated;
  rated.reserve(transitions_.size());
  for (const StateTransition& t : transitions_) {
    rated.push_back({t.source, t.target, t.rate});
  }
  return ctmc::Generator::build(state_count(), rated);
}

std::vector<ctmc::RatedTransition> StateSpace::transitions_of(ActionId action) const {
  std::vector<ctmc::RatedTransition> out;
  for (const StateTransition& t : transitions_) {
    if (t.action == action) out.push_back({t.source, t.target, t.rate});
  }
  return out;
}

std::vector<std::size_t> StateSpace::deadlock_states() const {
  std::vector<bool> has_move(state_count(), false);
  for (const StateTransition& t : transitions_) has_move[t.source] = true;
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (!has_move[s]) out.push_back(s);
  }
  return out;
}

}  // namespace choreo::pepa
