#include "pepa/statespace.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <limits>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace choreo::pepa {

namespace {

/// Sentinel for "target not yet numbered" in the expansion buffers.
constexpr std::size_t kUnresolved = std::numeric_limits<std::size_t>::max();

/// One derivative recorded by an expansion worker: the move itself plus the
/// target's state index when it was already numbered in an earlier level.
struct PendingMove {
  Derivative move;
  std::size_t resolved = kUnresolved;
};

}  // namespace

StateSpace StateSpace::derive(Semantics& semantics, ProcessId initial,
                              const DeriveOptions& options) {
  util::Stopwatch timer;
  StateSpace space;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
  const std::size_t lanes =
      options.threads == 0 ? pool.worker_count() + 1 : options.threads;

  // The states of the level being expanded, in canonical (index) order.
  std::vector<std::size_t> frontier;

  auto index_of_term = [&](ProcessId term) {
    if (const std::size_t* known = space.index_.find(term)) {
      ++space.stats_.dedup_hits;
      return *known;
    }
    if (space.states_.size() >= options.max_states) {
      throw util::BudgetError(util::msg(
          "state space exceeds the configured bound of ", options.max_states,
          " states (state-space explosion)"));
    }
    const std::size_t index = space.states_.size();
    space.states_.push_back(term);
    space.index_.try_emplace(term, index);
    ++space.stats_.dedup_misses;
    frontier.push_back(index);
    return index;
  };

  // Approximate per-state footprint: the term id plus its interning entry.
  constexpr std::size_t kBytesPerState =
      sizeof(ProcessId) + 2 * sizeof(std::size_t);

  index_of_term(expand_static(semantics.arena(), initial));
  if (options.budget != nullptr) {
    options.budget->charge_states(1, kBytesPerState);
  }
  while (!frontier.empty()) {
    ++space.stats_.levels;
    space.stats_.peak_frontier =
        std::max(space.stats_.peak_frontier, frontier.size());
    // The cooperative governance point: once per level, after recording the
    // level in the accounting (so partial stats cover the level being
    // abandoned), before the expensive expansion.  Level granularity keeps
    // exploration deterministic — uninterrupted runs never observe it.
    if (options.budget != nullptr) {
      options.budget->note_level(frontier.size());
      options.budget->check("derive");
    }
    const std::vector<std::size_t> level = std::move(frontier);
    frontier.clear();

    // Parallel phase: expand every level state into its move buffer.  The
    // workers intern derivative terms (the arena and the semantics caches
    // are thread-safe) and pre-resolve targets against the index, which
    // only the serial phase below mutates.  Errors are captured per state
    // so the canonically-first one can be rethrown deterministically.
    std::vector<std::vector<PendingMove>> moves(level.size());
    std::vector<std::exception_ptr> errors(level.size());
    auto expand = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          // Copy: concurrent workers may grow the cache under the ref.
          const std::vector<Derivative> derivatives =
              semantics.derivatives(space.states_[level[i]]);
          moves[i].reserve(derivatives.size());
          for (const Derivative& d : derivatives) {
            const std::size_t* known = space.index_.find(d.target);
            moves[i].push_back({d, known != nullptr ? *known : kUnresolved});
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    const std::size_t chunks = std::min(lanes, level.size());
    if (chunks <= 1) {
      expand(0, level.size());
    } else {
      std::vector<std::future<void>> pending;
      pending.reserve(chunks - 1);
      for (std::size_t c = 1; c < chunks; ++c) {
        const std::size_t begin = level.size() * c / chunks;
        const std::size_t end = level.size() * (c + 1) / chunks;
        pending.push_back(pool.submit([&, begin, end] { expand(begin, end); }));
      }
      expand(0, level.size() / chunks);
      for (std::future<void>& f : pending) f.get();
    }

    // Serial phase: number the discovered states and emit transitions in
    // canonical order — source index, then derivative order — which is the
    // order the sequential FIFO exploration produces.
    const std::size_t known_before = space.states_.size();
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
      const std::size_t source = level[i];
      for (const PendingMove& pending_move : moves[i]) {
        const Derivative& move = pending_move.move;
        if (move.rate.is_passive()) {
          if (options.allow_top_level_passive) continue;
          throw util::ModelError(util::msg(
              "activity '", semantics.arena().action_name(move.action),
              "' occurs passively at the top level of the model: it would never",
              " be performed; synchronise it with an active partner"));
        }
        std::size_t target;
        if (pending_move.resolved != kUnresolved) {
          target = pending_move.resolved;
          ++space.stats_.dedup_hits;
        } else {
          target = index_of_term(move.target);
        }
        space.transitions_.push_back(
            {source, target, move.action, move.rate.value()});
      }
    }
    if (options.budget != nullptr) {
      options.budget->charge_states(space.states_.size() - known_before,
                                    (space.states_.size() - known_before) *
                                        kBytesPerState);
    }
  }
  space.stats_.seconds = timer.seconds();
  return space;
}

std::optional<std::size_t> StateSpace::index_of(ProcessId term) const {
  const std::size_t* found = index_.find(term);
  if (found == nullptr) return std::nullopt;
  return *found;
}

ctmc::Generator StateSpace::generator() const {
  std::vector<ctmc::RatedTransition> rated;
  rated.reserve(transitions_.size());
  for (const StateTransition& t : transitions_) {
    rated.push_back({t.source, t.target, t.rate});
  }
  return ctmc::Generator::build(state_count(), rated);
}

std::vector<ctmc::RatedTransition> StateSpace::transitions_of(ActionId action) const {
  std::vector<ctmc::RatedTransition> out;
  for (const StateTransition& t : transitions_) {
    if (t.action == action) out.push_back({t.source, t.target, t.rate});
  }
  return out;
}

std::vector<std::size_t> StateSpace::deadlock_states() const {
  std::vector<bool> has_move(state_count(), false);
  for (const StateTransition& t : transitions_) has_move[t.source] = true;
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (!has_move[s]) out.push_back(s);
  }
  return out;
}

}  // namespace choreo::pepa
