#include "pepa/statespace.hpp"

#include <utility>

#include "pepa/canonical.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace choreo::pepa {

StateSpace StateSpace::derive(Semantics& semantics, ProcessId initial,
                              const DeriveOptions& options) {
  util::Stopwatch timer;
  StateSpace space;

  explore::EngineOptions engine;
  engine.max_states = options.max_states;
  engine.allow_top_level_passive = options.allow_top_level_passive;
  engine.threads = options.threads;
  engine.chunk_grain = options.chunk_grain;
  engine.pool = options.pool;
  engine.budget = options.budget;
  // Approximate per-state footprint: the term id plus its interning entry.
  engine.bytes_per_state = sizeof(ProcessId) + 2 * sizeof(std::size_t);
  engine.space_noun = "state space";
  engine.state_noun = "states";
  engine.passive_suffix =
      "' occurs passively at the top level of the model: it would never"
      " be performed; synchronise it with an active partner";

  auto run_with = [&](auto&& canonicalize) {
    return explore::run(
        space.states_, space.index_, expand_static(semantics.arena(), initial),
        [&semantics](const ProcessId& term) {
          // Copy: concurrent workers may grow the cache under the ref.
          return std::vector<Derivative>(semantics.derivatives(term));
        },
        std::forward<decltype(canonicalize)>(canonicalize),
        [&semantics](const Derivative& move) {
          return semantics.arena().action_name(move.action);
        },
        [&space](std::size_t source, const Derivative& move,
                 std::size_t target) {
          space.lts_.push_back(
              {source, target, move.action, move.rate.value()});
        },
        engine);
  };
  if (options.aggregate) {
    // Quotient-direct derivation: successors collapse to sort-canonical
    // representatives before interning; parallel moves into one block are
    // committed separately and summed by the generator build, which is
    // exactly the lumped rate.  The memo lives for this derivation only.
    space.aggregated_ = true;
    Canonicalizer canonicalizer(semantics.arena());
    space.stats_ = run_with(
        [&canonicalizer](ProcessId& term) { return canonicalizer(term); });
  } else {
    space.stats_ = run_with(explore::NoCanonicalize{});
  }
  space.lts_.finalize(space.states_.size());
  space.stats_.seconds = timer.seconds();
  return space;
}

std::optional<std::size_t> StateSpace::index_of(ProcessId term) const {
  const std::size_t* found = index_.find(term);
  if (found == nullptr) return std::nullopt;
  return *found;
}

ctmc::Generator StateSpace::generator() const {
  return ctmc::Generator::build_from<StateTransition>(state_count(),
                                                      lts_.transitions());
}

std::vector<ctmc::RatedTransition> StateSpace::transitions_of(ActionId action) const {
  std::vector<ctmc::RatedTransition> out;
  const auto slice = lts_.action_transitions(action);
  out.reserve(slice.size());
  for (const std::size_t i : slice) {
    const StateTransition& t = lts_[i];
    out.push_back({t.source, t.target, t.rate});
  }
  return out;
}

std::vector<std::size_t> StateSpace::deadlock_states() const {
  return lts_.deadlock_states();
}

}  // namespace choreo::pepa
