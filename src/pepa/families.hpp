// Parametric PEPA model families, built programmatically so validation
// suites and benchmarks can sweep population sizes without hand-written
// model files.
//
//   client_server(N) — the paper's Tomcat scenario reduced to its scaling
//     core: N identical clients cycling request/response against a pool of
//     servers, cooperating on {request, response}.  Clients are active on
//     request and passive on response; servers the other way round.
//
//   pda_handover(N) — the PDA scenario's capacity question: N PDAs that
//     detect a boundary and then wait (passively) for one of M transmitters
//     to perform the handover; transmitters cool down before the next one.
//
//   ring(N) — a chain of N two-state stations driven by an always-on hub:
//     station i can only switch on while its predecessor is on (a passive
//     enabling cooperation), and switches off freely.  The reachable space
//     is exponential in N with genuine synchronisation, which makes it the
//     honest sweep family for state-space benchmarks.
#pragma once

#include <cstddef>

#include "pepa/model.hpp"

namespace choreo::pepa {

struct ClientServerParams {
  double request_rate = 1.5;
  double response_rate = 2.0;
  /// Number of replicated servers cooperating with the client population.
  std::size_t servers = 1;
};

/// N clients vs a server pool: (Client || ... || Client)
/// <request, response> (Server || ... || Server).
Model client_server(std::size_t clients, const ClientServerParams& params = {});

struct PdaHandoverParams {
  double detect_rate = 1.0;
  double handover_rate = 4.0;
  double reset_rate = 2.0;
  /// Number of transmitters serving handovers.
  std::size_t transmitters = 2;
};

/// N PDAs vs M transmitters: (Pda || ...) <handover> (Transmitter || ...).
Model pda_handover(std::size_t pdas, const PdaHandoverParams& params = {});

struct RingParams {
  double on_rate = 1.0;
  double off_rate = 0.8;
};

/// Hub-driven chain of N stations; distinct per-station action types, so
/// the state space is an exponential reachable subset of 2^N.
Model ring(std::size_t stations, const RingParams& params = {});

/// Exact reachable-state counts of the families above, in closed form, so
/// benchmark sweeps can be sized honestly (pick parameters that really
/// reach 10^5 or 10^6 states) and the derived counts verified against the
/// formula rather than eyeballed.
///
/// client_server: request and response are both in the cooperation set, so
/// the number of waiting clients always equals the number of busy servers —
/// with distinguishable replicas that leaves sum_k C(N,k)·C(S,k) = C(N+S,N)
/// reachable states.  pda_handover: detect and reset are individual
/// actions, so every of the 2^(pdas+transmitters) component combinations is
/// reachable.  ring: stations switch on in chain order but off freely, so
/// all 2^stations configurations are eventually reachable.
std::size_t client_server_states(std::size_t clients, std::size_t servers);
std::size_t pda_handover_states(std::size_t pdas, std::size_t transmitters);
std::size_t ring_states(std::size_t stations);

/// Block counts of the strong-equivalence (population-vector) quotients the
/// sort-canonical derivation (DeriveOptions::aggregate) explores, in closed
/// form.  Replicated siblings are indistinguishable there, so a state is a
/// population vector rather than an interleaving:
///
/// client_server: waiting clients always equal busy servers, so the only
/// degree of freedom is that shared count — min(clients, servers) + 1
/// states, versus C(clients+servers, clients) for the full chain.
/// pda_handover: (searching PDAs, cooling transmitters) counts —
/// (pdas + 1) * (transmitters + 1) states versus 2^(pdas+transmitters).
/// ring: stations carry distinct per-station action types, so nothing is
/// exchangeable and the quotient equals the full space (the honest
/// no-collapse control; ring_states covers it).
std::size_t client_server_quotient_states(std::size_t clients,
                                          std::size_t servers);
std::size_t pda_handover_quotient_states(std::size_t pdas,
                                         std::size_t transmitters);

}  // namespace choreo::pepa
