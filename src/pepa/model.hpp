// A parsed (or programmatically built) PEPA model: an arena of terms, the
// named definitions in source order, rate parameters, and the designated
// system equation.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pepa/ast.hpp"

namespace choreo::pepa {

class Model {
 public:
  ProcessArena& arena() noexcept { return arena_; }
  const ProcessArena& arena() const noexcept { return arena_; }

  /// Named rate parameters in definition order.
  const std::vector<std::pair<std::string, double>>& parameters() const noexcept {
    return parameters_;
  }
  void add_parameter(std::string name, double value);
  /// Value of a parameter; throws util::ModelError when unknown.
  double parameter(std::string_view name) const;
  bool has_parameter(std::string_view name) const;

  /// Records a process definition (body bound in the arena).
  void add_definition(ConstantId constant);
  const std::vector<ConstantId>& definitions() const noexcept {
    return definitions_;
  }

  /// The system equation; defaults to the last definition when unset.
  ProcessId system();
  void set_system(ProcessId system) { system_ = system; }
  bool has_explicit_system() const noexcept { return system_ != kInvalidProcess; }

  /// The constant term for a named definition; throws when unknown.
  ProcessId term(std::string_view name);

  /// Verifies every used constant has a definition (util::ModelError).
  void check_definitions() const;

 private:
  ProcessArena arena_;
  std::vector<std::pair<std::string, double>> parameters_;
  std::vector<ConstantId> definitions_;
  ProcessId system_ = kInvalidProcess;
};

}  // namespace choreo::pepa
