// A parsed (or programmatically built) PEPA model: an arena of terms, the
// named definitions in source order, rate parameters, and the designated
// system equation.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pepa/ast.hpp"

namespace choreo::pepa {

/// Provenance of a prefix's rate: recorded when the source rate expression
/// is a single parameter reference scaled by literals ("r", "2*r", "r/3",
/// "r*infty"), so rate = scale * parameter value.  The sweep engine uses
/// these tags to rebind rates without re-parsing.
struct PrefixRateTag {
  std::string parameter;
  double scale = 1.0;
};

class Model {
 public:
  ProcessArena& arena() noexcept { return arena_; }
  const ProcessArena& arena() const noexcept { return arena_; }

  /// Named rate parameters in definition order.
  const std::vector<std::pair<std::string, double>>& parameters() const noexcept {
    return parameters_;
  }
  void add_parameter(std::string name, double value);
  /// Value of a parameter; throws util::ModelError when unknown.
  double parameter(std::string_view name) const;
  bool has_parameter(std::string_view name) const;

  /// Records a process definition (body bound in the arena).
  void add_definition(ConstantId constant);
  const std::vector<ConstantId>& definitions() const noexcept {
    return definitions_;
  }

  /// The system equation; defaults to the last definition when unset.
  ProcessId system();
  void set_system(ProcessId system) { system_ = system; }
  bool has_explicit_system() const noexcept { return system_ != kInvalidProcess; }

  /// The constant term for a named definition; throws when unknown.
  ProcessId term(std::string_view name);

  /// Verifies every used constant has a definition (util::ModelError).
  void check_definitions() const;

  /// Records how a prefix's rate was written: a tag when the expression was
  /// a single scaled parameter, std::nullopt otherwise.  Hash-consing can
  /// intern the same prefix term for two source occurrences with different
  /// provenance (a tagged "r" and a literal of equal value); such conflicts
  /// mark the parameters involved opaque rather than keep an ambiguous tag.
  void note_prefix_rate(ProcessId prefix, std::optional<PrefixRateTag> tag);

  /// Marks a parameter as unsafe to rebind: it was used in a compound rate
  /// expression, feeds a derived parameter, or lost a tag conflict.
  void mark_parameter_opaque(std::string name);

  const std::unordered_map<ProcessId, PrefixRateTag>& prefix_rate_tags()
      const noexcept {
    return prefix_tags_;
  }
  bool parameter_is_opaque(std::string_view name) const {
    return opaque_parameters_.count(std::string(name)) != 0;
  }

 private:
  ProcessArena arena_;
  std::vector<std::pair<std::string, double>> parameters_;
  std::vector<ConstantId> definitions_;
  ProcessId system_ = kInvalidProcess;
  std::unordered_map<ProcessId, PrefixRateTag> prefix_tags_;
  std::unordered_set<ProcessId> untagged_prefixes_;
  std::set<std::string> opaque_parameters_;
};

}  // namespace choreo::pepa
