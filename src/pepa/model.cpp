#include "pepa/model.hpp"

#include "util/error.hpp"

namespace choreo::pepa {

void Model::add_parameter(std::string name, double value) {
  for (auto& [existing, existing_value] : parameters_) {
    if (existing == name) {
      throw util::ModelError(util::msg("rate parameter '", name,
                                       "' is defined twice"));
    }
  }
  parameters_.emplace_back(std::move(name), value);
}

double Model::parameter(std::string_view name) const {
  for (const auto& [existing, value] : parameters_) {
    if (existing == name) return value;
  }
  throw util::ModelError(util::msg("unknown rate parameter '", name, "'"));
}

bool Model::has_parameter(std::string_view name) const {
  for (const auto& [existing, value] : parameters_) {
    if (existing == name) return true;
  }
  return false;
}

void Model::add_definition(ConstantId constant) {
  definitions_.push_back(constant);
}

ProcessId Model::system() {
  if (system_ != kInvalidProcess) return system_;
  if (definitions_.empty()) {
    throw util::ModelError("model has no definitions and no system equation");
  }
  return arena_.constant(definitions_.back());
}

ProcessId Model::term(std::string_view name) {
  auto constant = arena_.find_constant(name);
  if (!constant || !arena_.is_defined(*constant)) {
    throw util::ModelError(util::msg("no definition named '", name, "'"));
  }
  return arena_.constant(*constant);
}

void Model::check_definitions() const {
  for (ConstantId id = 0; id < arena_.constant_count(); ++id) {
    if (!arena_.is_defined(id)) {
      throw util::ModelError(util::msg("constant '", arena_.constant_name(id),
                                       "' is used but never defined"));
    }
  }
}

}  // namespace choreo::pepa
