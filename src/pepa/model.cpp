#include "pepa/model.hpp"

#include "util/error.hpp"

namespace choreo::pepa {

void Model::add_parameter(std::string name, double value) {
  for (auto& [existing, existing_value] : parameters_) {
    if (existing == name) {
      throw util::ModelError(util::msg("rate parameter '", name,
                                       "' is defined twice"));
    }
  }
  parameters_.emplace_back(std::move(name), value);
}

double Model::parameter(std::string_view name) const {
  for (const auto& [existing, value] : parameters_) {
    if (existing == name) return value;
  }
  throw util::ModelError(util::msg("unknown rate parameter '", name, "'"));
}

bool Model::has_parameter(std::string_view name) const {
  for (const auto& [existing, value] : parameters_) {
    if (existing == name) return true;
  }
  return false;
}

void Model::add_definition(ConstantId constant) {
  definitions_.push_back(constant);
}

ProcessId Model::system() {
  if (system_ != kInvalidProcess) return system_;
  if (definitions_.empty()) {
    throw util::ModelError("model has no definitions and no system equation");
  }
  return arena_.constant(definitions_.back());
}

ProcessId Model::term(std::string_view name) {
  auto constant = arena_.find_constant(name);
  if (!constant || !arena_.is_defined(*constant)) {
    throw util::ModelError(util::msg("no definition named '", name, "'"));
  }
  return arena_.constant(*constant);
}

void Model::note_prefix_rate(ProcessId prefix, std::optional<PrefixRateTag> tag) {
  if (!tag) {
    untagged_prefixes_.insert(prefix);
    auto it = prefix_tags_.find(prefix);
    if (it != prefix_tags_.end()) {
      mark_parameter_opaque(it->second.parameter);
      prefix_tags_.erase(it);
    }
    return;
  }
  if (untagged_prefixes_.count(prefix) != 0) {
    // An occurrence of this interned prefix was written without a clean
    // parameter reference; rebinding the parameter would silently change
    // that occurrence too, so refuse to tag it.
    mark_parameter_opaque(tag->parameter);
    return;
  }
  auto [it, inserted] = prefix_tags_.emplace(prefix, *tag);
  if (!inserted && (it->second.parameter != tag->parameter ||
                    it->second.scale != tag->scale)) {
    mark_parameter_opaque(it->second.parameter);
    mark_parameter_opaque(tag->parameter);
    prefix_tags_.erase(it);
    untagged_prefixes_.insert(prefix);
  }
}

void Model::mark_parameter_opaque(std::string name) {
  opaque_parameters_.insert(std::move(name));
}

void Model::check_definitions() const {
  for (ConstantId id = 0; id < arena_.constant_count(); ++id) {
    if (!arena_.is_defined(id)) {
      throw util::ModelError(util::msg("constant '", arena_.constant_name(id),
                                       "' is used but never defined"));
    }
  }
}

}  // namespace choreo::pepa
