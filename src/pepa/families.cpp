#include "pepa/families.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/error.hpp"

namespace choreo::pepa {

namespace {

/// Balanced fold of `count` copies of `component` over the empty set.  The
/// balanced shape keeps the term depth logarithmic in the population (a
/// left-deep fold of 10^6 replicas would overflow every recursive term
/// walk), and hash-consing collapses the identical per-level subtrees.
/// Memoising on the replica count makes the fold itself O(log count): the
/// two halves at each level differ by at most one, so only O(log count)
/// distinct counts ever occur.
ProcessId replicate_impl(ProcessArena& arena, ProcessId component,
                         std::size_t count,
                         std::unordered_map<std::size_t, ProcessId>& memo) {
  if (count == 1) return component;
  const auto it = memo.find(count);
  if (it != memo.end()) return it->second;
  const std::size_t half = count / 2;
  const ProcessId result =
      arena.cooperation(replicate_impl(arena, component, count - half, memo),
                        {}, replicate_impl(arena, component, half, memo));
  memo.emplace(count, result);
  return result;
}

ProcessId replicate(ProcessArena& arena, ProcessId component,
                    std::size_t count) {
  CHOREO_ASSERT(count > 0);
  std::unordered_map<std::size_t, ProcessId> memo;
  return replicate_impl(arena, component, count, memo);
}

}  // namespace

Model client_server(std::size_t clients, const ClientServerParams& params) {
  if (clients == 0 || params.servers == 0) {
    throw util::ModelError("client_server requires at least one client and server");
  }
  Model model;
  ProcessArena& arena = model.arena();
  model.add_parameter("request_rate", params.request_rate);
  model.add_parameter("response_rate", params.response_rate);

  const ActionId request = arena.action("request");
  const ActionId response = arena.action("response");

  const ConstantId client = arena.declare("Client");
  const ConstantId client_waiting = arena.declare("ClientWaiting");
  const ConstantId server = arena.declare("Server");
  const ConstantId server_busy = arena.declare("ServerBusy");

  arena.define(client, arena.prefix(request, Rate::active(params.request_rate),
                                    arena.constant(client_waiting)));
  arena.define(client_waiting,
               arena.prefix(response, Rate::passive(), arena.constant(client)));
  arena.define(server, arena.prefix(request, Rate::passive(),
                                    arena.constant(server_busy)));
  arena.define(server_busy,
               arena.prefix(response, Rate::active(params.response_rate),
                            arena.constant(server)));
  model.add_definition(client);
  model.add_definition(client_waiting);
  model.add_definition(server);
  model.add_definition(server_busy);

  model.set_system(arena.cooperation(
      replicate(arena, arena.constant(client), clients), {request, response},
      replicate(arena, arena.constant(server), params.servers)));
  return model;
}

Model pda_handover(std::size_t pdas, const PdaHandoverParams& params) {
  if (pdas == 0 || params.transmitters == 0) {
    throw util::ModelError(
        "pda_handover requires at least one PDA and transmitter");
  }
  Model model;
  ProcessArena& arena = model.arena();
  model.add_parameter("detect_rate", params.detect_rate);
  model.add_parameter("handover_rate", params.handover_rate);
  model.add_parameter("reset_rate", params.reset_rate);

  const ActionId detect = arena.action("detect");
  const ActionId handover = arena.action("handover");
  const ActionId reset = arena.action("reset");

  const ConstantId pda = arena.declare("Pda");
  const ConstantId pda_searching = arena.declare("PdaSearching");
  const ConstantId transmitter = arena.declare("Transmitter");
  const ConstantId cooldown = arena.declare("TransmitterCooldown");

  arena.define(pda, arena.prefix(detect, Rate::active(params.detect_rate),
                                 arena.constant(pda_searching)));
  arena.define(pda_searching,
               arena.prefix(handover, Rate::passive(), arena.constant(pda)));
  arena.define(transmitter,
               arena.prefix(handover, Rate::active(params.handover_rate),
                            arena.constant(cooldown)));
  arena.define(cooldown, arena.prefix(reset, Rate::active(params.reset_rate),
                                      arena.constant(transmitter)));
  model.add_definition(pda);
  model.add_definition(pda_searching);
  model.add_definition(transmitter);
  model.add_definition(cooldown);

  model.set_system(arena.cooperation(
      replicate(arena, arena.constant(pda), pdas), {handover},
      replicate(arena, arena.constant(transmitter), params.transmitters)));
  return model;
}

Model ring(std::size_t stations, const RingParams& params) {
  if (stations == 0) {
    throw util::ModelError("ring requires at least one station");
  }
  Model model;
  ProcessArena& arena = model.arena();
  model.add_parameter("on_rate", params.on_rate);
  model.add_parameter("off_rate", params.off_rate);

  // The hub passively enables station 1 and never changes state.
  const ActionId first_on = arena.action("on_1");
  const ConstantId hub = arena.declare("Hub");
  arena.define(hub,
               arena.prefix(first_on, Rate::passive(), arena.constant(hub)));
  model.add_definition(hub);

  ProcessId system = arena.constant(hub);
  for (std::size_t i = 1; i <= stations; ++i) {
    const std::string suffix = std::to_string(i);
    const ActionId on = arena.action("on_" + suffix);
    const ActionId off = arena.action("off_" + suffix);
    const ConstantId station_off = arena.declare("Off_" + suffix);
    const ConstantId station_on = arena.declare("On_" + suffix);

    arena.define(station_off,
                 arena.prefix(on, Rate::active(params.on_rate),
                              arena.constant(station_on)));
    // While on: switch off freely, or passively enable the successor.
    ProcessId on_body = arena.prefix(off, Rate::active(params.off_rate),
                                     arena.constant(station_off));
    if (i < stations) {
      const ActionId next_on = arena.action("on_" + std::to_string(i + 1));
      on_body = arena.choice(
          on_body,
          arena.prefix(next_on, Rate::passive(), arena.constant(station_on)));
    }
    arena.define(station_on, on_body);
    model.add_definition(station_off);
    model.add_definition(station_on);

    system = arena.cooperation(system, {on}, arena.constant(station_off));
  }
  model.set_system(system);
  return model;
}

std::size_t client_server_states(std::size_t clients, std::size_t servers) {
  // C(clients + servers, clients), multiplied/divided incrementally so the
  // intermediate product stays exact: after each step the accumulator is
  // C(clients + i, i), always an integer.
  std::size_t count = 1;
  for (std::size_t i = 1; i <= servers; ++i) {
    count = count * (clients + i) / i;
  }
  return count;
}

std::size_t pda_handover_states(std::size_t pdas, std::size_t transmitters) {
  return std::size_t{1} << (pdas + transmitters);
}

std::size_t ring_states(std::size_t stations) {
  return std::size_t{1} << stations;
}

std::size_t client_server_quotient_states(std::size_t clients,
                                          std::size_t servers) {
  return std::min(clients, servers) + 1;
}

std::size_t pda_handover_quotient_states(std::size_t pdas,
                                         std::size_t transmitters) {
  return (pdas + 1) * (transmitters + 1);
}

}  // namespace choreo::pepa
