// Strong-equivalence aggregation of derived PEPA state spaces (a thin
// adapter over ctmc::compute_labelled_lumping).
//
// The quotient preserves every per-action throughput, so Choreographer's
// reflected measures can be computed on the aggregated chain.  The
// PEPA-net counterpart lives in pepanet/netaggregate.hpp.
#pragma once

#include "ctmc/labelled_lumping.hpp"
#include "pepa/statespace.hpp"

namespace choreo::pepa {

/// Coarsest strong-equivalence aggregation of a derived state space.
ctmc::LabelledLumping aggregate(const StateSpace& space);

}  // namespace choreo::pepa
