// The PEPA rate algebra.
//
// Every activity carries either an active rate (a positive real, the
// parameter of an exponential delay) or a passive rate: the distinguished
// symbol "T" (unbounded capacity), optionally weighted, written n*infty.
// Passive activities can only proceed in cooperation with an active partner.
//
// The extended arithmetic follows Hillston's definition:
//   n*T + m*T = (n+m)*T          min(n*T, m*T) = min(n,m)*T
//   min(r, n*T) = r              r / and * as usual within a kind
// Adding an active rate to a passive one (a component offering the same
// action type both actively and passively) is ill-formed in PEPA and is
// reported as a model error.
#pragma once

#include <string>

namespace choreo::pepa {

class Rate {
 public:
  /// Active rate; must be positive and finite.
  static Rate active(double value);
  /// Passive rate with the given weight (default weight 1).
  static Rate passive(double weight = 1.0);

  Rate() : value_(0.0), passive_(false) {}  // "no capacity" placeholder

  bool is_active() const noexcept { return !passive_; }
  bool is_passive() const noexcept { return passive_; }
  /// The numeric rate (active) or weight (passive).
  double value() const noexcept { return value_; }
  bool is_zero() const noexcept { return value_ == 0.0; }

  /// Apparent-rate addition (same-kind only; throws util::ModelError when
  /// mixing active and passive).  `context` names the action for messages.
  Rate plus(const Rate& other, const std::string& context = "") const;

  /// min under the T-extended ordering: every active rate is below every
  /// passive one.
  static Rate min(const Rate& a, const Rate& b);

  bool operator==(const Rate& other) const noexcept {
    return passive_ == other.passive_ && value_ == other.value_;
  }

  /// "1.5", "infty", "2*infty".
  std::string to_string() const;

 private:
  Rate(double value, bool passive) : value_(value), passive_(passive) {}

  double value_;
  bool passive_;
};

/// The PEPA cooperation rate for one shared-activity pair:
///
///   R = (r1 / ra1) * (r2 / ra2) * min(ra1, ra2)
///
/// where r1, r2 are the rates of the two participating activities and
/// ra1, ra2 the apparent rates of the action in each cooperand.  The result
/// is passive iff both sides are passive.
Rate cooperation_rate(const Rate& r1, const Rate& apparent1, const Rate& r2,
                      const Rate& apparent2, const std::string& context = "");

}  // namespace choreo::pepa
