#include "pepa/measures.hpp"

#include <map>

#include "util/error.hpp"

namespace choreo::pepa {

double action_throughput(const StateSpace& space,
                         std::span<const double> distribution, ActionId action) {
  CHOREO_ASSERT(distribution.size() == space.state_count());
  double sum = 0.0;
  for (const StateTransition& t : space.transitions()) {
    if (t.action == action) sum += distribution[t.source] * t.rate;
  }
  return sum;
}

std::vector<std::pair<ActionId, double>> all_throughputs(
    const StateSpace& space, std::span<const double> distribution,
    const ProcessArena& arena) {
  (void)arena;
  std::map<ActionId, double> sums;
  for (const StateTransition& t : space.transitions()) {
    sums[t.action] += distribution[t.source] * t.rate;
  }
  return {sums.begin(), sums.end()};
}

bool occupies(const ProcessArena& arena, ProcessId term, ConstantId constant) {
  const ProcessNode& node = arena.node(term);
  switch (node.op) {
    case Op::kConstant:
      return node.constant == constant;
    case Op::kCooperation:
      return occupies(arena, node.left, constant) ||
             occupies(arena, node.right, constant);
    case Op::kHiding:
      return occupies(arena, node.left, constant);
    default:
      return false;
  }
}

double state_probability(const StateSpace& space,
                         std::span<const double> distribution,
                         const ProcessArena& arena, ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.state_count());
  double sum = 0.0;
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    if (occupies(arena, space.state_term(s), constant)) sum += distribution[s];
  }
  return sum;
}

namespace {
std::size_t count_occurrences(const ProcessArena& arena, ProcessId term,
                              ConstantId constant) {
  const ProcessNode& node = arena.node(term);
  switch (node.op) {
    case Op::kConstant:
      return node.constant == constant ? 1 : 0;
    case Op::kCooperation:
      return count_occurrences(arena, node.left, constant) +
             count_occurrences(arena, node.right, constant);
    case Op::kHiding:
      return count_occurrences(arena, node.left, constant);
    default:
      return 0;
  }
}
}  // namespace

double mean_population(const StateSpace& space,
                       std::span<const double> distribution,
                       const ProcessArena& arena, ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.state_count());
  double sum = 0.0;
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    sum += distribution[s] *
           static_cast<double>(count_occurrences(arena, space.state_term(s), constant));
  }
  return sum;
}

}  // namespace choreo::pepa
