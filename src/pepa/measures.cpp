#include "pepa/measures.hpp"

#include "util/error.hpp"

namespace choreo::pepa {

double action_throughput(const StateSpace& space,
                         std::span<const double> distribution, ActionId action) {
  CHOREO_ASSERT(distribution.size() == space.state_count());
  // O(degree of the action) via the CSR action index; the slice keeps
  // emission order, so the sum is bit-identical to the former flat scan.
  return space.lts().action_throughput(distribution, action);
}

std::vector<std::pair<ActionId, double>> all_throughputs(
    const StateSpace& space, std::span<const double> distribution,
    const ProcessArena& arena) {
  (void)arena;
  std::vector<std::pair<ActionId, double>> out;
  const auto& lts = space.lts();
  for (std::size_t action = 0; action < lts.action_bound(); ++action) {
    if (lts.action_transitions(action).empty()) continue;
    out.emplace_back(static_cast<ActionId>(action),
                     lts.action_throughput(distribution, action));
  }
  return out;
}

bool occupies(const ProcessArena& arena, ProcessId term, ConstantId constant) {
  const ProcessNode& node = arena.node(term);
  switch (node.op) {
    case Op::kConstant:
      return node.constant == constant;
    case Op::kCooperation:
      return occupies(arena, node.left, constant) ||
             occupies(arena, node.right, constant);
    case Op::kHiding:
      return occupies(arena, node.left, constant);
    default:
      return false;
  }
}

double state_probability(const StateSpace& space,
                         std::span<const double> distribution,
                         const ProcessArena& arena, ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.state_count());
  double sum = 0.0;
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    if (occupies(arena, space.state_term(s), constant)) sum += distribution[s];
  }
  return sum;
}

namespace {
std::size_t count_occurrences(const ProcessArena& arena, ProcessId term,
                              ConstantId constant) {
  const ProcessNode& node = arena.node(term);
  switch (node.op) {
    case Op::kConstant:
      return node.constant == constant ? 1 : 0;
    case Op::kCooperation:
      return count_occurrences(arena, node.left, constant) +
             count_occurrences(arena, node.right, constant);
    case Op::kHiding:
      return count_occurrences(arena, node.left, constant);
    default:
      return 0;
  }
}
}  // namespace

double mean_population(const StateSpace& space,
                       std::span<const double> distribution,
                       const ProcessArena& arena, ConstantId constant) {
  CHOREO_ASSERT(distribution.size() == space.state_count());
  double sum = 0.0;
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    sum += distribution[s] *
           static_cast<double>(count_occurrences(arena, space.state_term(s), constant));
  }
  return sum;
}

}  // namespace choreo::pepa
