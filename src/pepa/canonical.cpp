#include "pepa/canonical.hpp"

#include <algorithm>
#include <vector>

namespace choreo::pepa {

namespace {

int compare_sets(const std::vector<ActionId>& a,
                 const std::vector<ActionId>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int compare_rates(const Rate& a, const Rate& b) {
  if (a.is_passive() != b.is_passive()) return a.is_passive() ? 1 : -1;
  if (a.value() != b.value()) return a.value() < b.value() ? -1 : 1;
  return 0;
}

}  // namespace

int structural_compare(const ProcessArena& arena, ProcessId a, ProcessId b) {
  // Hash-consing: identical ids are identical terms — and large equal
  // subtrees always share an id within one arena, so this short-circuit is
  // what keeps sibling sorting cheap on replicated populations.
  if (a == b) return 0;
  const ProcessNode& na = arena.node(a);
  const ProcessNode& nb = arena.node(b);
  if (na.op != nb.op) {
    return static_cast<int>(na.op) < static_cast<int>(nb.op) ? -1 : 1;
  }
  switch (na.op) {
    case Op::kStop:
      return 0;
    case Op::kConstant:
      if (na.constant != nb.constant) {
        return na.constant < nb.constant ? -1 : 1;
      }
      return 0;
    case Op::kPrefix: {
      if (na.action != nb.action) return na.action < nb.action ? -1 : 1;
      if (const int rates = compare_rates(na.rate, nb.rate); rates != 0) {
        return rates;
      }
      return structural_compare(arena, na.left, nb.left);
    }
    case Op::kChoice: {
      if (const int left = structural_compare(arena, na.left, nb.left);
          left != 0) {
        return left;
      }
      return structural_compare(arena, na.right, nb.right);
    }
    case Op::kCooperation: {
      if (const int sets = compare_sets(na.action_set, nb.action_set);
          sets != 0) {
        return sets;
      }
      if (const int left = structural_compare(arena, na.left, nb.left);
          left != 0) {
        return left;
      }
      return structural_compare(arena, na.right, nb.right);
    }
    case Op::kHiding: {
      if (const int sets = compare_sets(na.action_set, nb.action_set);
          sets != 0) {
        return sets;
      }
      return structural_compare(arena, na.left, nb.left);
    }
  }
  return 0;
}

namespace {

/// Rebuilds a sorted sibling run as the balanced fold `families.cpp` uses
/// (ceil on the left), so canonical terms keep logarithmic depth and the
/// canonical form of an already-canonical population is itself.
ProcessId rebuild_balanced(ProcessArena& arena,
                           const std::vector<ProcessId>& siblings,
                           std::size_t begin, std::size_t count,
                           const std::vector<ActionId>& set) {
  if (count == 1) return siblings[begin];
  const std::size_t half = count / 2;
  return arena.cooperation(
      rebuild_balanced(arena, siblings, begin, count - half, set), set,
      rebuild_balanced(arena, siblings, begin + count - half, half, set));
}

}  // namespace

ProcessId Canonicalizer::canonical(ProcessId term) {
  if (term == kInvalidProcess) return term;
  if (const ProcessId* hit = memo_.find(term)) return *hit;
  const ProcessNode& node = arena_.node(term);
  ProcessId result = term;
  switch (node.op) {
    case Op::kCooperation: {
      // Flatten the maximal spine of cooperations sharing this exact action
      // set (commutative and associative up to strong equivalence only
      // within one set), canonicalize and sort the siblings, and rebuild
      // balanced.  The flatten is iterative: a textual population can be a
      // left-deep fold far deeper than the stack allows.
      std::vector<ProcessId> siblings;
      std::vector<ProcessId> pending{term};
      while (!pending.empty()) {
        const ProcessId current = pending.back();
        pending.pop_back();
        const ProcessNode& n = arena_.node(current);
        if (n.op == Op::kCooperation && n.action_set == node.action_set) {
          pending.push_back(n.right);
          pending.push_back(n.left);
        } else {
          siblings.push_back(canonical(current));
        }
      }
      std::sort(siblings.begin(), siblings.end(),
                [this](ProcessId x, ProcessId y) {
                  return structural_less(arena_, x, y);
                });
      result = rebuild_balanced(arena_, siblings, 0, siblings.size(),
                                node.action_set);
      break;
    }
    case Op::kHiding: {
      const ProcessId sub = canonical(node.left);
      if (sub != node.left) {
        result = arena_.hiding(sub, node.action_set);
      }
      break;
    }
    default:
      // Sequential terms (prefix/choice/constant/stop) have no reorderable
      // composition below them in well-formed PEPA: identity.
      break;
  }
  memo_.try_emplace(term, result);
  return result;
}

}  // namespace choreo::pepa
