// State-space derivation: breadth-first exploration of the derivation graph
// of a PEPA term, yielding the labelled transition system from which the
// CTMC generator matrix is assembled.
//
// The exploration loop itself lives in explore::run (src/explore/engine.hpp)
// — the level-synchronous multi-lane BFS shared with PEPA-net marking-graph
// derivation.  State ids, transition order and every downstream artifact
// (generator matrix, annotated XMI, DOT dumps, cache keys) are byte-identical
// for every lane count — including errors, which are raised for the first
// offending state in canonical order.
//
// Transitions are held in a CSR-indexed explore::TransitionSystem: the
// generator builds straight off the payload array, per-action measures are
// O(degree) slice lookups, and deadlock detection reads the row index.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ctmc/generator.hpp"
#include "explore/engine.hpp"
#include "explore/transition_system.hpp"
#include "pepa/semantics.hpp"
#include "util/budget.hpp"
#include "util/striped_map.hpp"
#include "util/thread_pool.hpp"

namespace choreo::pepa {

struct DeriveOptions {
  /// Exploration aborts (util::BudgetError) beyond this many states; the
  /// paper's Section 1.1 names state-space explosion as the known hazard of
  /// the numerical approach.
  std::size_t max_states = 4'000'000;
  /// When false, passive transitions at the top level (unsynchronised
  /// passive activities) raise util::ModelError instead of being dropped.
  bool allow_top_level_passive = false;
  /// Exploration lanes per breadth-first level: 1 forces the sequential
  /// path, 0 sizes to the pool (worker count + the calling thread).  The
  /// derived space is identical for every setting.
  std::size_t threads = 0;
  /// States per work-stealing expansion chunk; 0 sizes automatically from
  /// the frontier and lane count.  A pure throughput knob — the derived
  /// space is identical for every setting.
  std::size_t chunk_grain = 0;
  /// Pool expansion chunks run on; nullptr means util::ThreadPool::shared().
  util::ThreadPool* pool = nullptr;
  /// Resource governor: cancellation, deadline and state/byte accounting.
  /// Checked once per breadth-first level (deterministic; an interrupted
  /// derivation stops within one frontier level of the request) and charged
  /// with every discovered state.  nullptr disables governance.
  util::Budget* budget = nullptr;
  /// Derive the strong-equivalence quotient directly: every successor is
  /// rewritten to its sort-canonical representative (replicated siblings of
  /// same-set cooperation spines reordered, see pepa/canonical.hpp) before
  /// interning, so permutation-equivalent states collapse at discovery time
  /// and the explored space — and therefore max_states, the budget's
  /// state/byte accounting and peak memory — is the quotient, not the full
  /// interleaved chain.  Throughputs and the presence/count measures
  /// (state_probability, mean_population) are permutation-invariant and
  /// stay exact; the state terms exposed by state_term() are canonical
  /// representatives.  The quotient is byte-identical at every lane count,
  /// like the full space.
  bool aggregate = false;
};

/// Counters describing one derivation run, for perf reports and the
/// service's exploration metrics (shared with the PEPA-net derivation).
using DeriveStats = explore::DeriveStats;

/// One transition of the explored labelled transition system.
struct StateTransition {
  std::size_t source;
  std::size_t target;
  ActionId action;
  double rate;
};

class StateSpace {
 public:
  /// Explores from `initial`.  State 0 is the initial state.
  static StateSpace derive(Semantics& semantics, ProcessId initial,
                           const DeriveOptions& options = {});

  std::size_t state_count() const noexcept { return states_.size(); }
  ProcessId state_term(std::size_t index) const { return states_[index]; }
  std::optional<std::size_t> index_of(ProcessId term) const;

  /// The CSR-indexed labelled transition system.
  const explore::TransitionSystem<StateTransition>& lts() const noexcept {
    return lts_;
  }

  /// The flat transition payload, in canonical emission order.
  const std::vector<StateTransition>& transitions() const noexcept {
    return lts_.transitions();
  }

  /// Counters from the derivation that produced this space.
  const DeriveStats& stats() const noexcept { return stats_; }

  /// True when this space was derived quotient-direct (DeriveOptions::
  /// aggregate): states are canonical representatives of strong-equivalence
  /// blocks, not raw interleavings.
  bool aggregated() const noexcept { return aggregated_; }

  /// The CTMC generator (parallel transitions summed), built directly from
  /// the transition-system payload without an intermediate copy.
  ctmc::Generator generator() const;

  /// The transitions carrying `action`, as CTMC rated transitions — the
  /// input to ctmc::throughput.  O(degree of the action) via the action
  /// index, not a scan of the full transition vector.
  std::vector<ctmc::RatedTransition> transitions_of(ActionId action) const;

  /// States enabling no activity at all (empty rows of the CSR index).
  std::vector<std::size_t> deadlock_states() const;

 private:
  std::vector<ProcessId> states_;
  /// Sharded so concurrent expansion workers can pre-resolve transition
  /// targets against earlier levels while the serial renumbering pass owns
  /// the writes.
  util::StripedMap<ProcessId, std::size_t> index_;
  explore::TransitionSystem<StateTransition> lts_;
  DeriveStats stats_;
  bool aggregated_ = false;
};

}  // namespace choreo::pepa
