// State-space derivation: breadth-first exploration of the derivation graph
// of a PEPA term, yielding the labelled transition system from which the
// CTMC generator matrix is assembled.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ctmc/generator.hpp"
#include "pepa/semantics.hpp"

namespace choreo::pepa {

struct DeriveOptions {
  /// Exploration aborts (util::ModelError) beyond this many states; the
  /// paper's Section 1.1 names state-space explosion as the known hazard of
  /// the numerical approach.
  std::size_t max_states = 4'000'000;
  /// When false, passive transitions at the top level (unsynchronised
  /// passive activities) raise util::ModelError instead of being dropped.
  bool allow_top_level_passive = false;
};

/// One transition of the explored labelled transition system.
struct StateTransition {
  std::size_t source;
  std::size_t target;
  ActionId action;
  double rate;
};

class StateSpace {
 public:
  /// Explores from `initial`.  State 0 is the initial state.
  static StateSpace derive(Semantics& semantics, ProcessId initial,
                           const DeriveOptions& options = {});

  std::size_t state_count() const noexcept { return states_.size(); }
  ProcessId state_term(std::size_t index) const { return states_[index]; }
  std::optional<std::size_t> index_of(ProcessId term) const;

  const std::vector<StateTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// The CTMC generator (parallel transitions summed).
  ctmc::Generator generator() const;

  /// The transitions carrying `action`, as CTMC rated transitions — the
  /// input to ctmc::throughput.
  std::vector<ctmc::RatedTransition> transitions_of(ActionId action) const;

  /// States enabling no activity at all.
  std::vector<std::size_t> deadlock_states() const;

 private:
  std::vector<ProcessId> states_;
  std::unordered_map<ProcessId, std::size_t> index_;
  std::vector<StateTransition> transitions_;
};

}  // namespace choreo::pepa
