#include "pepa/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::pepa {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kSymbol,  // one of ( ) . , + - * / = ; < > { } | @
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t line = 1;
  std::size_t column = 1;
};

class Lexer {
 public:
  Lexer(std::string_view source, std::string source_name)
      : source_(source), source_name_(std::move(source_name)) {
    tokenise();
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = std::min(cursor_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& next() {
    const Token& token = tokens_[cursor_];
    if (cursor_ + 1 < tokens_.size()) ++cursor_;
    return token;
  }
  std::size_t position() const noexcept { return cursor_; }
  void rewind(std::size_t position) { cursor_ = position; }

  [[noreturn]] void fail(const Token& at, const std::string& message) const {
    throw util::ParseError(source_name_, at.line, at.column, message);
  }

 private:
  void tokenise() {
    std::size_t line = 1, column = 1;
    std::size_t i = 0;
    auto advance = [&](std::size_t count = 1) {
      for (std::size_t k = 0; k < count; ++k) {
        if (source_[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
        ++i;
      }
    };
    while (i < source_.size()) {
      const char c = source_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '/' && i + 1 < source_.size() && source_[i + 1] == '/') {
        while (i < source_.size() && source_[i] != '\n') advance();
        continue;
      }
      if (c == '%' || c == '#') {  // workbench-style line comments
        while (i < source_.size() && source_[i] != '\n') advance();
        continue;
      }
      if (c == '/' && i + 1 < source_.size() && source_[i + 1] == '*') {
        advance(2);
        while (i + 1 < source_.size() &&
               !(source_[i] == '*' && source_[i + 1] == '/')) {
          advance();
        }
        if (i + 1 >= source_.size()) {
          throw util::ParseError(source_name_, line, column,
                                 "unterminated block comment");
        }
        advance(2);
        continue;
      }
      Token token;
      token.line = line;
      token.column = column;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t begin = i;
        while (i < source_.size() &&
               (std::isalnum(static_cast<unsigned char>(source_[i])) ||
                source_[i] == '_')) {
          advance();
        }
        token.kind = TokenKind::kIdentifier;
        token.text = std::string(source_.substr(begin, i - begin));
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t begin = i;
        while (i < source_.size() &&
               (std::isdigit(static_cast<unsigned char>(source_[i])) ||
                source_[i] == '.' || source_[i] == 'e' || source_[i] == 'E' ||
                ((source_[i] == '+' || source_[i] == '-') && i > begin &&
                 (source_[i - 1] == 'e' || source_[i - 1] == 'E')))) {
          advance();
        }
        token.kind = TokenKind::kNumber;
        token.text = std::string(source_.substr(begin, i - begin));
        try {
          token.number = std::stod(token.text);
        } catch (const std::exception&) {
          throw util::ParseError(source_name_, token.line, token.column,
                                 util::msg("malformed number '", token.text, "'"));
        }
      } else if (std::string_view("().,+-*/=;<>{}[]|@").find(c) !=
                 std::string_view::npos) {
        token.kind = TokenKind::kSymbol;
        token.text = std::string(1, c);
        advance();
      } else {
        throw util::ParseError(source_name_, line, column,
                               util::msg("unexpected character '", c, "'"));
      }
      tokens_.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line;
    end.column = column;
    tokens_.push_back(std::move(end));
  }

  std::string_view source_;
  std::string source_name_;
  std::vector<Token> tokens_;
  std::size_t cursor_ = 0;
};

/// A value in a rate expression: a number or a (weighted) passive rate.
/// Provenance survives evaluation when the expression is a single parameter
/// reference scaled by literals (value == scale * parameter): `param` holds
/// the name and `scale` the literal factor.  `used` lists every parameter
/// the expression referenced, so compound uses can be marked opaque.
struct RateValue {
  double value = 0.0;
  bool passive = false;
  std::string param;
  double scale = 1.0;
  std::vector<std::string> used;
};

/// Merges provenance after an operation that destroys the scaled-parameter
/// shape (addition, parameter-by-parameter products, ...).
void merge_used(RateValue& left, const RateValue& right) {
  left.param.clear();
  left.scale = 1.0;
  left.used.insert(left.used.end(), right.used.begin(), right.used.end());
}

class Parser {
 public:
  Parser(std::string_view source, std::string source_name)
      : lexer_(source, std::move(source_name)) {}

  Model run() {
    while (lexer_.peek().kind != TokenKind::kEnd) {
      if (is_symbol(lexer_.peek(), "@")) {
        parse_directive();
      } else {
        parse_definition();
      }
    }
    model_.check_definitions();
    return std::move(model_);
  }

 private:
  static bool is_symbol(const Token& token, std::string_view text) {
    return token.kind == TokenKind::kSymbol && token.text == text;
  }
  static bool is_identifier(const Token& token, std::string_view text) {
    return token.kind == TokenKind::kIdentifier && token.text == text;
  }
  static bool is_passive_keyword(const Token& token) {
    return is_identifier(token, "infty") || is_identifier(token, "T");
  }

  void expect_symbol(std::string_view text) {
    const Token& token = lexer_.next();
    if (!is_symbol(token, text)) {
      lexer_.fail(token, util::msg("expected '", text, "', found '",
                                   token.kind == TokenKind::kEnd ? "end of input"
                                                                 : token.text,
                                   "'"));
    }
  }

  std::string expect_identifier(const char* what) {
    const Token& token = lexer_.next();
    if (token.kind != TokenKind::kIdentifier) {
      lexer_.fail(token, util::msg("expected ", what));
    }
    return token.text;
  }

  void parse_directive() {
    expect_symbol("@");
    const std::string directive = expect_identifier("a directive name");
    if (directive == "system") {
      const Token& name_token = lexer_.peek();
      const std::string name = expect_identifier("a process name");
      expect_symbol(";");
      auto constant = model_.arena().find_constant(name);
      if (!constant) {
        lexer_.fail(name_token, util::msg("@system names unknown process '",
                                          name, "'"));
      }
      model_.set_system(model_.arena().constant(*constant));
    } else {
      lexer_.fail(lexer_.peek(), util::msg("unknown directive '@", directive, "'"));
    }
  }

  void parse_definition() {
    const Token& name_token = lexer_.peek();
    const std::string name = expect_identifier("a definition name");
    if (name == "Stop" || is_passive_keyword(name_token)) {
      lexer_.fail(name_token, util::msg("'", name, "' is a reserved word"));
    }
    expect_symbol("=");

    // Try a parameter definition first: a pure numeric expression over
    // known parameters, terminated by ';'.
    const std::size_t rewind_point = lexer_.position();
    try {
      const RateValue value = parse_rate_expression(/*allow_passive=*/false);
      if (is_symbol(lexer_.peek(), ";")) {
        lexer_.next();
        model_.add_parameter(name, value.value);
        // A derived parameter (r2 = 2 * r) is evaluated here once; sweeping
        // its inputs later would not update it, so they become opaque.
        for (const std::string& used : value.used) {
          model_.mark_parameter_opaque(used);
        }
        return;
      }
    } catch (const util::Error&) {
      // fall through to process definition
    }
    lexer_.rewind(rewind_point);

    const ProcessId body = parse_cooperation();
    expect_symbol(";");
    const ConstantId constant = model_.arena().declare(name);
    model_.arena().define(constant, body);  // throws on redefinition
    model_.add_definition(constant);
  }

  // --- process expressions ----------------------------------------------

  ProcessId parse_cooperation() {
    ProcessId left = parse_choice();
    while (true) {
      if (is_symbol(lexer_.peek(), "<")) {
        lexer_.next();
        std::vector<ActionId> set = parse_action_list(">");
        const ProcessId right = parse_choice();
        left = model_.arena().cooperation(left, std::move(set), right);
      } else if (is_symbol(lexer_.peek(), "|") &&
                 is_symbol(lexer_.peek(1), "|")) {
        lexer_.next();
        lexer_.next();
        const ProcessId right = parse_choice();
        left = model_.arena().cooperation(left, {}, right);
      } else {
        return left;
      }
    }
  }

  ProcessId parse_choice() {
    ProcessId left = parse_prefix();
    while (is_symbol(lexer_.peek(), "+")) {
      lexer_.next();
      const ProcessId right = parse_prefix();
      left = model_.arena().choice(left, right);
    }
    return left;
  }

  ProcessId parse_prefix() {
    // An activity starts "(ident ,"; anything else parenthesised is a
    // nested process expression.
    if (is_symbol(lexer_.peek(), "(") &&
        lexer_.peek(1).kind == TokenKind::kIdentifier &&
        is_symbol(lexer_.peek(2), ",") && !is_passive_keyword(lexer_.peek(1))) {
      lexer_.next();  // (
      const std::string action_name = expect_identifier("an action name");
      expect_symbol(",");
      const RateValue rate = parse_rate_expression(/*allow_passive=*/true);
      expect_symbol(")");
      expect_symbol(".");
      const ProcessId continuation = parse_prefix();
      const ActionId action = model_.arena().action(action_name);
      const Rate bound =
          rate.passive ? Rate::passive(rate.value) : Rate::active(rate.value);
      const ProcessId prefix = model_.arena().prefix(action, bound, continuation);
      if (!rate.param.empty()) {
        model_.note_prefix_rate(prefix,
                                PrefixRateTag{rate.param, rate.scale});
      } else {
        model_.note_prefix_rate(prefix, std::nullopt);
        // Parameters consumed by a compound expression cannot be rebound
        // through a tag; the whole expression would need re-evaluation.
        for (const std::string& name : rate.used) {
          model_.mark_parameter_opaque(name);
        }
      }
      return prefix;
    }
    return parse_postfix();
  }

  ProcessId parse_postfix() {
    ProcessId process = parse_atom();
    while (true) {
      if (is_symbol(lexer_.peek(), "/") && is_symbol(lexer_.peek(1), "{")) {
        lexer_.next();  // /
        lexer_.next();  // {
        std::vector<ActionId> set = parse_action_list("}");
        process = model_.arena().hiding(process, std::move(set));
      } else if (is_symbol(lexer_.peek(), "[")) {
        // Replication array P[n]: n independent copies, P || P || ... || P.
        lexer_.next();
        const Token& count_token = lexer_.next();
        if (count_token.kind != TokenKind::kNumber ||
            count_token.number < 1.0 ||
            count_token.number != static_cast<double>(
                                      static_cast<long>(count_token.number))) {
          lexer_.fail(count_token,
                      "replication count must be a positive integer");
        }
        expect_symbol("]");
        const auto copies = static_cast<std::size_t>(count_token.number);
        ProcessId replicated = process;
        for (std::size_t i = 1; i < copies; ++i) {
          replicated = model_.arena().cooperation(replicated, {}, process);
        }
        process = replicated;
      } else {
        return process;
      }
    }
  }

  ProcessId parse_atom() {
    const Token& token = lexer_.peek();
    if (is_symbol(token, "(")) {
      lexer_.next();
      const ProcessId inner = parse_cooperation();
      expect_symbol(")");
      return inner;
    }
    if (token.kind == TokenKind::kIdentifier) {
      lexer_.next();
      if (token.text == "Stop") return model_.arena().stop();
      if (model_.has_parameter(token.text)) {
        lexer_.fail(token, util::msg("'", token.text,
                                     "' is a rate parameter, not a process"));
      }
      return model_.arena().constant(token.text);
    }
    lexer_.fail(token, util::msg("expected a process expression, found '",
                                 token.kind == TokenKind::kEnd ? "end of input"
                                                               : token.text,
                                 "'"));
  }

  std::vector<ActionId> parse_action_list(std::string_view terminator) {
    std::vector<ActionId> set;
    if (is_symbol(lexer_.peek(), terminator)) {  // empty set
      lexer_.next();
      return set;
    }
    while (true) {
      set.push_back(model_.arena().action(expect_identifier("an action name")));
      const Token& token = lexer_.next();
      if (is_symbol(token, terminator)) return set;
      if (!is_symbol(token, ",")) {
        lexer_.fail(token, util::msg("expected ',' or '", terminator,
                                     "' in action set"));
      }
    }
  }

  // --- rate expressions ---------------------------------------------------
  //
  // expr := term (('+'|'-') term)*        (numbers only)
  // term := factor (('*'|'/') factor)*    ('*' may combine number and infty)
  // factor := NUMBER | parameter | 'infty' | 'T' | '(' expr ')' | '-' factor

  RateValue parse_rate_expression(bool allow_passive) {
    RateValue left = parse_rate_term(allow_passive);
    while (is_symbol(lexer_.peek(), "+") || is_symbol(lexer_.peek(), "-")) {
      const std::string op = lexer_.next().text;
      const RateValue right = parse_rate_term(allow_passive);
      if (left.passive || right.passive) {
        lexer_.fail(lexer_.peek(),
                    "passive rates only support scaling by a weight");
      }
      left.value = op == "+" ? left.value + right.value : left.value - right.value;
      merge_used(left, right);
    }
    return left;
  }

  RateValue parse_rate_term(bool allow_passive) {
    RateValue left = parse_rate_factor(allow_passive);
    while (is_symbol(lexer_.peek(), "*") || is_symbol(lexer_.peek(), "/")) {
      const Token& op_token = lexer_.peek();
      const std::string op = lexer_.next().text;
      const RateValue right = parse_rate_factor(allow_passive);
      if (op == "*") {
        if (left.passive && right.passive) {
          lexer_.fail(op_token, "cannot multiply two passive rates");
        }
        if (!left.param.empty() && right.param.empty()) {
          left.scale *= right.value;  // (scale * p) * literal
          left.used.insert(left.used.end(), right.used.begin(),
                           right.used.end());
        } else if (left.param.empty() && !right.param.empty()) {
          left.param = right.param;  // literal * (scale * p)
          left.scale = left.value * right.scale;
          left.used.insert(left.used.end(), right.used.begin(),
                           right.used.end());
        } else {
          merge_used(left, right);  // p * q: no single-parameter shape
        }
        left.value *= right.value;
        left.passive = left.passive || right.passive;
      } else {
        if (right.passive) lexer_.fail(op_token, "cannot divide by a passive rate");
        if (!right.param.empty()) {
          merge_used(left, right);  // dividing by a parameter is opaque
        } else {
          if (!left.param.empty()) left.scale /= right.value;
          left.used.insert(left.used.end(), right.used.begin(),
                           right.used.end());
        }
        left.value /= right.value;
      }
    }
    return left;
  }

  RateValue parse_rate_factor(bool allow_passive) {
    const Token& token = lexer_.peek();
    if (token.kind == TokenKind::kNumber) {
      lexer_.next();
      RateValue value;
      value.value = token.number;
      return value;
    }
    if (is_passive_keyword(token)) {
      lexer_.next();
      if (!allow_passive) {
        lexer_.fail(token, "passive rate not allowed here");
      }
      RateValue value;
      value.value = 1.0;
      value.passive = true;
      return value;
    }
    if (token.kind == TokenKind::kIdentifier) {
      lexer_.next();
      if (!model_.has_parameter(token.text)) {
        lexer_.fail(token,
                    util::msg("unknown rate parameter '", token.text, "'"));
      }
      RateValue value;
      value.value = model_.parameter(token.text);
      value.param = token.text;
      value.used.push_back(token.text);
      return value;
    }
    if (is_symbol(token, "(")) {
      lexer_.next();
      const RateValue inner = parse_rate_expression(allow_passive);
      expect_symbol(")");
      return inner;
    }
    if (is_symbol(token, "-")) {
      lexer_.next();
      RateValue inner = parse_rate_factor(/*allow_passive=*/false);
      inner.value = -inner.value;
      inner.param.clear();  // a negated parameter is not a rebindable rate
      inner.scale = 1.0;
      return inner;
    }
    lexer_.fail(token, util::msg("expected a rate, found '",
                                 token.kind == TokenKind::kEnd ? "end of input"
                                                               : token.text,
                                 "'"));
  }

  Lexer lexer_;
  Model model_;
};

}  // namespace

Model parse_model(std::string_view source, std::string source_name) {
  return Parser(source, std::move(source_name)).run();
}

Model parse_model_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) throw util::Error(util::msg("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const std::string contents = buffer.str();
  return parse_model(contents, path);
}

}  // namespace choreo::pepa
