// Abstract syntax of PEPA, stored in a hash-consed arena.
//
// Process terms are the *states* of the derived CTMC, so structural
// equality tests and hashing must be cheap: the arena interns every node,
// making equality an integer comparison and enabling memoised semantics
// (apparent rates, one-step derivatives) keyed by node id.
//
// The arena is safe for concurrent interning and lookup: intern buckets are
// lock-striped by node hash, node storage is append-only with stable ids
// and lock-free reads (util::SegmentedVector), and the action/constant name
// tables publish through the same mechanism.  This is what lets parallel
// state-space exploration workers derive targets concurrently.  The
// single-threaded fast path is unchanged: looking up an existing node takes
// one uncontended stripe mutex and allocates nothing.
//
// The grammar (paper Figure 3, sequential/concurrent levels merged into one
// node type; well-formedness checks enforce the stratification):
//
//   P ::= (alpha, r).P   prefix
//       | P + P          choice
//       | P <L> P        cooperation over action set L
//       | P / L          hiding
//       | A              constant (named definition)
//       | Stop           the inert process (also used for empty net cells)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pepa/rate.hpp"
#include "util/segmented_vector.hpp"

namespace choreo::pepa {

using ProcessId = std::uint32_t;
using ActionId = std::uint32_t;
using ConstantId = std::uint32_t;

inline constexpr ProcessId kInvalidProcess = 0xFFFFFFFFu;
/// The silent action produced by hiding.
inline constexpr ActionId kTau = 0;

enum class Op : std::uint8_t {
  kStop,
  kPrefix,
  kChoice,
  kCooperation,
  kHiding,
  kConstant,
};

struct ProcessNode {
  Op op = Op::kStop;
  ActionId action = 0;                 ///< prefix only
  Rate rate;                           ///< prefix only
  ProcessId left = kInvalidProcess;    ///< prefix continuation / binary left
  ProcessId right = kInvalidProcess;   ///< binary right
  std::vector<ActionId> action_set;    ///< cooperation / hiding (sorted, unique)
  ConstantId constant = 0;             ///< constant only
};

class ProcessArena {
 public:
  ProcessArena();

  // --- action names -----------------------------------------------------
  /// Interns an action name; "tau" maps to kTau.
  ActionId action(std::string_view name);
  std::optional<ActionId> find_action(std::string_view name) const;
  const std::string& action_name(ActionId id) const;
  std::size_t action_count() const noexcept { return state_->action_names.size(); }

  // --- constants (named definitions) ------------------------------------
  /// Declares (or returns the existing) constant with this name.
  ConstantId declare(std::string_view name);
  std::optional<ConstantId> find_constant(std::string_view name) const;
  const std::string& constant_name(ConstantId id) const;
  bool is_defined(ConstantId id) const;
  /// Binds the body of a constant; rebinding is a model error.
  void define(ConstantId id, ProcessId body);
  /// Body of a defined constant; throws util::ModelError when undefined.
  ProcessId body(ConstantId id) const;
  std::size_t constant_count() const noexcept {
    return state_->constant_names.size();
  }

  // --- term constructors (hash-consed) -----------------------------------
  ProcessId stop();
  ProcessId prefix(ActionId action, Rate rate, ProcessId continuation);
  ProcessId choice(ProcessId left, ProcessId right);
  /// `set` is deduplicated and sorted; must not contain tau.
  ProcessId cooperation(ProcessId left, std::vector<ActionId> set, ProcessId right);
  ProcessId hiding(ProcessId process, std::vector<ActionId> set);
  ProcessId constant(ConstantId id);
  /// Convenience: constant by name (declares it when new).
  ProcessId constant(std::string_view name);

  const ProcessNode& node(ProcessId id) const;
  std::size_t node_count() const noexcept { return state_->nodes.size(); }

 private:
  /// Intern buckets are partitioned into this many stripes by node hash.
  static constexpr std::size_t kStripes = 64;

  struct Stripe {
    std::mutex mutex;
    /// hash -> interned ids with that hash (collision chain).
    std::unordered_map<std::size_t, std::vector<ProcessId>> buckets;
  };

  /// The concurrently-shared core lives behind one pointer so the arena
  /// stays movable (mutexes and atomics pin their own addresses).
  struct State {
    util::SegmentedVector<ProcessNode> nodes;
    std::array<Stripe, kStripes> stripes;

    /// Serialises name/constant registration (cold: parse time only).
    std::mutex names_mutex;
    util::SegmentedVector<std::string> action_names;
    std::unordered_map<std::string, ActionId> action_ids;
    util::SegmentedVector<std::string> constant_names;
    util::SegmentedVector<std::atomic<ProcessId>> constant_bodies;
    std::unordered_map<std::string, ConstantId> constant_ids;
  };

  ProcessId intern(ProcessNode node);

  std::unique_ptr<State> state_;
};

/// True when `action` belongs to the sorted action set.
bool set_contains(const std::vector<ActionId>& set, ActionId action);

/// Sorted union of two action sets.
std::vector<ActionId> set_union(const std::vector<ActionId>& a,
                                const std::vector<ActionId>& b);

/// Sorted intersection of two action sets.
std::vector<ActionId> set_intersection(const std::vector<ActionId>& a,
                                       const std::vector<ActionId>& b);

/// The set of action types occurring syntactically in `process` (through
/// constant definitions); tau excluded.  This is A(P) in the paper, used to
/// compute default cooperation sets for net places.
std::vector<ActionId> alphabet(const ProcessArena& arena, ProcessId process);

/// Static expansion: unfolds constants whose bodies are *compositions*
/// (cooperation/hiding/other constants) so that the term exposes its static
/// structure, while constants with sequential bodies (prefix/choice/stop)
/// are kept by name.  Deriving from the expanded system equation avoids a
/// spurious transient state for aliases like "System = P || P" and keeps
/// sequential positions named for the state-probability measures.
ProcessId expand_static(ProcessArena& arena, ProcessId process);

}  // namespace choreo::pepa
