// Abstract syntax of PEPA, stored in a hash-consed arena.
//
// Process terms are the *states* of the derived CTMC, so structural
// equality tests and hashing must be cheap: the arena interns every node,
// making equality an integer comparison and enabling memoised semantics
// (apparent rates, one-step derivatives) keyed by node id.
//
// The grammar (paper Figure 3, sequential/concurrent levels merged into one
// node type; well-formedness checks enforce the stratification):
//
//   P ::= (alpha, r).P   prefix
//       | P + P          choice
//       | P <L> P        cooperation over action set L
//       | P / L          hiding
//       | A              constant (named definition)
//       | Stop           the inert process (also used for empty net cells)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pepa/rate.hpp"

namespace choreo::pepa {

using ProcessId = std::uint32_t;
using ActionId = std::uint32_t;
using ConstantId = std::uint32_t;

inline constexpr ProcessId kInvalidProcess = 0xFFFFFFFFu;
/// The silent action produced by hiding.
inline constexpr ActionId kTau = 0;

enum class Op : std::uint8_t {
  kStop,
  kPrefix,
  kChoice,
  kCooperation,
  kHiding,
  kConstant,
};

struct ProcessNode {
  Op op = Op::kStop;
  ActionId action = 0;                 ///< prefix only
  Rate rate;                           ///< prefix only
  ProcessId left = kInvalidProcess;    ///< prefix continuation / binary left
  ProcessId right = kInvalidProcess;   ///< binary right
  std::vector<ActionId> action_set;    ///< cooperation / hiding (sorted, unique)
  ConstantId constant = 0;             ///< constant only
};

class ProcessArena {
 public:
  ProcessArena();

  // --- action names -----------------------------------------------------
  /// Interns an action name; "tau" maps to kTau.
  ActionId action(std::string_view name);
  std::optional<ActionId> find_action(std::string_view name) const;
  const std::string& action_name(ActionId id) const;
  std::size_t action_count() const noexcept { return action_names_.size(); }

  // --- constants (named definitions) ------------------------------------
  /// Declares (or returns the existing) constant with this name.
  ConstantId declare(std::string_view name);
  std::optional<ConstantId> find_constant(std::string_view name) const;
  const std::string& constant_name(ConstantId id) const;
  bool is_defined(ConstantId id) const;
  /// Binds the body of a constant; rebinding is a model error.
  void define(ConstantId id, ProcessId body);
  /// Body of a defined constant; throws util::ModelError when undefined.
  ProcessId body(ConstantId id) const;
  std::size_t constant_count() const noexcept { return constant_names_.size(); }

  // --- term constructors (hash-consed) -----------------------------------
  ProcessId stop();
  ProcessId prefix(ActionId action, Rate rate, ProcessId continuation);
  ProcessId choice(ProcessId left, ProcessId right);
  /// `set` is deduplicated and sorted; must not contain tau.
  ProcessId cooperation(ProcessId left, std::vector<ActionId> set, ProcessId right);
  ProcessId hiding(ProcessId process, std::vector<ActionId> set);
  ProcessId constant(ConstantId id);
  /// Convenience: constant by name (declares it when new).
  ProcessId constant(std::string_view name);

  const ProcessNode& node(ProcessId id) const;
  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  ProcessId intern(ProcessNode node);

  std::vector<ProcessNode> nodes_;
  std::unordered_map<std::size_t, std::vector<ProcessId>> buckets_;

  std::vector<std::string> action_names_;
  std::unordered_map<std::string, ActionId> action_ids_;

  std::vector<std::string> constant_names_;
  std::vector<ProcessId> constant_bodies_;
  std::unordered_map<std::string, ConstantId> constant_ids_;
};

/// True when `action` belongs to the sorted action set.
bool set_contains(const std::vector<ActionId>& set, ActionId action);

/// Sorted union of two action sets.
std::vector<ActionId> set_union(const std::vector<ActionId>& a,
                                const std::vector<ActionId>& b);

/// Sorted intersection of two action sets.
std::vector<ActionId> set_intersection(const std::vector<ActionId>& a,
                                       const std::vector<ActionId>& b);

/// The set of action types occurring syntactically in `process` (through
/// constant definitions); tau excluded.  This is A(P) in the paper, used to
/// compute default cooperation sets for net places.
std::vector<ActionId> alphabet(const ProcessArena& arena, ProcessId process);

/// Static expansion: unfolds constants whose bodies are *compositions*
/// (cooperation/hiding/other constants) so that the term exposes its static
/// structure, while constants with sequential bodies (prefix/choice/stop)
/// are kept by name.  Deriving from the expanded system equation avoids a
/// spurious transient state for aliases like "System = P || P" and keeps
/// sequential positions named for the state-probability measures.
ProcessId expand_static(ProcessArena& arena, ProcessId process);

}  // namespace choreo::pepa
