#include "pepa/rate.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::pepa {

Rate Rate::active(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) {
    throw util::ModelError(util::msg("active rate must be positive and finite, got ",
                                     value));
  }
  return Rate(value, false);
}

Rate Rate::passive(double weight) {
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    throw util::ModelError(util::msg("passive weight must be positive, got ", weight));
  }
  return Rate(weight, true);
}

Rate Rate::plus(const Rate& other, const std::string& context) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;
  if (passive_ != other.passive_) {
    throw util::ModelError(util::msg(
        "cannot mix active and passive rates",
        context.empty() ? "" : " for action '", context,
        context.empty() ? "" : "'",
        " (a component offers the same action type both actively and passively)"));
  }
  return Rate(value_ + other.value_, passive_);
}

Rate Rate::min(const Rate& a, const Rate& b) {
  if (a.is_zero() || b.is_zero()) return Rate();
  if (a.passive_ && b.passive_) {
    return Rate(std::fmin(a.value_, b.value_), true);
  }
  if (a.passive_) return b;
  if (b.passive_) return a;
  return Rate(std::fmin(a.value_, b.value_), false);
}

std::string Rate::to_string() const {
  if (!passive_) return util::format_double(value_);
  if (value_ == 1.0) return "infty";
  return util::format_double(value_) + "*infty";
}

Rate cooperation_rate(const Rate& r1, const Rate& apparent1, const Rate& r2,
                      const Rate& apparent2, const std::string& context) {
  CHOREO_ASSERT(!r1.is_zero() && !r2.is_zero());
  CHOREO_ASSERT(!apparent1.is_zero() && !apparent2.is_zero());
  // The fraction r/ra is well-defined only within a kind; apparent rates are
  // same-kind sums of the individual rates, enforced by Rate::plus.
  if (r1.is_passive() != apparent1.is_passive() ||
      r2.is_passive() != apparent2.is_passive()) {
    throw util::ModelError(util::msg(
        "cannot mix active and passive rates",
        context.empty() ? "" : " for action '", context,
        context.empty() ? "" : "'"));
  }
  const double fraction1 = r1.value() / apparent1.value();
  const double fraction2 = r2.value() / apparent2.value();
  const Rate slower = Rate::min(apparent1, apparent2);
  const double combined = fraction1 * fraction2 * slower.value();
  return slower.is_passive() ? Rate::passive(combined) : Rate::active(combined);
}

}  // namespace choreo::pepa
