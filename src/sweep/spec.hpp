// Design-space sweep specifications: named rate-parameter axes with
// linear / logarithmic / explicit value ranges, combined either as a
// Cartesian grid or zipped position-by-position.
//
// A specification is pure data — expanding it into concrete points is a
// deterministic function of the axes, so the same spec always enumerates
// the same points in the same order (axis 0 outermost, the last axis
// fastest for Cartesian grids).  The sweep runner, the service's sweep job
// kind and the CLI tools all share this expansion, which is what makes
// result tables and per-point cache keys reproducible across entry points.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace choreo::sweep {

/// One sweep axis: a rate parameter and the values it takes.
struct Axis {
  std::string parameter;
  std::vector<double> values;

  /// Explicit value list.
  static Axis list(std::string parameter, std::vector<double> values);
  /// `count` evenly spaced values over [from, to] (inclusive).
  static Axis linear(std::string parameter, double from, double to,
                     std::size_t count);
  /// `count` geometrically spaced values over [from, to] (inclusive).
  static Axis logspace(std::string parameter, double from, double to,
                       std::size_t count);
};

/// How multiple axes combine into points.
enum class Combine {
  kCartesian,  ///< every combination; last axis varies fastest
  kZip,        ///< position-by-position; all axes must have equal length
};

struct SweepSpec {
  std::vector<Axis> axes;
  Combine combine = Combine::kCartesian;

  /// Throws util::ModelError on an ill-formed spec: no axes, an empty or
  /// duplicated axis, a non-positive or non-finite value, or zipped axes of
  /// different lengths.  Sweep values must be valid active-rate values.
  void validate() const;

  /// Number of points the spec enumerates (validate() first).
  std::size_t point_count() const;

  /// The `index`-th point: one value per axis, in axis order.
  std::vector<double> point(std::size_t index) const;

  /// The axis parameter names, in axis order.
  std::vector<std::string> parameter_names() const;
};

/// Parses one axis from manifest / CLI syntax:
///
///   name=LO:HI:COUNT        linear range, COUNT values inclusive
///   name=log:LO:HI:COUNT    logarithmic range
///   name=V1,V2,...          explicit list (a single value is a 1-list)
///
/// Throws util::Error on malformed input.
Axis parse_axis(std::string_view text);

}  // namespace choreo::sweep
