// The design-space sweep runner: derive once, re-solve K times.
//
// SharedStructure performs the single state-space derivation of a sweep and
// turns each point into a rate payload aligned with the shared transition
// system: because SOS derivation commutes with rate substitution, the j-th
// move of a state at new rate values is the j-th transition of the base
// state's CSR row (the exploration engine commits transitions in derivative
// order, dropping top-level passive moves under the same filter applied
// here).  Per-point rates come from RateRebinder::Point::moves() — the SOS
// re-run arithmetically over the base terms, interning nothing — and the
// alignment is still checked per transition (action and row length), so a
// sweep can never silently solve the wrong chain.
//
// sweep() evaluates every point of a SweepSpec, scheduling the per-point
// solves across a util::ThreadPool under one util::Budget, and emits a
// deterministic SweepTable: row r always describes spec point r, measure
// columns are the model's actions in arena order, and all arithmetic per
// point is independent of the lane count, so tables are identical at any
// thread count.  A failed point (solver divergence at an extreme rate,
// say) records its error in the row; the other points are unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ctmc/steady_state.hpp"
#include "fluid/analysis.hpp"
#include "pepa/statespace.hpp"
#include "sweep/rebind.hpp"
#include "sweep/spec.hpp"
#include "util/budget.hpp"
#include "util/thread_pool.hpp"

namespace choreo::sweep {

/// How each point is evaluated: the exact CTMC on the shared derived
/// structure, or the fluid ODE approximation (no derivation at all).
enum class Backend { kExact, kFluid };

const char* to_string(Backend backend);

struct SweepOptions {
  Backend backend = Backend::kExact;
  /// Steady-state solver for exact points (its `budget` field is ignored;
  /// `budget` below governs every stage).
  ctmc::SolveOptions solver;
  /// Options for the single shared derivation (exact backend).
  pepa::DeriveOptions derive;
  /// Fluid integration knobs (fluid backend).
  fluid::FluidOptions fluid;
  /// Point-evaluation lanes: 1 evaluates sequentially on the calling
  /// thread, anything else schedules the points across `pool`.
  std::size_t threads = 0;
  /// Pool the point evaluations run on; nullptr means ThreadPool::shared().
  util::ThreadPool* pool = nullptr;
  /// One governor for the whole sweep: the derivation, every rebind and
  /// every solve check it.  nullptr disables governance.
  util::Budget* budget = nullptr;
};

struct SweepRow {
  std::vector<double> values;    ///< one per axis, in axis order
  std::vector<double> measures;  ///< one per SweepTable::measures column
  std::string error;             ///< non-empty when this point failed
  bool ok() const noexcept { return error.empty(); }
};

/// The deterministic result table of a sweep.
struct SweepTable {
  std::vector<std::string> axes;      ///< axis parameter names
  std::vector<std::string> measures;  ///< measure column names
  std::vector<SweepRow> rows;         ///< one per point, in spec order
  std::uint64_t structure = 0;        ///< rate-stripped model fingerprint
  std::size_t derivations = 0;        ///< state-space derivations performed
  std::size_t state_count = 0;
  std::size_t transition_count = 0;
  std::size_t points_from_cache = 0;  ///< filled by the service path
  pepa::DeriveStats derive_stats;     ///< stats of the single derivation
  double seconds = 0.0;

  std::string to_csv() const;
  std::string to_json() const;
};

/// The once-per-sweep artefacts: the rebinder, the semantics and the single
/// derived state space, plus the per-point payload rebinding.
class SharedStructure {
 public:
  /// Derives the state space of `model` once (util::ModelError /
  /// util::BudgetError as usual).  The model must outlive this object.
  SharedStructure(pepa::Model& model, std::vector<std::string> parameters,
                  const pepa::DeriveOptions& options = {});

  RateRebinder& rebinder() noexcept { return rebinder_; }
  pepa::Semantics& semantics() noexcept { return semantics_; }
  const pepa::StateSpace& space() const noexcept { return space_; }
  std::uint64_t structure() const noexcept { return rebinder_.structure(); }

  /// The sweep point's transition rates, index-aligned with
  /// space().transitions().  Thread-safe (the semantics caches and the
  /// arena are concurrent); each caller brings its own Point.  Throws
  /// util::ModelError if the rebound derivatives do not align with the
  /// shared structure — which would mean the point changed the model's
  /// shape, not just its rates.
  std::vector<double> rebind_rates(RateRebinder::Point& point);

  /// The CTMC generator for one point's rates.
  ctmc::Generator generator(std::span<const double> rates) const;

  /// Steady-state throughput of every non-tau arena action (in action-id
  /// order) under one point's rates — the measure columns of a SweepTable.
  std::vector<double> throughputs(std::span<const double> distribution,
                                  std::span<const double> rates) const;

  /// The measure column names matching throughputs().
  std::vector<std::string> measure_names() const;

 private:
  RateRebinder rebinder_;
  pepa::Semantics semantics_;
  pepa::StateSpace space_;
  bool allow_top_level_passive_;
};

/// Runs the whole sweep: validates the spec, derives once (exact backend),
/// evaluates every point, and returns the table.  Per-point failures are
/// recorded in the rows; util::InterruptedError and util::BudgetError abort
/// the sweep as a whole.
SweepTable sweep(pepa::Model& model, const SweepSpec& spec,
                 const SweepOptions& options = {});

}  // namespace choreo::sweep
