// Structure-sharing rate rebinding: re-evaluate a PEPA model at new rate
// values without re-parsing and — crucially — without re-deriving its state
// space.
//
// Rates are baked into hash-consed process terms, so "changing a rate"
// means interning new terms.  What stays invariant is the *shape* of the
// derivation graph: which transitions exist depends only on the model's
// syntax and on the active/passive kind of each rate, never on the positive
// value of an active rate.  The rebinder exploits this:
//
//   * The parser records a PrefixRateTag for every prefix whose rate was
//     written as a single scaled parameter ("r", "2*r").  A rebinder checks
//     the swept parameters resolve to clean tags (no compound expressions,
//     no derived parameters, no hash-consing conflicts) and refuses
//     otherwise — a wrong silent rebind would be a corrupted analysis.
//
//   * Point::moves() re-runs the SOS over the *base* terms with the point's
//     values substituted into tagged prefix rates, computing only the
//     (action, rate) payload — no new term is ever interned, so evaluating
//     a point is pure arithmetic over the existing DAG.  Because it is the
//     same syntax-directed recursion that derived the base space, the moves
//     of a state align one-to-one (same order, same multiplicity) with the
//     base state's transition row; the sweep runner overwrites just the
//     rates of the derived transition system (runner.cpp).
//
//   * Point::term() additionally offers a full structural remap — fresh
//     terms with substituted rates, affected constants freshly declared per
//     point ("Server@sw3") with the mapping recorded *before* the body is
//     remapped so recursive definitions terminate.  Backends that need an
//     actual process term per point (the fluid ODE translation) use this;
//     the exact backend never pays for it.
//
// The module also content-addresses models: structure_fingerprint() hashes
// the rate-stripped model (the identity shared by every point of a sweep)
// and RateRebinder::rate_fingerprint() hashes the full rate payload at one
// point — together they key per-point service cache entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pepa/model.hpp"

namespace choreo::sweep {

/// FNV-1a hash of the rate-stripped model: operators, action and constant
/// names, cooperation/hiding sets and each rate's active/passive kind, but
/// no rate values.  Every point of a sweep shares this fingerprint; models
/// differing only in rate values collide on purpose.
std::uint64_t structure_fingerprint(pepa::Model& model);

/// One enabled activity of a base term at a sweep point: the action and the
/// substituted rate, in the exact emission order of Semantics::derivatives
/// on that term.
struct RatedMove {
  pepa::ActionId action;
  pepa::Rate rate;
};

class RateRebinder {
 public:
  /// Prepares to sweep `parameters` of `model`.  Throws util::ModelError
  /// when a name is not a parameter, is opaque (used in a compound rate
  /// expression, feeds a derived parameter, or lost its provenance to
  /// hash-consing), or never appears as a prefix rate.  The model must
  /// outlive the rebinder; its arena is mutated by remapping.
  RateRebinder(pepa::Model& model, std::vector<std::string> parameters);

  pepa::Model& model() noexcept { return model_; }
  const std::vector<std::string>& parameters() const noexcept {
    return parameters_;
  }
  /// The parameters' values in the base model, in parameters() order.
  const std::vector<double>& base_values() const noexcept {
    return base_values_;
  }
  /// Cached structure_fingerprint() of the model.
  std::uint64_t structure() const noexcept { return structure_; }

  /// FNV-1a hash of the model's full rate payload with `values` substituted
  /// into the swept prefixes — the per-point complement of structure().
  std::uint64_t rate_fingerprint(std::span<const double> values) const;

  /// One sweep point's remapping context.  Not thread-safe; create one per
  /// evaluation task.  Memoises term and constant mappings so shared
  /// subterms are remapped once.
  class Point {
   public:
    /// The moves of a base term with this point's values substituted — the
    /// rate payload of Semantics::derivatives(base) recomputed arithmetically
    /// over the base DAG, without interning any term.  Only call after the
    /// base model has been derived (derivation validates guardedness; this
    /// walk repeats its recursion without re-checking).
    const std::vector<RatedMove>& moves(pepa::ProcessId base);
    /// Apparent rate of `action` in a base term at this point's values.
    pepa::Rate apparent(pepa::ProcessId base, pepa::ActionId action);
    /// The rebound counterpart of a base-model term.
    pepa::ProcessId term(pepa::ProcessId base);
    /// The rebound counterpart of a base-model constant (identity for
    /// constants the sweep does not affect).
    pepa::ConstantId constant(pepa::ConstantId base);
    const std::vector<double>& values() const noexcept { return values_; }
    /// True when every swept value equals the base model's: terms map to
    /// themselves.
    bool is_identity() const noexcept { return identity_; }

   private:
    friend class RateRebinder;
    Point(RateRebinder& owner, std::vector<double> values);

    std::vector<RatedMove> compute_moves(pepa::ProcessId base);
    pepa::Rate compute_apparent(pepa::ProcessId base, pepa::ActionId action);
    /// The prefix's rate with this point's value substituted when swept.
    pepa::Rate prefix_rate(pepa::ProcessId id, const pepa::ProcessNode& node)
        const;

    RateRebinder& owner_;
    std::vector<double> values_;
    bool identity_;
    std::uint64_t serial_;
    std::unordered_map<pepa::ProcessId, pepa::ProcessId> terms_;
    std::unordered_map<pepa::ConstantId, pepa::ConstantId> constants_;
    std::unordered_map<pepa::ProcessId, std::vector<RatedMove>> moves_;
    std::unordered_map<std::uint64_t, pepa::Rate> apparent_;
  };

  /// A remapping context for one point; `values` align with parameters()
  /// and must be positive and finite (util::ModelError otherwise).
  Point at(std::span<const double> values);

 private:
  friend class Point;

  pepa::Model& model_;
  std::vector<std::string> parameters_;
  std::vector<double> base_values_;
  std::uint64_t structure_ = 0;
  /// Tagged prefix -> (axis index, literal scale): rate = scale * value.
  std::unordered_map<pepa::ProcessId, std::pair<std::size_t, double>> swept_;
  /// Constants whose definition (transitively) contains a swept prefix.
  std::vector<char> constant_affected_;
  /// Distinguishes the fresh constants declared by successive points.
  std::atomic<std::uint64_t> next_serial_{0};
};

}  // namespace choreo::sweep
