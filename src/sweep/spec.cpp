#include "sweep/spec.hpp"

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::sweep {

namespace {

double parse_number(std::string_view what, std::string_view text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing input");
    return value;
  } catch (const std::exception&) {
    throw util::Error(util::msg("expected a number for ", what, ", got '",
                                text, "'"));
  }
}

std::size_t parse_count(std::string_view what, std::string_view text) {
  const double value = parse_number(what, text);
  if (value < 1.0 || value != std::floor(value)) {
    throw util::Error(util::msg(what, " must be a positive integer, got '",
                                text, "'"));
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

Axis Axis::list(std::string parameter, std::vector<double> values) {
  return Axis{std::move(parameter), std::move(values)};
}

Axis Axis::linear(std::string parameter, double from, double to,
                  std::size_t count) {
  std::vector<double> values;
  values.reserve(count);
  if (count == 1) {
    values.push_back(from);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      values.push_back(from + (to - from) * static_cast<double>(i) /
                                  static_cast<double>(count - 1));
    }
  }
  return Axis{std::move(parameter), std::move(values)};
}

Axis Axis::logspace(std::string parameter, double from, double to,
                    std::size_t count) {
  if (from <= 0.0 || to <= 0.0) {
    throw util::ModelError(util::msg("log axis '", parameter,
                                     "' needs positive endpoints"));
  }
  std::vector<double> values;
  values.reserve(count);
  if (count == 1) {
    values.push_back(from);
  } else {
    const double log_from = std::log(from);
    const double log_to = std::log(to);
    for (std::size_t i = 0; i < count; ++i) {
      values.push_back(std::exp(log_from + (log_to - log_from) *
                                               static_cast<double>(i) /
                                               static_cast<double>(count - 1)));
    }
  }
  return Axis{std::move(parameter), std::move(values)};
}

void SweepSpec::validate() const {
  if (axes.empty()) {
    throw util::ModelError("sweep specification has no axes");
  }
  std::set<std::string> seen;
  for (const Axis& axis : axes) {
    if (axis.parameter.empty()) {
      throw util::ModelError("sweep axis has an empty parameter name");
    }
    if (!seen.insert(axis.parameter).second) {
      throw util::ModelError(util::msg("sweep axis '", axis.parameter,
                                       "' appears twice"));
    }
    if (axis.values.empty()) {
      throw util::ModelError(util::msg("sweep axis '", axis.parameter,
                                       "' has no values"));
    }
    for (const double value : axis.values) {
      if (!(value > 0.0) || !std::isfinite(value)) {
        throw util::ModelError(util::msg(
            "sweep axis '", axis.parameter, "' has value ",
            util::format_double(value),
            "; rate values must be positive and finite"));
      }
    }
    if (combine == Combine::kZip &&
        axis.values.size() != axes.front().values.size()) {
      throw util::ModelError(util::msg(
          "zipped sweep axes must have equal lengths ('",
          axes.front().parameter, "' has ", axes.front().values.size(), ", '",
          axis.parameter, "' has ", axis.values.size(), ")"));
    }
  }
}

std::size_t SweepSpec::point_count() const {
  if (axes.empty()) return 0;
  if (combine == Combine::kZip) return axes.front().values.size();
  std::size_t count = 1;
  for (const Axis& axis : axes) count *= axis.values.size();
  return count;
}

std::vector<double> SweepSpec::point(std::size_t index) const {
  std::vector<double> values(axes.size());
  if (combine == Combine::kZip) {
    for (std::size_t a = 0; a < axes.size(); ++a) {
      values[a] = axes[a].values[index];
    }
    return values;
  }
  // Mixed-radix decomposition, last axis fastest.
  std::size_t rest = index;
  for (std::size_t a = axes.size(); a-- > 0;) {
    const std::size_t radix = axes[a].values.size();
    values[a] = axes[a].values[rest % radix];
    rest /= radix;
  }
  return values;
}

std::vector<std::string> SweepSpec::parameter_names() const {
  std::vector<std::string> names;
  names.reserve(axes.size());
  for (const Axis& axis : axes) names.push_back(axis.parameter);
  return names;
}

Axis parse_axis(std::string_view text) {
  const auto equals = text.find('=');
  if (equals == std::string_view::npos || equals == 0) {
    throw util::Error(util::msg("expected NAME=RANGE for a sweep axis, got '",
                                text, "'"));
  }
  std::string name(util::trim(text.substr(0, equals)));
  const std::string_view range = text.substr(equals + 1);
  if (range.empty()) {
    throw util::Error(util::msg("sweep axis '", name, "' has an empty range"));
  }
  if (range.find(',') != std::string_view::npos) {
    std::vector<double> values;
    for (const std::string& field : util::split(range, ',')) {
      values.push_back(parse_number("sweep value", util::trim(field)));
    }
    return Axis::list(std::move(name), std::move(values));
  }
  const std::vector<std::string> parts = util::split(range, ':');
  if (parts.size() == 1) {
    return Axis::list(std::move(name),
                      {parse_number("sweep value", util::trim(parts[0]))});
  }
  if (parts.size() == 3) {
    return Axis::linear(std::move(name),
                        parse_number("range start", util::trim(parts[0])),
                        parse_number("range end", util::trim(parts[1])),
                        parse_count("range count", util::trim(parts[2])));
  }
  if (parts.size() == 4 && util::trim(parts[0]) == "log") {
    return Axis::logspace(std::move(name),
                          parse_number("range start", util::trim(parts[1])),
                          parse_number("range end", util::trim(parts[2])),
                          parse_count("range count", util::trim(parts[3])));
  }
  if (parts.size() == 4 && util::trim(parts[0]) == "lin") {
    return Axis::linear(std::move(name),
                        parse_number("range start", util::trim(parts[1])),
                        parse_number("range end", util::trim(parts[2])),
                        parse_count("range count", util::trim(parts[3])));
  }
  throw util::Error(
      util::msg("malformed sweep range '", range,
                "' (expected [lin:]LO:HI:N, log:LO:HI:N or V1,V2,...)"));
}

}  // namespace choreo::sweep
