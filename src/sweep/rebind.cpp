#include "sweep/rebind.hpp"

#include <bit>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::sweep {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Canonical FNV-1a walk over a model's term DAG.  Shared subterms hash as
/// back-references so the walk is linear in the DAG size; rate values are
/// included only when `include_rates` (with swept substitutions applied),
/// which is the whole difference between the structure and rate
/// fingerprints.
class Fingerprinter {
 public:
  Fingerprinter(
      const pepa::ProcessArena& arena, bool include_rates,
      const std::unordered_map<pepa::ProcessId,
                               std::pair<std::size_t, double>>* swept,
      std::span<const double> values)
      : arena_(arena),
        include_rates_(include_rates),
        swept_(swept),
        values_(values) {}

  std::uint64_t run(pepa::Model& model) {
    for (pepa::ConstantId id = 0; id < arena_.constant_count(); ++id) {
      if (!arena_.is_defined(id)) continue;
      byte('D');
      str(arena_.constant_name(id));
      term(arena_.body(id));
    }
    byte('S');
    term(model.system());
    return hash_;
  }

 private:
  void term(pepa::ProcessId id) {
    auto [it, inserted] = seen_.emplace(id, seen_.size());
    if (!inserted) {
      byte('#');
      u64(it->second);
      return;
    }
    const pepa::ProcessNode& node = arena_.node(id);
    switch (node.op) {
      case pepa::Op::kStop:
        byte('0');
        break;
      case pepa::Op::kPrefix: {
        byte('.');
        str(arena_.action_name(node.action));
        byte(node.rate.is_passive() ? 'p' : 'a');
        if (include_rates_) {
          double value = node.rate.value();
          if (swept_ != nullptr) {
            if (const auto swept = swept_->find(id); swept != swept_->end()) {
              value = swept->second.second * values_[swept->second.first];
            }
          }
          real(value);
        }
        term(node.left);
        break;
      }
      case pepa::Op::kChoice:
        byte('+');
        term(node.left);
        term(node.right);
        break;
      case pepa::Op::kCooperation:
        byte('<');
        for (const pepa::ActionId action : node.action_set) {
          str(arena_.action_name(action));
        }
        byte('>');
        term(node.left);
        term(node.right);
        break;
      case pepa::Op::kHiding:
        byte('/');
        for (const pepa::ActionId action : node.action_set) {
          str(arena_.action_name(action));
        }
        byte('}');
        term(node.left);
        break;
      case pepa::Op::kConstant:
        byte('C');
        str(arena_.constant_name(node.constant));
        break;
    }
  }

  void byte(unsigned char value) { hash_ = (hash_ ^ value) * kFnvPrime; }
  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      byte(static_cast<unsigned char>(value >> shift));
    }
  }
  void real(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void str(const std::string& text) {
    for (const char c : text) byte(static_cast<unsigned char>(c));
    byte(0);
  }

  const pepa::ProcessArena& arena_;
  bool include_rates_;
  const std::unordered_map<pepa::ProcessId, std::pair<std::size_t, double>>*
      swept_;
  std::span<const double> values_;
  std::unordered_map<pepa::ProcessId, std::uint64_t> seen_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Collects what one constant body contains: a swept prefix (directly) and
/// references to other constants.
struct BodyScan {
  bool swept = false;
  std::vector<pepa::ConstantId> refs;
};

void scan_body(const pepa::ProcessArena& arena, pepa::ProcessId id,
               const std::unordered_map<pepa::ProcessId,
                                        std::pair<std::size_t, double>>& swept,
               std::unordered_set<pepa::ProcessId>& visited, BodyScan& out) {
  if (!visited.insert(id).second) return;
  const pepa::ProcessNode& node = arena.node(id);
  switch (node.op) {
    case pepa::Op::kStop:
      break;
    case pepa::Op::kPrefix:
      if (swept.count(id) != 0) out.swept = true;
      scan_body(arena, node.left, swept, visited, out);
      break;
    case pepa::Op::kChoice:
    case pepa::Op::kCooperation:
      scan_body(arena, node.left, swept, visited, out);
      scan_body(arena, node.right, swept, visited, out);
      break;
    case pepa::Op::kHiding:
      scan_body(arena, node.left, swept, visited, out);
      break;
    case pepa::Op::kConstant:
      out.refs.push_back(node.constant);
      break;
  }
}

}  // namespace

std::uint64_t structure_fingerprint(pepa::Model& model) {
  return Fingerprinter(model.arena(), /*include_rates=*/false, nullptr, {})
      .run(model);
}

RateRebinder::RateRebinder(pepa::Model& model,
                           std::vector<std::string> parameters)
    : model_(model), parameters_(std::move(parameters)) {
  if (parameters_.empty()) {
    throw util::ModelError("a sweep needs at least one parameter");
  }
  base_values_.reserve(parameters_.size());
  for (const std::string& name : parameters_) {
    base_values_.push_back(model_.parameter(name));  // throws when unknown
    if (model_.parameter_is_opaque(name)) {
      throw util::ModelError(util::msg(
          "rate parameter '", name,
          "' cannot be swept: it is used in a compound rate expression, "
          "feeds a derived parameter, or shares a prefix with a literal "
          "rate"));
    }
  }
  std::vector<std::size_t> tagged(parameters_.size(), 0);
  for (const auto& [prefix, tag] : model_.prefix_rate_tags()) {
    for (std::size_t axis = 0; axis < parameters_.size(); ++axis) {
      if (tag.parameter == parameters_[axis]) {
        swept_.emplace(prefix, std::make_pair(axis, tag.scale));
        ++tagged[axis];
        break;
      }
    }
  }
  for (std::size_t axis = 0; axis < parameters_.size(); ++axis) {
    if (tagged[axis] == 0) {
      throw util::ModelError(util::msg("rate parameter '", parameters_[axis],
                                       "' is never used as an activity "
                                       "rate; sweeping it has no effect"));
    }
  }
  structure_ = structure_fingerprint(model_);

  // Which constants' definitions (transitively) contain a swept prefix:
  // only those need fresh per-point declarations; everything else is shared
  // between the base model and every point.
  const pepa::ProcessArena& arena = model_.arena();
  const std::size_t constants = arena.constant_count();
  constant_affected_.assign(constants, 0);
  std::vector<std::vector<pepa::ConstantId>> refs(constants);
  for (pepa::ConstantId id = 0; id < constants; ++id) {
    if (!arena.is_defined(id)) continue;
    BodyScan scan;
    std::unordered_set<pepa::ProcessId> visited;
    scan_body(arena, arena.body(id), swept_, visited, scan);
    constant_affected_[id] = scan.swept ? 1 : 0;
    refs[id] = std::move(scan.refs);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (pepa::ConstantId id = 0; id < constants; ++id) {
      if (constant_affected_[id] != 0) continue;
      for (const pepa::ConstantId ref : refs[id]) {
        if (ref < constants && constant_affected_[ref] != 0) {
          constant_affected_[id] = 1;
          changed = true;
          break;
        }
      }
    }
  }
}

std::uint64_t RateRebinder::rate_fingerprint(
    std::span<const double> values) const {
  if (values.size() != parameters_.size()) {
    throw util::ModelError(util::msg("sweep point has ", values.size(),
                                     " values for ", parameters_.size(),
                                     " parameters"));
  }
  return Fingerprinter(model_.arena(), /*include_rates=*/true, &swept_, values)
      .run(model_);
}

RateRebinder::Point RateRebinder::at(std::span<const double> values) {
  if (values.size() != parameters_.size()) {
    throw util::ModelError(util::msg("sweep point has ", values.size(),
                                     " values for ", parameters_.size(),
                                     " parameters"));
  }
  for (std::size_t axis = 0; axis < values.size(); ++axis) {
    if (!(values[axis] > 0.0) || !std::isfinite(values[axis])) {
      throw util::ModelError(util::msg(
          "sweep value ", util::format_double(values[axis]), " for '",
          parameters_[axis], "' is not a valid rate"));
    }
  }
  return Point(*this, std::vector<double>(values.begin(), values.end()));
}

RateRebinder::Point::Point(RateRebinder& owner, std::vector<double> values)
    : owner_(owner),
      values_(std::move(values)),
      identity_(values_ == owner.base_values_),
      serial_(owner.next_serial_.fetch_add(1, std::memory_order_relaxed)) {}

pepa::Rate RateRebinder::Point::prefix_rate(
    pepa::ProcessId id, const pepa::ProcessNode& node) const {
  if (const auto swept = owner_.swept_.find(id); swept != owner_.swept_.end()) {
    const double value = swept->second.second * values_[swept->second.first];
    return node.rate.is_passive() ? pepa::Rate::passive(value)
                                  : pepa::Rate::active(value);
  }
  return node.rate;
}

const std::vector<RatedMove>& RateRebinder::Point::moves(pepa::ProcessId base) {
  if (const auto it = moves_.find(base); it != moves_.end()) return it->second;
  std::vector<RatedMove> computed = compute_moves(base);
  return moves_.emplace(base, std::move(computed)).first->second;
}

pepa::Rate RateRebinder::Point::apparent(pepa::ProcessId base,
                                         pepa::ActionId action) {
  const std::uint64_t key = (static_cast<std::uint64_t>(base) << 32) | action;
  if (const auto it = apparent_.find(key); it != apparent_.end()) {
    return it->second;
  }
  const pepa::Rate rate = compute_apparent(base, action);
  apparent_.emplace(key, rate);
  return rate;
}

// The two compute_ walks mirror Semantics::compute_derivatives and
// Semantics::compute_apparent case for case — same recursion, same emission
// order, same multiplicities — except that no derivative target is ever
// built and swept prefix rates take this point's values.  Guardedness is
// not re-checked: the base derivation already walked (and validated) every
// recursion this walk can reach.
std::vector<RatedMove> RateRebinder::Point::compute_moves(
    pepa::ProcessId base) {
  const pepa::ProcessArena& arena = owner_.model_.arena();
  const pepa::ProcessNode& node = arena.node(base);  // arena never grows here
  std::vector<RatedMove> out;
  switch (node.op) {
    case pepa::Op::kStop:
      return out;
    case pepa::Op::kPrefix:
      out.push_back({node.action, prefix_rate(base, node)});
      return out;
    case pepa::Op::kChoice: {
      // Copies: computing the right list may rehash the memo under a
      // reference obtained for the left list.
      const std::vector<RatedMove> left = moves(node.left);
      const std::vector<RatedMove> right = moves(node.right);
      out = left;
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
    case pepa::Op::kHiding: {
      const std::vector<RatedMove> inner = moves(node.left);
      out.reserve(inner.size());
      for (const RatedMove& move : inner) {
        const pepa::ActionId action =
            pepa::set_contains(node.action_set, move.action) ? pepa::kTau
                                                             : move.action;
        out.push_back({action, move.rate});
      }
      return out;
    }
    case pepa::Op::kCooperation: {
      const std::vector<RatedMove> left = moves(node.left);
      const std::vector<RatedMove> right = moves(node.right);
      for (const RatedMove& move : left) {
        if (pepa::set_contains(node.action_set, move.action)) continue;
        out.push_back(move);
      }
      for (const RatedMove& move : right) {
        if (pepa::set_contains(node.action_set, move.action)) continue;
        out.push_back(move);
      }
      for (const pepa::ActionId shared : node.action_set) {
        const pepa::Rate apparent_left = apparent(node.left, shared);
        const pepa::Rate apparent_right = apparent(node.right, shared);
        if (apparent_left.is_zero() || apparent_right.is_zero()) continue;
        for (const RatedMove& dl : left) {
          if (dl.action != shared) continue;
          for (const RatedMove& dr : right) {
            if (dr.action != shared) continue;
            out.push_back({shared, pepa::cooperation_rate(
                                       dl.rate, apparent_left, dr.rate,
                                       apparent_right,
                                       arena.action_name(shared))});
          }
        }
      }
      return out;
    }
    case pepa::Op::kConstant:
      return moves(arena.body(node.constant));
  }
  return out;
}

pepa::Rate RateRebinder::Point::compute_apparent(pepa::ProcessId base,
                                                 pepa::ActionId action) {
  const pepa::ProcessArena& arena = owner_.model_.arena();
  const pepa::ProcessNode& node = arena.node(base);
  switch (node.op) {
    case pepa::Op::kStop:
      return pepa::Rate();
    case pepa::Op::kPrefix:
      return node.action == action ? prefix_rate(base, node) : pepa::Rate();
    case pepa::Op::kChoice:
      return apparent(node.left, action)
          .plus(apparent(node.right, action), arena.action_name(action));
    case pepa::Op::kHiding:
      if (action == pepa::kTau) {
        pepa::Rate sum = apparent(node.left, pepa::kTau);
        for (const pepa::ActionId hidden : node.action_set) {
          sum = sum.plus(apparent(node.left, hidden), "tau");
        }
        return sum;
      }
      if (pepa::set_contains(node.action_set, action)) return pepa::Rate();
      return apparent(node.left, action);
    case pepa::Op::kCooperation: {
      const pepa::Rate left = apparent(node.left, action);
      const pepa::Rate right = apparent(node.right, action);
      if (action != pepa::kTau &&
          pepa::set_contains(node.action_set, action)) {
        return pepa::Rate::min(left, right);
      }
      return left.plus(right, arena.action_name(action));
    }
    case pepa::Op::kConstant:
      return apparent(arena.body(node.constant), action);
  }
  return pepa::Rate();
}

pepa::ProcessId RateRebinder::Point::term(pepa::ProcessId base) {
  if (identity_) return base;
  if (const auto it = terms_.find(base); it != terms_.end()) {
    return it->second;
  }
  pepa::ProcessArena& arena = owner_.model_.arena();
  // Copy: interning below may grow the arena and move nothing (ids are
  // stable), but the reference could alias a node we are about to hash.
  const pepa::ProcessNode node = arena.node(base);
  pepa::ProcessId out = base;
  switch (node.op) {
    case pepa::Op::kStop:
      break;
    case pepa::Op::kPrefix: {
      pepa::Rate rate = node.rate;
      if (const auto swept = owner_.swept_.find(base);
          swept != owner_.swept_.end()) {
        const double value =
            swept->second.second * values_[swept->second.first];
        rate = node.rate.is_passive() ? pepa::Rate::passive(value)
                                      : pepa::Rate::active(value);
      }
      out = arena.prefix(node.action, rate, term(node.left));
      break;
    }
    case pepa::Op::kChoice:
      out = arena.choice(term(node.left), term(node.right));
      break;
    case pepa::Op::kCooperation:
      out = arena.cooperation(term(node.left), node.action_set,
                              term(node.right));
      break;
    case pepa::Op::kHiding:
      out = arena.hiding(term(node.left), node.action_set);
      break;
    case pepa::Op::kConstant:
      out = arena.constant(constant(node.constant));
      break;
  }
  terms_.emplace(base, out);
  return out;
}

pepa::ConstantId RateRebinder::Point::constant(pepa::ConstantId base) {
  if (identity_) return base;
  if (base >= owner_.constant_affected_.size() ||
      owner_.constant_affected_[base] == 0) {
    return base;  // definition untouched by the sweep: share it
  }
  if (const auto it = constants_.find(base); it != constants_.end()) {
    return it->second;
  }
  pepa::ProcessArena& arena = owner_.model_.arena();
  const pepa::ConstantId fresh = arena.declare(
      util::msg(arena.constant_name(base), "@sw", serial_));
  // Record the mapping before remapping the body so recursive definitions
  // (Client = (think, r).Client) close back onto the fresh constant instead
  // of recursing forever.
  constants_.emplace(base, fresh);
  arena.define(fresh, term(arena.body(base)));
  return fresh;
}

}  // namespace choreo::sweep
