#include "sweep/runner.hpp"

#include <chrono>
#include <exception>
#include <functional>
#include <iomanip>
#include <memory>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::sweep {

namespace {

/// CSV field quoting (RFC 4180 style) for the error column.
std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (const char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void json_string(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string hex_fingerprint(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return "exact";
    case Backend::kFluid:
      return "fluid";
  }
  return "?";
}

SharedStructure::SharedStructure(pepa::Model& model,
                                 std::vector<std::string> parameters,
                                 const pepa::DeriveOptions& options)
    : rebinder_(model, std::move(parameters)),
      semantics_(model.arena()),
      space_(pepa::StateSpace::derive(semantics_, model.system(), options)),
      allow_top_level_passive_(options.allow_top_level_passive) {}

std::vector<double> SharedStructure::rebind_rates(RateRebinder::Point& point) {
  const std::vector<pepa::StateTransition>& transitions = space_.transitions();
  std::vector<double> rates(transitions.size());
  if (point.is_identity()) {
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      rates[i] = transitions[i].rate;
    }
    return rates;
  }
  const pepa::StateTransition* base = transitions.data();
  for (std::size_t state = 0; state < space_.state_count(); ++state) {
    const std::span<const pepa::StateTransition> row = space_.lts().from(state);
    const std::size_t offset = static_cast<std::size_t>(row.data() - base);
    // The rate-only SOS walk repeats the recursion that derived this state,
    // so its moves align index-for-index with the base row; the action
    // check below is a cheap guard on that invariant.
    const std::vector<RatedMove>& moves =
        point.moves(space_.state_term(state));
    std::size_t j = 0;
    for (const RatedMove& move : moves) {
      if (move.rate.is_passive()) {
        // The base derivation either dropped this move under the same
        // option or refused to derive at all; mirror the filter so the
        // remaining moves keep their row positions.
        if (allow_top_level_passive_) continue;
        throw util::ModelError(
            "sweep rebind produced a top-level passive move the base "
            "derivation did not have");
      }
      if (j >= row.size() || row[j].action != move.action) {
        throw util::ModelError(util::msg(
            "sweep point does not preserve the model structure at state ",
            state, "; the derived state space cannot be reused"));
      }
      rates[offset + j] = move.rate.value();
      ++j;
    }
    if (j != row.size()) {
      throw util::ModelError(util::msg(
          "sweep point does not preserve the model structure at state ",
          state, "; the derived state space cannot be reused"));
    }
  }
  return rates;
}

ctmc::Generator SharedStructure::generator(
    std::span<const double> rates) const {
  const std::vector<pepa::StateTransition>& transitions = space_.transitions();
  std::vector<ctmc::RatedTransition> rated(transitions.size());
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    rated[i] = {transitions[i].source, transitions[i].target, rates[i]};
  }
  return ctmc::Generator::build(space_.state_count(), rated);
}

std::vector<double> SharedStructure::throughputs(
    std::span<const double> distribution, std::span<const double> rates) const {
  const pepa::ProcessArena& arena = semantics_.arena();
  const std::vector<pepa::StateTransition>& transitions = space_.transitions();
  std::vector<double> out(arena.action_count() - 1, 0.0);
  for (pepa::ActionId action = 1; action < arena.action_count(); ++action) {
    // Same slice, same emission order as TransitionSystem::action_throughput
    // — bit-identical to the base-space measure at the base point.
    double sum = 0.0;
    for (const std::size_t i : space_.lts().action_transitions(action)) {
      sum += distribution[transitions[i].source] * rates[i];
    }
    out[action - 1] = sum;
  }
  return out;
}

std::vector<std::string> SharedStructure::measure_names() const {
  const pepa::ProcessArena& arena = semantics_.arena();
  std::vector<std::string> names;
  names.reserve(arena.action_count() - 1);
  for (pepa::ActionId action = 1; action < arena.action_count(); ++action) {
    names.push_back("throughput:" + arena.action_name(action));
  }
  return names;
}

SweepTable sweep(pepa::Model& model, const SweepSpec& spec,
                 const SweepOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  spec.validate();

  SweepTable table;
  table.axes = spec.parameter_names();
  const std::size_t points = spec.point_count();
  table.rows.resize(points);
  for (std::size_t p = 0; p < points; ++p) {
    table.rows[p].values = spec.point(p);
  }

  // Everything below is shared, read-only state for the point evaluators;
  // per-point mutable context (the remap memo) lives in each task.
  std::unique_ptr<SharedStructure> shared;
  std::unique_ptr<RateRebinder> rebinder;
  std::unique_ptr<pepa::Semantics> fluid_semantics;
  std::function<void(std::size_t)> evaluate;

  if (options.backend == Backend::kExact) {
    pepa::DeriveOptions derive = options.derive;
    if (derive.budget == nullptr) derive.budget = options.budget;
    shared = std::make_unique<SharedStructure>(model, table.axes, derive);
    table.structure = shared->structure();
    table.derivations = 1;
    table.derive_stats = shared->space().stats();
    table.state_count = shared->space().state_count();
    table.transition_count = shared->space().transitions().size();
    table.measures = shared->measure_names();

    ctmc::SolveOptions solver = options.solver;
    solver.budget = options.budget;
    evaluate = [&table, structure = shared.get(), solver,
                budget = options.budget](std::size_t p) {
      SweepRow& row = table.rows[p];
      try {
        if (budget != nullptr) budget->check("sweep");
        RateRebinder::Point point = structure->rebinder().at(row.values);
        const std::vector<double> rates = structure->rebind_rates(point);
        const ctmc::Generator generator = structure->generator(rates);
        const ctmc::SolveResult solved = ctmc::steady_state(generator, solver);
        row.measures = structure->throughputs(solved.distribution, rates);
      } catch (const util::InterruptedError&) {
        throw;  // aborts the sweep: the budget governs the whole run
      } catch (const util::BudgetError&) {
        throw;
      } catch (const util::Error& error) {
        row.error = error.what();
      }
    };
  } else {
    rebinder = std::make_unique<RateRebinder>(model, table.axes);
    table.structure = rebinder->structure();
    table.derivations = 0;  // the fluid backend never derives a state space
    fluid_semantics = std::make_unique<pepa::Semantics>(model.arena());
    const pepa::ProcessArena& arena = model.arena();
    table.measures.reserve(arena.action_count() - 1);
    for (pepa::ActionId action = 1; action < arena.action_count(); ++action) {
      table.measures.push_back("throughput:" + arena.action_name(action));
    }

    fluid::FluidOptions fluid = options.fluid;
    fluid.ode.budget = options.budget;
    const pepa::ProcessId base_system = model.system();
    const std::size_t columns = arena.action_count() - 1;
    evaluate = [&table, binder = rebinder.get(),
                semantics = fluid_semantics.get(), fluid, base_system, columns,
                budget = options.budget](std::size_t p) {
      SweepRow& row = table.rows[p];
      try {
        if (budget != nullptr) budget->check("sweep");
        RateRebinder::Point point = binder->at(row.values);
        const fluid::FluidResult result = fluid::solve_steady(
            *semantics, point.term(base_system), fluid);
        row.measures.assign(columns, 0.0);
        for (const auto& [action, value] : result.throughputs) {
          if (action != pepa::kTau) row.measures[action - 1] = value;
        }
      } catch (const util::InterruptedError&) {
        throw;
      } catch (const util::BudgetError&) {
        throw;
      } catch (const util::Error& error) {
        row.error = error.what();
      }
    };
  }

  if (options.threads == 1) {
    for (std::size_t p = 0; p < points; ++p) evaluate(p);
  } else {
    util::ThreadPool& pool =
        options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
    std::vector<std::future<void>> futures;
    futures.reserve(points);
    for (std::size_t p = 0; p < points; ++p) {
      futures.push_back(pool.submit([&evaluate, p] { evaluate(p); }));
    }
    std::exception_ptr first;
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  table.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return table;
}

std::string SweepTable::to_csv() const {
  std::ostringstream out;
  out << "# structure=" << hex_fingerprint(structure)
      << " derivations=" << derivations << " states=" << state_count
      << " transitions=" << transition_count
      << " points_from_cache=" << points_from_cache << '\n';
  std::vector<std::string> header;
  header.insert(header.end(), axes.begin(), axes.end());
  header.insert(header.end(), measures.begin(), measures.end());
  header.push_back("error");
  out << util::join(header, ",") << '\n';
  for (const SweepRow& row : rows) {
    std::vector<std::string> fields;
    fields.reserve(row.values.size() + measures.size() + 1);
    for (const double value : row.values) {
      fields.push_back(util::format_double(value));
    }
    for (std::size_t m = 0; m < measures.size(); ++m) {
      fields.push_back(m < row.measures.size()
                           ? util::format_double(row.measures[m])
                           : "");
    }
    fields.push_back(csv_field(row.error));
    out << util::join(fields, ",") << '\n';
  }
  return out.str();
}

std::string SweepTable::to_json() const {
  std::ostringstream out;
  out << "{\n  \"structure\": ";
  json_string(out, hex_fingerprint(structure));
  out << ",\n  \"derivations\": " << derivations
      << ",\n  \"states\": " << state_count
      << ",\n  \"transitions\": " << transition_count
      << ",\n  \"points_from_cache\": " << points_from_cache
      << ",\n  \"seconds\": " << util::format_double(seconds)
      << ",\n  \"axes\": [";
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a != 0) out << ", ";
    json_string(out, axes[a]);
  }
  out << "],\n  \"measures\": [";
  for (std::size_t m = 0; m < measures.size(); ++m) {
    if (m != 0) out << ", ";
    json_string(out, measures[m]);
  }
  out << "],\n  \"rows\": [\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const SweepRow& row = rows[r];
    out << "    {\"values\": [";
    for (std::size_t v = 0; v < row.values.size(); ++v) {
      if (v != 0) out << ", ";
      out << util::format_double(row.values[v]);
    }
    out << "], \"measures\": [";
    for (std::size_t m = 0; m < row.measures.size(); ++m) {
      if (m != 0) out << ", ";
      out << util::format_double(row.measures[m]);
    }
    out << "]";
    if (!row.error.empty()) {
      out << ", \"error\": ";
      json_string(out, row.error);
    }
    out << "}" << (r + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace choreo::sweep
