// Process-wide observability for the analysis service: counters, gauges and
// fixed-bucket latency histograms behind a named registry.
//
// The paper's Choreographer is interactive — a designer submits a model and
// waits for the reflected results — so the service layer needs to answer
// "how long do analyses take, how deep is the queue, how often does the
// cache save a solve?" without a debugger.  The registry renders in the
// Prometheus text exposition format (counters end in _total, histograms
// emit cumulative _bucket{le=...} series plus _sum/_count) so the output
// can be scraped as-is, and offers a structured snapshot() for tests and
// in-process consumers such as the throughput bench.
//
// All mutation paths are lock-free atomics; registration takes a mutex but
// returns stable references, so callers register once and update hot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace choreo::service {

/// A monotonically increasing count (events, hits, retries, ...).
class Counter {
 public:
  void increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// An instantaneous signed level (queue depth, cache bytes, ...).
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` when larger — a concurrent high-water
  /// mark (peak frontier size, peak queue depth, ...).
  void record_max(std::int64_t value) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (current < value && !value_.compare_exchange_weak(
                                  current, value, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A cumulative histogram over fixed upper bounds (Prometheus `le` style):
/// bucket i counts observations <= bounds[i], with an implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Upper bounds suited to analysis latencies: 100us .. 30s.
  static const std::vector<double>& default_latency_bounds();

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (bounds().size() + 1 buckets).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimates the q-quantile (q in [0,1]) by linear interpolation within
  /// the bucket that crosses the target rank; returns 0 when empty.  The
  /// +Inf bucket reports its lower bound (the largest finite bound).
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A point-in-time copy of one metric, used by Registry::snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  /// Counter/gauge value (histograms use the fields below).
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // per-bucket, non-cumulative
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A named family of metrics.  Lookup-or-create is idempotent: asking for
/// an existing name with the same kind returns the same object; a kind
/// mismatch throws util::Error.
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds =
                           Histogram::default_latency_bounds());

  /// Prometheus text exposition (# HELP / # TYPE preambles, _bucket series
  /// with cumulative counts and an explicit +Inf bucket).  Metrics appear
  /// in name order.
  std::string exposition() const;

  /// Point-in-time copy of every registered metric, in name order.
  std::vector<MetricSample> snapshot() const;

  /// Drops every registered metric (outstanding references dangle; meant
  /// for test isolation, not for live registries).
  void clear();

  /// The process-wide registry the service components default to.
  static Registry& global();

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace choreo::service
