// The concurrent analysis scheduler: many Figure-4 pipeline runs in
// flight at once, against one worker pool, one bounded queue and one
// content-addressed result cache.
//
//   Scheduler scheduler({.workers = 4, .cache = &cache});
//   JobHandle handle = scheduler.submit(request);   // blocks when full
//   const JobResult& result = handle.wait();
//
// Semantics:
//  - submit() applies backpressure: it blocks while `queue_capacity` jobs
//    are already queued or running (so a manifest of thousands of jobs
//    holds a bounded amount of memory).
//  - Timeouts are wall-clock from submission and enforced cooperatively
//    through a per-job util::Budget threaded into the pipeline: the
//    deadline is checked when the job is dequeued, at every pipeline
//    stage boundary, once per breadth-first level inside state-space
//    derivation, every few solver iterations, and during retry backoff.
//  - cancel() marks the job's budget; a queued job is discarded when
//    dequeued, a running one aborts at the next governance check (within
//    one frontier level / a handful of solver iterations).  Interrupted
//    jobs carry partial derivation statistics
//    (JobResult::partial_derive_stats) taken from the budget accounting.
//  - Jobs that fail on the transient max_states safety bound ("state-space
//    explosion") are retried with exponential backoff one rung down the
//    aggregation ladder (chor::Aggregation): the full chain first falls
//    back to the exact strong-equivalence quotient, then to the fluid
//    mean-field ODE, which never expands a state space; the state budget
//    may also be scaled by `retry_state_budget_factor`.  The level that
//    finally succeeded is recorded in JobResult::aggregation_used.
//  - Results of successful runs are stored in the cache (when one is
//    attached); an incoming job whose canonical key hits returns the
//    cached result byte-for-byte without touching the pipeline.
//
// The destructor drains: queued jobs still run (or resolve as cancelled /
// timed out) before the workers join, so every JobHandle is eventually
// signalled.
#pragma once

#include <cstddef>
#include <memory>

#include "service/cache.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "util/budget.hpp"

namespace choreo::service {

struct SchedulerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency (at least 1).
  std::size_t workers = 0;
  /// submit() blocks while this many jobs are queued or running.
  std::size_t queue_capacity = 64;
  /// Default per-job timeout (seconds from submission); 0 disables it.
  double default_timeout_seconds = 0.0;
  /// Extra attempts for jobs that hit the max_states safety bound.
  std::size_t max_retries = 1;
  /// First backoff sleep; doubles per retry.
  double retry_backoff_seconds = 0.01;
  /// Multiplier applied to options.max_states on every retry (>= 1).
  double retry_state_budget_factor = 1.0;
  /// Result cache consulted before running and filled after; optional.
  ResultCache* cache = nullptr;
  /// Metrics registry; nullptr means the global registry.
  Registry* registry = nullptr;
  /// Exploration lanes applied to jobs that leave
  /// AnalysisOptions::derive_threads at 0.  Defaults to 1 (sequential per
  /// job): the scheduler already runs whole jobs concurrently, so lane
  /// parallelism inside each derivation would oversubscribe the pool.
  std::size_t derive_threads = 1;
};

namespace detail {
struct JobState;
}  // namespace detail

/// The client-side view of a submitted job.  Copyable; all copies refer to
/// the same job.
class JobHandle {
 public:
  JobStatus status() const;
  /// Requests cancellation; a no-op once the job is terminal.
  void cancel();
  /// Live accounting snapshot from the job's resource budget: states and
  /// bytes charged by derivation, breadth-first levels completed, solver
  /// iterations.  Safe to poll while the job runs.
  util::BudgetUsage progress() const;
  /// Blocks until the job is terminal, then returns a copy of its result
  /// (a copy so that waiting on a temporary handle is safe).
  JobResult wait();

 private:
  friend class Scheduler;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::JobState> state_;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});
  /// Drains the queue (every job reaches a terminal status), then joins.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a job, blocking while the service is at queue_capacity.
  JobHandle submit(JobRequest request);

  /// Jobs submitted but not yet terminal.
  std::size_t in_flight() const;

  std::size_t worker_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace choreo::service
