// Analysis jobs: the unit of work of the concurrent analysis service.
//
// A JobRequest wraps one Figure-4 pipeline run — a project document (or the
// path of one) plus AnalysisOptions — and a JobResult carries everything a
// client needs back: the AnalysisReport, the annotated project XMI as
// serialised bytes (so repeated runs can be compared byte-for-byte and the
// cache can replay them), the error string for failed jobs and a timing
// breakdown of the queue/run/pipeline stages.
//
// Lifecycle (JobStatus):
//
//   queued --> running --> done
//                      \-> failed      (pipeline threw; see JobResult.error)
//                      \-> timed_out   (wall-clock deadline passed)
//          \----------\-> cancelled    (JobHandle::cancel, before or during)
//
// All transitions are driven by the Scheduler; JobHandle (scheduler.hpp) is
// the client-side view.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "choreographer/pipeline.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "xml/dom.hpp"

namespace choreo::service {

enum class JobStatus {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kTimedOut,
};

const char* to_string(JobStatus status);

/// True for the four states that end a job's lifecycle.
bool is_terminal(JobStatus status);

/// A design-space sweep job: evaluate one PEPA model at every point of a
/// SweepSpec, deriving the state space once (the points share the
/// rate-stripped structure) and re-solving per point.  Submitted as
/// JobRequest::sweep; the project/XMI fields of the request are unused.
struct SweepJobRequest {
  /// The PEPA source file to sweep.
  std::string model_path;
  sweep::SweepSpec spec;
  sweep::Backend backend = sweep::Backend::kExact;
  /// Per-point evaluation lanes inside the job; 1 keeps the sweep on the
  /// job's own worker (the scheduler default, matching derive_threads).
  std::size_t threads = 1;
  /// Table serialisation when JobRequest::output_path is set.
  enum class Format { kCsv, kJson };
  Format format = Format::kCsv;
};

struct JobRequest {
  /// Display name used by reports and the batch tool; defaults to the
  /// input path or "<inline>".
  std::string name;
  /// The project document to analyse.  Ignored when `input_path` is set
  /// (the scheduler then parses the file inside the job).
  xml::Document project;
  std::optional<std::string> input_path;
  /// When set, the annotated project XMI is also written to this path.
  std::optional<std::string> output_path;
  chor::AnalysisOptions options;
  /// Wall-clock budget measured from submission, spanning queue wait,
  /// retries and backoff.  Negative means "use the scheduler default";
  /// 0 disables the deadline.
  double timeout_seconds = -1.0;
  /// When set, the job is a design-space sweep over a PEPA file instead of
  /// a Figure-4 pipeline run; `options.solver` and the fluid knobs still
  /// apply per point, and the result lands in JobResult::sweep.
  std::optional<SweepJobRequest> sweep;
};

struct JobTimings {
  /// Submission to first execution attempt.
  double queued_seconds = 0.0;
  /// Execution (including retries and backoff sleeps).
  double run_seconds = 0.0;
  /// Pipeline stage totals folded over the report's graphs (clocks and
  /// discovery counters sum, peak frontier takes the maximum).
  chor::StageTimings stages;
};

struct JobResult {
  JobStatus status = JobStatus::kQueued;
  chor::AnalysisReport report;
  /// The annotated project document, serialised with the default
  /// xml::WriteOptions.  Byte-identical across cache hits.
  std::string annotated_xmi;
  /// Human-readable failure reason (failed / timed_out / cancelled).
  std::string error;
  JobTimings timings;
  /// Derivation progress reconstructed from the job's resource budget;
  /// most useful for cancelled / timed-out jobs, where it shows how far
  /// exploration got before the interruption (levels, peak frontier, and
  /// states discovered in dedup_misses).  Zeroed for cache hits and jobs
  /// that never ran.
  pepa::DeriveStats partial_derive_stats;
  /// Execution attempts (0 for cache hits and never-ran jobs).
  std::size_t attempts = 0;
  /// Aggregation level of the attempt that produced the report — deeper
  /// than the request's own level when the retry ladder downgraded the
  /// job (kNone -> kExact -> kFluid).  Cache hits report the requested
  /// level (the cache key includes it, so they always match).
  chor::Aggregation aggregation_used = chor::Aggregation::kNone;
  /// Whether the result was served from the content-addressed cache.  A
  /// sweep job sets this only when *every* point was a cache hit; partial
  /// hits are counted in sweep->points_from_cache.
  bool from_cache = false;
  /// The result table of a sweep job (JobRequest::sweep); unset otherwise.
  std::optional<sweep::SweepTable> sweep;
};

}  // namespace choreo::service
