#include "service/cache.hpp"

#include <sstream>

#include "ctmc/steady_state.hpp"
#include "uml/layout.hpp"
#include "util/strings.hpp"
#include "xml/write.hpp"

namespace choreo::service {

std::string cache_key(const xml::Document& project,
                      const chor::AnalysisOptions& options) {
  // The Poseidon preprocessor's split: drawing-tool layout cannot affect
  // analysis results, so it must not affect the key either.
  return cache_key_for_model(uml::preprocess(project).model, options);
}

std::string cache_key_for_model(const xml::Document& model,
                                const chor::AnalysisOptions& options) {
  xml::WriteOptions compact;
  compact.indent = 0;
  compact.declaration = false;

  std::ostringstream key;
  key << xml::to_string(model, compact) << '\n';
  key << "solver=" << ctmc::method_name(options.solver.method)
      << " tolerance=" << util::format_double(options.solver.tolerance)
      << " max_iterations=" << options.solver.max_iterations
      << " relaxation=" << util::format_double(options.solver.relaxation)
      << " dense_cutoff=" << options.solver.dense_cutoff
      << " default_rate=" << util::format_double(options.default_rate)
      << " max_states=" << options.max_states
      // Keying the aggregation level keeps quotient-direct artifacts
      // (exact: quotient-sized counts, canonical representatives) from
      // ever colliding with full-chain or fluid results.
      << " aggregation=" << static_cast<int>(options.aggregation);
  // The fluid knobs shape results only at the fluid level; keying them
  // unconditionally would split identical exact analyses apart.
  if (options.aggregation == chor::Aggregation::kFluid) {
    key << " fluid_rel_tol=" << util::format_double(options.fluid_rel_tol)
        << " fluid_abs_tol=" << util::format_double(options.fluid_abs_tol)
        << " fluid_t_end=" << util::format_double(options.fluid_t_end);
  }
  // derive_threads is deliberately absent: exploration is deterministic, so
  // results at any lane count are interchangeable cache-wise.
  // Rates apply in file order (later assignments win), so the order is
  // part of the content.
  for (const auto& [activity, rate] : options.rates) {
    key << " rate:" << activity << '=' << util::format_double(rate);
  }
  return std::move(key).str();
}

std::uint64_t fingerprint(const std::string& key) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const unsigned char byte : key) {
    hash ^= byte;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

ResultCache::ResultCache(const CacheOptions& options)
    : max_bytes_(options.max_bytes),
      hits_((options.registry ? *options.registry : Registry::global())
                .counter("choreo_cache_hits_total",
                         "Analyses served from the result cache")),
      misses_((options.registry ? *options.registry : Registry::global())
                  .counter("choreo_cache_misses_total",
                           "Analyses that had to run the pipeline")),
      evictions_((options.registry ? *options.registry : Registry::global())
                     .counter("choreo_cache_evictions_total",
                              "Entries dropped to stay within the byte "
                              "budget")),
      oversize_((options.registry ? *options.registry : Registry::global())
                    .counter("choreo_cache_oversize_total",
                             "put() calls rejected because one entry "
                             "exceeds the whole byte budget")),
      bytes_gauge_((options.registry ? *options.registry : Registry::global())
                       .gauge("choreo_cache_bytes",
                              "Bytes currently held by the result cache")),
      entries_gauge_((options.registry ? *options.registry : Registry::global())
                         .gauge("choreo_cache_entries",
                                "Entries currently held by the result "
                                "cache")) {}

std::optional<CachedAnalysis> ResultCache::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.increment();
    return std::nullopt;
  }
  hits_.increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->analysis;
}

namespace {

std::size_t node_bytes(const xml::Node& node) {
  std::size_t bytes = sizeof(node) + node.name().size() +
                      node.content().size();
  for (const xml::Attribute& attribute : node.attributes()) {
    bytes += attribute.name.size() + attribute.value.size();
  }
  for (const xml::Node& child : node.children()) {
    bytes += node_bytes(child);
  }
  return bytes;
}

}  // namespace

std::size_t ResultCache::entry_bytes(const std::string& key,
                                     const CachedAnalysis& analysis) {
  std::size_t bytes =
      key.size() + sizeof(Entry) + node_bytes(analysis.reflected_model.root());
  for (const auto& graph : analysis.report.activity_graphs) {
    bytes += graph.graph_name.size() + sizeof(graph);
    for (const auto& [name, value] : graph.throughputs) {
      bytes += name.size() + sizeof(value);
    }
  }
  for (const auto& machines : analysis.report.state_machines) {
    bytes += sizeof(machines);
    for (const auto& row : machines.probabilities) {
      bytes += row.size() * sizeof(double);
    }
    for (const auto& [name, value] : machines.throughputs) {
      bytes += name.size() + sizeof(value);
    }
  }
  return bytes;
}

void ResultCache::put(const std::string& key, const CachedAnalysis& analysis) {
  const std::size_t bytes = entry_bytes(key, analysis);
  std::lock_guard lock(mutex_);
  if (bytes > max_bytes_) {
    // Dropped silently before: the counter makes an over-budget entry
    // observable, and the gauges are refreshed so they never go stale on
    // a cache that only ever sees oversize entries.
    oversize_.increment();
    bytes_gauge_.set(static_cast<std::int64_t>(bytes_));
    entries_gauge_.set(static_cast<std::int64_t>(lru_.size()));
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, analysis, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  evict_until_within_budget();
  bytes_gauge_.set(static_cast<std::int64_t>(bytes_));
  entries_gauge_.set(static_cast<std::int64_t>(lru_.size()));
}

void ResultCache::evict_until_within_budget() {
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.increment();
  }
}

std::size_t ResultCache::entry_count() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::size_t ResultCache::byte_count() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

}  // namespace choreo::service
