#include "service/job.hpp"

namespace choreo::service {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kTimedOut: return "timed_out";
  }
  return "unknown";
}

bool is_terminal(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
    case JobStatus::kRunning:
      return false;
    case JobStatus::kDone:
    case JobStatus::kFailed:
    case JobStatus::kCancelled:
    case JobStatus::kTimedOut:
      return true;
  }
  return false;
}

}  // namespace choreo::service
