// Content-addressed result cache for the analysis service.
//
// Designers iterate: they nudge a box in the drawing tool, save, and
// re-submit a project whose *model* content is unchanged.  The cache key
// therefore canonicalises exactly the way the paper's Poseidon
// preprocessor does — the project is split into metamodel content and tool
// layout, and only the metamodel half (plus the analysis options that can
// change results) is keyed.  Layout-only edits are cache hits; any change
// to structure, rates, stereotypes or solver settings is a miss.
//
// Symmetrically, entries store the *reflected model document* (the
// pipeline output before the postprocessor re-merges layout) rather than
// the final annotated project: on a hit the scheduler merges the
// requester's own layout, so a designer never receives somebody else's
// diagram arrangement back.
//
// Entries are evicted least-recently-used under a byte budget.
// Hit/miss/eviction counters and byte/entry gauges are kept in a metrics
// Registry.  All operations are thread-safe.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "choreographer/pipeline.hpp"
#include "service/metrics.hpp"
#include "xml/dom.hpp"

namespace choreo::service {

/// What one successful analysis contributes to the cache: the report plus
/// the reflected (annotated, layout-free) model document.
struct CachedAnalysis {
  chor::AnalysisReport report;
  xml::Document reflected_model;
};

/// The canonical cache key of a (project, options) pair: the layout-
/// stripped model XMI serialised compactly, concatenated with a
/// deterministic rendering of every result-affecting AnalysisOption.
/// Keys compare by content, so two projects that differ only in tool
/// layout share a key.
std::string cache_key(const xml::Document& project,
                      const chor::AnalysisOptions& options);

/// As cache_key, for a document whose layout is already stripped (the
/// `model` half of uml::preprocess).
std::string cache_key_for_model(const xml::Document& model,
                                const chor::AnalysisOptions& options);

/// 64-bit FNV-1a fingerprint of a key, for display and logs.
std::uint64_t fingerprint(const std::string& key);

struct CacheOptions {
  /// Byte budget for stored entries (key + serialised reflected model +
  /// report).
  std::size_t max_bytes = 256 << 20;
  /// Where hit/miss/eviction counters live; nullptr means the global
  /// registry.
  Registry* registry = nullptr;
};

class ResultCache {
 public:
  explicit ResultCache(const CacheOptions& options = {});

  /// Returns a copy of the cached analysis and refreshes its recency, or
  /// nullopt on miss.  Counts a hit or a miss either way.
  std::optional<CachedAnalysis> get(const std::string& key);

  /// Stores (or replaces) the entry, then evicts least-recently-used
  /// entries until the budget holds.  An entry larger than the whole
  /// budget is not stored.
  void put(const std::string& key, const CachedAnalysis& analysis);

  std::size_t entry_count() const;
  std::size_t byte_count() const;

 private:
  static std::size_t entry_bytes(const std::string& key,
                                 const CachedAnalysis& analysis);
  /// Called with mutex_ held.
  void evict_until_within_budget();

  struct Entry {
    std::string key;
    CachedAnalysis analysis;
    std::size_t bytes = 0;
  };

  mutable std::mutex mutex_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  /// Most-recently-used first.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;

  Counter& hits_;
  Counter& misses_;
  Counter& evictions_;
  Counter& oversize_;
  Gauge& bytes_gauge_;
  Gauge& entries_gauge_;
};

}  // namespace choreo::service
