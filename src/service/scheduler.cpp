#include "service/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "pepa/parser.hpp"
#include "sweep/rebind.hpp"
#include "uml/layout.hpp"
#include "uml/xmi.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "xml/parse.hpp"
#include "xml/write.hpp"

namespace choreo::service {

namespace {

using Clock = std::chrono::steady_clock;

/// The retryable failure: a resource bound (max_states or a byte budget)
/// tripped — typed since the budget taxonomy landed, so no string matching.
bool is_state_bound_failure(const util::Error& error) {
  return dynamic_cast<const util::BudgetError*>(&error) != nullptr;
}

/// What the job's Budget can reconstruct of an interrupted derivation:
/// discovered states, levels and peak frontier (dedup hits and wall clock
/// stay with the abandoned DeriveStats and are reported as zero).
pepa::DeriveStats partial_stats(const util::BudgetUsage& usage) {
  pepa::DeriveStats stats;
  stats.levels = usage.levels;
  stats.peak_frontier = usage.peak_frontier;
  stats.dedup_misses = usage.states;
  return stats;
}

/// Exception-safe +delta/-delta on a gauge; sweep evaluation can be
/// interrupted mid-flight and the in-flight gauge must not leak.
class GaugeDelta {
 public:
  GaugeDelta(Gauge& gauge, std::int64_t delta) : gauge_(gauge), delta_(delta) {
    gauge_.add(delta_);
  }
  ~GaugeDelta() { gauge_.add(-delta_); }
  GaugeDelta(const GaugeDelta&) = delete;
  GaugeDelta& operator=(const GaugeDelta&) = delete;

 private:
  Gauge& gauge_;
  std::int64_t delta_;
};

std::string hex64(std::uint64_t value) {
  std::ostringstream stream;
  stream << std::hex << value;
  return stream.str();
}

/// The result-affecting options of one sweep point, rendered
/// deterministically for the per-point cache key.  The model itself is
/// covered by the structural and rate fingerprints, so two sweeps that
/// slice the same design space differently still share entries
/// point-by-point.
std::string sweep_options_key(const SweepJobRequest& job,
                              const chor::AnalysisOptions& options) {
  std::ostringstream key;
  key << "backend=" << sweep::to_string(job.backend)
      << " solver=" << ctmc::method_name(options.solver.method)
      << " tolerance=" << util::format_double(options.solver.tolerance)
      << " max_iterations=" << options.solver.max_iterations
      << " relaxation=" << util::format_double(options.solver.relaxation)
      << " dense_cutoff=" << options.solver.dense_cutoff;
  if (job.backend == sweep::Backend::kFluid) {
    key << " fluid_rel_tol=" << util::format_double(options.fluid_rel_tol)
        << " fluid_abs_tol=" << util::format_double(options.fluid_abs_tol)
        << " fluid_t_end=" << util::format_double(options.fluid_t_end);
  }
  return key.str();
}

}  // namespace

namespace detail {

struct JobState {
  JobRequest request;
  Clock::time_point submitted;
  /// The job's resource governor: deadline, cancellation flag and
  /// state/byte accounting, threaded through AnalysisOptions into the
  /// derivation and solver loops.
  util::Budget budget;

  mutable std::mutex mutex;
  std::condition_variable terminal_cv;
  JobStatus status = JobStatus::kQueued;  // guarded by mutex
  JobResult result;                       // valid once status is terminal
};

}  // namespace detail

using detail::JobState;

JobStatus JobHandle::status() const {
  std::lock_guard lock(state_->mutex);
  return state_->status;
}

void JobHandle::cancel() { state_->budget.request_cancel(); }

util::BudgetUsage JobHandle::progress() const {
  return state_->budget.usage();
}

JobResult JobHandle::wait() {
  std::unique_lock lock(state_->mutex);
  state_->terminal_cv.wait(lock,
                           [&] { return is_terminal(state_->status); });
  return state_->result;
}

struct Scheduler::Impl {
  explicit Impl(const SchedulerOptions& scheduler_options)
      : options(scheduler_options),
        registry(scheduler_options.registry ? *scheduler_options.registry
                                            : Registry::global()),
        submitted_total(registry.counter("choreo_jobs_submitted_total",
                                         "Jobs accepted by the scheduler")),
        done_total(registry.counter("choreo_jobs_done_total",
                                    "Jobs finished successfully")),
        failed_total(registry.counter("choreo_jobs_failed_total",
                                      "Jobs finished with an error")),
        cancelled_total(registry.counter("choreo_jobs_cancelled_total",
                                         "Jobs cancelled by the client")),
        timed_out_total(registry.counter("choreo_jobs_timed_out_total",
                                         "Jobs that exceeded their deadline")),
        retries_total(registry.counter(
            "choreo_job_retries_total",
            "Re-runs after the max_states safety bound tripped")),
        queue_depth(registry.gauge("choreo_queue_depth",
                                   "Jobs waiting for a worker")),
        running_gauge(registry.gauge("choreo_jobs_running",
                                     "Jobs currently executing")),
        queue_seconds(registry.histogram("choreo_job_queue_seconds",
                                         "Submission-to-execution wait")),
        run_seconds(registry.histogram("choreo_job_run_seconds",
                                       "Execution time incl. retries")),
        total_seconds(registry.histogram("choreo_job_seconds",
                                         "Submission-to-terminal latency")),
        extract_seconds(registry.histogram("choreo_stage_extract_seconds",
                                           "Model extraction per job")),
        derive_seconds(registry.histogram(
            "choreo_stage_derive_seconds",
            "State-space exploration per job")),
        solve_seconds(registry.histogram("choreo_stage_solve_seconds",
                                         "CTMC solution per job")),
        reflect_seconds(registry.histogram(
            "choreo_stage_reflect_seconds",
            "Measure computation + reflection per job")),
        explore_rate(registry.histogram(
            "choreo_explore_states_per_second",
            "States discovered per exploration second, per job",
            {1e2, 1e3, 1e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7})),
        explored_states_total(registry.counter(
            "choreo_explored_states_total",
            "States/markings discovered by exploration")),
        dedup_hits_total(registry.counter(
            "choreo_explore_dedup_hits_total",
            "Transition targets that resolved to an existing state")),
        dedup_misses_total(registry.counter(
            "choreo_explore_dedup_misses_total",
            "Transition targets that discovered a new state")),
        peak_frontier(registry.gauge(
            "choreo_explore_peak_frontier",
            "Largest breadth-first frontier seen by any exploration")),
        interrupted_in_stage_total(registry.counter(
            "choreo_jobs_interrupted_in_stage_total",
            "Jobs stopped inside a pipeline stage (derive/solve/backoff) "
            "rather than at a stage boundary")),
        budget_peak_state_bytes(registry.gauge(
            "choreo_budget_peak_state_bytes",
            "Largest state-storage footprint any job's budget recorded")),
        aggregate_blocks(registry.gauge(
            "choreo_aggregate_blocks",
            "Largest strong-equivalence quotient (block count) any "
            "exact-aggregation job derived")),
        aggregate_rewrites_total(registry.counter(
            "choreo_aggregate_rewrites_total",
            "Successor states rewritten to canonical representatives by "
            "quotient-direct derivations")),
        fluid_fallbacks_total(registry.counter(
            "choreo_fluid_fallbacks_total",
            "Retries that downgraded a job to the fluid (ODE) backend")),
        fluid_steps_total(registry.counter(
            "choreo_fluid_steps_total",
            "Accepted ODE steps across fluid solves")),
        fluid_rejected_steps_total(registry.counter(
            "choreo_fluid_rejected_steps_total",
            "Rejected ODE step attempts across fluid solves")),
        fluid_solve_seconds(registry.histogram(
            "choreo_fluid_solve_seconds",
            "Mean-field ODE solve time, per job that used the fluid "
            "backend")),
        sweep_jobs_total(registry.counter(
            "choreo_sweep_jobs_total",
            "Design-space sweep jobs executed")),
        sweep_points_total(registry.counter(
            "choreo_sweep_points_total",
            "Sweep points requested across all sweep jobs")),
        sweep_point_cache_hits_total(registry.counter(
            "choreo_sweep_point_cache_hits_total",
            "Sweep points served from the per-point result cache")),
        sweep_derivations_total(registry.counter(
            "choreo_sweep_derivations_total",
            "State-space derivations performed by sweep jobs")),
        sweep_points_in_flight(registry.gauge(
            "choreo_sweep_points_in_flight",
            "Sweep points currently being evaluated")),
        pool(scheduler_options.workers != 0
                 ? scheduler_options.workers
                 : std::max<std::size_t>(
                       1, std::thread::hardware_concurrency())) {}

  void run_job(const std::shared_ptr<JobState>& state);
  void execute(const std::shared_ptr<JobState>& state, JobResult& result);
  void execute_sweep(const std::shared_ptr<JobState>& state,
                     JobResult& result);
  /// Sleeps `seconds` in small slices, aborting on cancel/deadline.
  void backoff_sleep(const JobState& state, double seconds) const;
  void finish(const std::shared_ptr<JobState>& state, JobResult result);

  SchedulerOptions options;
  Registry& registry;

  Counter& submitted_total;
  Counter& done_total;
  Counter& failed_total;
  Counter& cancelled_total;
  Counter& timed_out_total;
  Counter& retries_total;
  Gauge& queue_depth;
  Gauge& running_gauge;
  Histogram& queue_seconds;
  Histogram& run_seconds;
  Histogram& total_seconds;
  Histogram& extract_seconds;
  Histogram& derive_seconds;
  Histogram& solve_seconds;
  Histogram& reflect_seconds;
  Histogram& explore_rate;
  Counter& explored_states_total;
  Counter& dedup_hits_total;
  Counter& dedup_misses_total;
  Gauge& peak_frontier;
  Counter& interrupted_in_stage_total;
  Gauge& budget_peak_state_bytes;
  Gauge& aggregate_blocks;
  Counter& aggregate_rewrites_total;
  Counter& fluid_fallbacks_total;
  Counter& fluid_steps_total;
  Counter& fluid_rejected_steps_total;
  Histogram& fluid_solve_seconds;
  Counter& sweep_jobs_total;
  Counter& sweep_points_total;
  Counter& sweep_point_cache_hits_total;
  Counter& sweep_derivations_total;
  Gauge& sweep_points_in_flight;

  mutable std::mutex flight_mutex;
  std::condition_variable space_cv;
  std::size_t in_flight = 0;

  /// Declared last: destroyed (drained and joined) first, while the
  /// members its tasks touch are still alive.
  util::ThreadPool pool;
};

void Scheduler::Impl::backoff_sleep(const JobState& state,
                                    double seconds) const {
  const Clock::time_point until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  while (Clock::now() < until) {
    state.budget.check("backoff");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Scheduler::Impl::execute_sweep(const std::shared_ptr<JobState>& state,
                                    JobResult& result) {
  const JobRequest& request = state->request;
  const SweepJobRequest& job = *request.sweep;
  sweep_jobs_total.increment();

  job.spec.validate();
  pepa::Model model = pepa::parse_model_file(job.model_path);
  // Validates sweepability (clean provenance tags) and fingerprints the
  // rate-stripped structure before any derivation is attempted.
  sweep::RateRebinder rebinder(model, job.spec.parameter_names());

  sweep::SweepOptions sweep_options;
  sweep_options.backend = job.backend;
  sweep_options.solver = request.options.solver;
  sweep_options.derive.max_states = request.options.max_states;
  sweep_options.derive.threads = request.options.derive_threads != 0
                                     ? request.options.derive_threads
                                     : options.derive_threads;
  sweep_options.fluid.ode.rel_tol = request.options.fluid_rel_tol;
  sweep_options.fluid.ode.abs_tol = request.options.fluid_abs_tol;
  sweep_options.fluid.ode.t_end = request.options.fluid_t_end;
  sweep_options.threads = job.threads != 0 ? job.threads : 1;
  sweep_options.budget = &state->budget;

  // Sweep jobs never climb the retry ladder: the backend is the client's
  // explicit choice, reported in the same field the ladder uses.
  result.aggregation_used = job.backend == sweep::Backend::kFluid
                                ? chor::Aggregation::kFluid
                                : chor::Aggregation::kNone;

  // Per-point cache probe.  Each key pairs the shared structure hash with
  // the point's rate fingerprint (plus the result-affecting options), so
  // overlapping sweeps share entries point-by-point however their specs
  // slice the space.
  const std::size_t count = job.spec.point_count();
  std::vector<std::string> keys;
  std::vector<std::vector<std::pair<std::string, double>>> cached(count);
  std::vector<char> hit(count, 0);
  std::size_t hit_count = 0;
  std::size_t cached_states = 0;
  std::size_t cached_transitions = 0;
  if (options.cache != nullptr) {
    const std::string options_key = sweep_options_key(job, request.options);
    keys.resize(count);
    for (std::size_t p = 0; p < count; ++p) {
      keys[p] = util::msg(
          "sweep:", hex64(rebinder.structure()), ":",
          hex64(rebinder.rate_fingerprint(job.spec.point(p))), ":",
          options_key);
      std::optional<CachedAnalysis> entry = options.cache->get(keys[p]);
      if (entry && !entry->report.activity_graphs.empty()) {
        const chor::ActivityGraphResult& graph =
            entry->report.activity_graphs.front();
        cached[p] = graph.throughputs;
        cached_states = graph.marking_count;
        cached_transitions = graph.transition_count;
        hit[p] = 1;
        ++hit_count;
      }
    }
  }

  sweep::SweepTable table;
  if (hit_count < count) {
    // Lazy derivation: only missed points are evaluated.  A partial miss
    // is re-sliced as a zipped spec over the missing coordinates, so the
    // state space is still derived at most once per job — and not at all
    // when every point hits.
    sweep::SweepSpec eval = job.spec;
    std::vector<std::size_t> missed;
    if (hit_count > 0) {
      missed.reserve(count - hit_count);
      eval.axes.clear();
      for (const std::string& name : job.spec.parameter_names()) {
        eval.axes.push_back(sweep::Axis{name, {}});
      }
      eval.combine = sweep::Combine::kZip;
      for (std::size_t p = 0; p < count; ++p) {
        if (hit[p]) continue;
        missed.push_back(p);
        const std::vector<double> values = job.spec.point(p);
        for (std::size_t a = 0; a < values.size(); ++a) {
          eval.axes[a].values.push_back(values[a]);
        }
      }
    }
    GaugeDelta in_flight_points(
        sweep_points_in_flight, static_cast<std::int64_t>(count - hit_count));
    sweep::SweepTable evaluated = sweep::sweep(model, eval, sweep_options);
    if (hit_count == 0) {
      table = std::move(evaluated);
    } else {
      table.axes = evaluated.axes;
      table.measures = evaluated.measures;
      table.structure = evaluated.structure;
      table.derivations = evaluated.derivations;
      table.state_count = evaluated.state_count;
      table.transition_count = evaluated.transition_count;
      table.derive_stats = evaluated.derive_stats;
      table.seconds = evaluated.seconds;
      table.rows.resize(count);
      for (std::size_t m = 0; m < missed.size(); ++m) {
        table.rows[missed[m]] = std::move(evaluated.rows[m]);
      }
    }
  } else {
    // Every point hit: the table is assembled from the cache alone.
    table.axes = job.spec.parameter_names();
    for (const auto& [name, value] : cached[0]) table.measures.push_back(name);
    table.structure = rebinder.structure();
    table.state_count = cached_states;
    table.transition_count = cached_transitions;
    table.rows.resize(count);
  }
  for (std::size_t p = 0; p < count; ++p) {
    if (!hit[p]) continue;
    sweep::SweepRow& row = table.rows[p];
    row.values = job.spec.point(p);
    row.measures.reserve(cached[p].size());
    for (const auto& [name, value] : cached[p]) row.measures.push_back(value);
  }
  table.points_from_cache = hit_count;

  if (options.cache != nullptr) {
    for (std::size_t p = 0; p < count; ++p) {
      if (hit[p] || !table.rows[p].ok()) continue;
      CachedAnalysis entry;
      chor::ActivityGraphResult graph;
      graph.graph_name = job.model_path;
      graph.marking_count = table.state_count;
      graph.transition_count = table.transition_count;
      for (std::size_t m = 0; m < table.measures.size(); ++m) {
        graph.throughputs.emplace_back(table.measures[m],
                                       table.rows[p].measures[m]);
      }
      entry.report.activity_graphs.push_back(std::move(graph));
      options.cache->put(keys[p], entry);
    }
  }

  sweep_points_total.increment(count);
  sweep_point_cache_hits_total.increment(hit_count);
  sweep_derivations_total.increment(table.derivations);
  if (table.derivations > 0) {
    derive_seconds.observe(table.derive_stats.seconds);
    explored_states_total.increment(table.derive_stats.dedup_misses);
    dedup_hits_total.increment(table.derive_stats.dedup_hits);
    dedup_misses_total.increment(table.derive_stats.dedup_misses);
    peak_frontier.record_max(
        static_cast<std::int64_t>(table.derive_stats.peak_frontier));
    if (table.derive_stats.seconds > 0.0) {
      explore_rate.observe(
          static_cast<double>(table.derive_stats.dedup_misses) /
          table.derive_stats.seconds);
    }
  }

  // A one-graph summary so report consumers (the batch table's markings
  // column, metrics folds) see sweep jobs through the same lens as
  // pipeline jobs.
  chor::ActivityGraphResult summary;
  summary.graph_name = job.model_path;
  summary.marking_count = table.state_count;
  summary.transition_count = table.transition_count;
  summary.timings.derive_stats = table.derive_stats;
  result.report.activity_graphs.push_back(std::move(summary));

  result.from_cache = hit_count == count;
  result.attempts = result.from_cache ? 0 : 1;
  result.status = JobStatus::kDone;

  if (request.output_path) {
    const std::string rendered = job.format == SweepJobRequest::Format::kJson
                                     ? table.to_json()
                                     : table.to_csv();
    std::ofstream stream(*request.output_path, std::ios::binary);
    if (!stream || !(stream << rendered) || !stream.flush()) {
      result.status = JobStatus::kFailed;
      result.error = util::msg("cannot write sweep table to '",
                               *request.output_path, "'");
    }
  }
  result.sweep = std::move(table);
}

void Scheduler::Impl::execute(const std::shared_ptr<JobState>& state,
                              JobResult& result) {
  const JobRequest& request = state->request;
  if (request.sweep) {
    execute_sweep(state, result);
    return;
  }
  const xml::Document project =
      request.input_path ? xml::parse_file(*request.input_path)
                         : request.project;

  // The Figure-4 pipeline, opened up so the cache can sit between the
  // Poseidon pre- and postprocessor: the cache stores the reflected
  // *model* half, and every requester — hit or miss — gets their own
  // layout merged back.
  const uml::SplitProject split = uml::preprocess(project);

  std::string key;
  xml::Document reflected;
  // Cache hits and failures report the requested level; a successful run
  // overwrites this with the level the winning attempt actually used.
  result.aggregation_used = request.options.aggregation;
  if (options.cache != nullptr) {
    key = cache_key_for_model(split.model, request.options);
    if (std::optional<CachedAnalysis> cached = options.cache->get(key)) {
      result.report = std::move(cached->report);
      reflected = std::move(cached->reflected_model);
      result.from_cache = true;
      result.attempts = 0;
    }
  }

  if (!result.from_cache) {
    chor::AnalysisOptions attempt_options = request.options;
    // The governor rides inside AnalysisOptions: the pipeline's stage
    // boundaries call the client hook then budget->check(), and the
    // derivation/solver loops check the same budget from within a stage.
    attempt_options.budget = &state->budget;
    if (attempt_options.derive_threads == 0) {
      attempt_options.derive_threads = options.derive_threads;
    }
    double backoff = options.retry_backoff_seconds;
    for (std::size_t attempt = 0;; ++attempt) {
      ++result.attempts;
      try {
        // A failed attempt leaves the model partially annotated, so each
        // attempt re-reads it from the pristine split document.
        uml::Model model = uml::from_xmi(split.model);
        result.report = chor::analyse(model, attempt_options);
        reflected = uml::to_xmi(model);
        result.aggregation_used = attempt_options.aggregation;
        break;
      } catch (const util::InterruptedError&) {
        throw;  // cancellation/deadline is terminal, never a retry
      } catch (const util::Error& error) {
        if (attempt < options.max_retries && is_state_bound_failure(error) &&
            attempt_options.aggregation != chor::Aggregation::kFluid) {
          retries_total.increment();
          backoff_sleep(*state, backoff);
          backoff *= 2.0;
          // One rung down the aggregation ladder (optionally with a scaled
          // state budget): first the exact strong-equivalence quotient,
          // then the fluid mean-field ODE, which expands no state space
          // at all and so survives any population size.
          if (attempt_options.aggregation == chor::Aggregation::kNone) {
            attempt_options.aggregation = chor::Aggregation::kExact;
          } else {
            attempt_options.aggregation = chor::Aggregation::kFluid;
            fluid_fallbacks_total.increment();
          }
          attempt_options.max_states = static_cast<std::size_t>(
              static_cast<double>(attempt_options.max_states) *
              std::max(1.0, options.retry_state_budget_factor));
          continue;
        }
        result.status = JobStatus::kFailed;
        result.error = error.what();
        return;
      }
    }
    for (const auto& graph : result.report.activity_graphs) {
      result.timings.stages += graph.timings;
    }
    for (const auto& machines : result.report.state_machines) {
      result.timings.stages += machines.timings;
    }
    const chor::StageTimings& stages = result.timings.stages;
    extract_seconds.observe(stages.extract_seconds);
    derive_seconds.observe(stages.derive_seconds());
    solve_seconds.observe(stages.solve_seconds);
    reflect_seconds.observe(stages.reflect_seconds);
    explored_states_total.increment(stages.derive_stats.dedup_misses);
    dedup_hits_total.increment(stages.derive_stats.dedup_hits);
    dedup_misses_total.increment(stages.derive_stats.dedup_misses);
    peak_frontier.record_max(
        static_cast<std::int64_t>(stages.derive_stats.peak_frontier));
    if (result.aggregation_used == chor::Aggregation::kExact) {
      // Quotient-direct derivation: dedup_misses IS the block count, and
      // the rewrite counter evidences on-the-fly collapsing (dividing the
      // two out of a dashboard gives the reduction pressure per job).
      aggregate_blocks.record_max(
          static_cast<std::int64_t>(stages.derive_stats.dedup_misses));
      aggregate_rewrites_total.increment(
          stages.derive_stats.canonical_rewrites);
    }
    if (stages.fluid_steps > 0 || stages.fluid_rejected_steps > 0) {
      fluid_steps_total.increment(stages.fluid_steps);
      fluid_rejected_steps_total.increment(stages.fluid_rejected_steps);
      fluid_solve_seconds.observe(stages.solve_seconds);
    }
    if (stages.derive_seconds() > 0.0) {
      explore_rate.observe(
          static_cast<double>(stages.derive_stats.dedup_misses) /
          stages.derive_seconds());
    }
    if (options.cache != nullptr) {
      options.cache->put(key, CachedAnalysis{result.report, reflected});
    }
  }

  const xml::Document annotated = uml::postprocess(reflected, split.layout);
  result.annotated_xmi = xml::to_string(annotated);
  result.status = JobStatus::kDone;

  if (request.output_path) {
    std::ofstream stream(*request.output_path, std::ios::binary);
    if (!stream || !(stream << result.annotated_xmi) || !stream.flush()) {
      result.status = JobStatus::kFailed;
      result.error =
          util::msg("cannot write annotated project to '",
                    *request.output_path, "'");
    }
  }
}

void Scheduler::Impl::run_job(const std::shared_ptr<JobState>& state) {
  queue_depth.add(-1);
  const Clock::time_point started = Clock::now();
  JobResult result;
  result.timings.queued_seconds =
      std::chrono::duration<double>(started - state->submitted).count();
  queue_seconds.observe(result.timings.queued_seconds);

  if (state->budget.cancel_requested()) {
    result.status = JobStatus::kCancelled;
    result.error = "cancelled before running";
    finish(state, std::move(result));
    return;
  }
  if (state->budget.deadline_passed()) {
    result.status = JobStatus::kTimedOut;
    result.error = "deadline passed while queued";
    finish(state, std::move(result));
    return;
  }

  {
    std::lock_guard lock(state->mutex);
    state->status = JobStatus::kRunning;
  }
  running_gauge.add(1);
  try {
    execute(state, result);
  } catch (const util::InterruptedError& error) {
    const bool cancelled =
        error.reason() == util::InterruptedError::Reason::kCancelled;
    result.status = cancelled ? JobStatus::kCancelled : JobStatus::kTimedOut;
    result.error = cancelled ? "cancelled while running"
                             : "deadline passed while running";
    // Interruptions observed inside a stage (derive/solve/backoff) are the
    // ones the pre-budget service could not honour until the stage ended.
    if (error.stage() != "checkpoint") interrupted_in_stage_total.increment();
  } catch (const std::exception& error) {
    result.status = JobStatus::kFailed;
    result.error = error.what();
  }
  running_gauge.add(-1);
  const util::BudgetUsage usage = state->budget.usage();
  result.partial_derive_stats = partial_stats(usage);
  budget_peak_state_bytes.record_max(
      static_cast<std::int64_t>(usage.peak_state_bytes));
  result.timings.run_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  run_seconds.observe(result.timings.run_seconds);
  finish(state, std::move(result));
}

void Scheduler::Impl::finish(const std::shared_ptr<JobState>& state,
                             JobResult result) {
  switch (result.status) {
    case JobStatus::kDone: done_total.increment(); break;
    case JobStatus::kFailed: failed_total.increment(); break;
    case JobStatus::kCancelled: cancelled_total.increment(); break;
    case JobStatus::kTimedOut: timed_out_total.increment(); break;
    case JobStatus::kQueued:
    case JobStatus::kRunning: CHOREO_ASSERT(false);
  }
  total_seconds.observe(
      std::chrono::duration<double>(Clock::now() - state->submitted).count());
  // Release the backpressure slot before signalling the waiter, so that
  // once every handle's wait() returned, in_flight() reads 0.
  {
    std::lock_guard lock(flight_mutex);
    --in_flight;
  }
  space_cv.notify_one();
  {
    std::lock_guard lock(state->mutex);
    state->status = result.status;
    state->result = std::move(result);
  }
  state->terminal_cv.notify_all();
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

Scheduler::~Scheduler() = default;

JobHandle Scheduler::submit(JobRequest request) {
  if (request.name.empty()) {
    request.name = request.sweep ? request.sweep->model_path
                   : request.input_path ? *request.input_path
                                        : "<inline>";
  }
  auto state = std::make_shared<JobState>();
  state->request = std::move(request);

  {
    std::unique_lock lock(impl_->flight_mutex);
    impl_->space_cv.wait(lock, [&] {
      return impl_->in_flight < impl_->options.queue_capacity;
    });
    ++impl_->in_flight;
  }
  state->submitted = Clock::now();
  const double timeout = state->request.timeout_seconds < 0
                             ? impl_->options.default_timeout_seconds
                             : state->request.timeout_seconds;
  if (timeout > 0) {
    state->budget.set_deadline(
        state->submitted + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(timeout)));
  }
  impl_->submitted_total.increment();
  impl_->queue_depth.add(1);
  impl_->pool.submit([impl = impl_.get(), state] { impl->run_job(state); });
  return JobHandle(state);
}

std::size_t Scheduler::in_flight() const {
  std::lock_guard lock(impl_->flight_mutex);
  return impl_->in_flight;
}

std::size_t Scheduler::worker_count() const {
  return impl_->pool.worker_count();
}

}  // namespace choreo::service
