#include "service/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::service {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  CHOREO_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
}

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0, 30.0};
  return bounds;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::kCounter;
    it->second.help = help;
    it->second.counter = std::make_unique<Counter>();
  } else if (it->second.kind != MetricSample::Kind::kCounter) {
    throw util::Error(util::msg("metric '", name, "' is not a counter"));
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::kGauge;
    it->second.help = help;
    it->second.gauge = std::make_unique<Gauge>();
  } else if (it->second.kind != MetricSample::Kind::kGauge) {
    throw util::Error(util::msg("metric '", name, "' is not a gauge"));
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               const std::vector<double>& bounds) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::kHistogram;
    it->second.help = help;
    it->second.histogram = std::make_unique<Histogram>(bounds);
  } else if (it->second.kind != MetricSample::Kind::kHistogram) {
    throw util::Error(util::msg("metric '", name, "' is not a histogram"));
  }
  return *it->second.histogram;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample sample;
    sample.name = name;
    sample.help = entry.help;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        sample.value = static_cast<double>(entry.gauge->value());
        break;
      case MetricSample::Kind::kHistogram: {
        const Histogram& histogram = *entry.histogram;
        sample.bounds = histogram.bounds();
        sample.bucket_counts.resize(sample.bounds.size() + 1);
        for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
          sample.bucket_counts[i] = histogram.bucket_count(i);
        }
        sample.count = histogram.count();
        sample.sum = histogram.sum();
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::string Registry::exposition() const {
  std::ostringstream out;
  for (const MetricSample& sample : snapshot()) {
    if (!sample.help.empty()) {
      out << "# HELP " << sample.name << ' ' << sample.help << '\n';
    }
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out << "# TYPE " << sample.name << " counter\n"
            << sample.name << ' '
            << static_cast<std::uint64_t>(sample.value) << '\n';
        break;
      case MetricSample::Kind::kGauge:
        out << "# TYPE " << sample.name << " gauge\n"
            << sample.name << ' '
            << static_cast<std::int64_t>(sample.value) << '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        out << "# TYPE " << sample.name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          cumulative += sample.bucket_counts[i];
          out << sample.name << "_bucket{le=\""
              << util::format_double(sample.bounds[i]) << "\"} " << cumulative
              << '\n';
        }
        out << sample.name << "_bucket{le=\"+Inf\"} " << sample.count << '\n'
            << sample.name << "_sum " << util::format_double(sample.sum) << '\n'
            << sample.name << "_count " << sample.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

void Registry::clear() {
  std::lock_guard lock(mutex_);
  metrics_.clear();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace choreo::service
