#include "sim/replicate.hpp"

#include <mutex>
#include <set>

#include "util/thread_pool.hpp"

namespace choreo::sim {

util::ConfidenceInterval ReplicateResult::throughput(std::uint32_t label) const {
  const auto it = throughputs.find(label);
  if (it == throughputs.end()) return {};
  return it->second.interval;
}

ReplicateResult replicate(
    const std::function<std::unique_ptr<System>()>& factory,
    const ReplicateOptions& options) {
  const std::size_t n = options.replications;
  std::vector<RunResult> runs(n);

  auto one = [&](std::size_t index) {
    util::Xoshiro256 rng(options.seed);
    for (std::size_t j = 0; j < index; ++j) rng.jump();
    const std::unique_ptr<System> system = factory();
    RunOptions run = options.run;
    if (options.state_reward) {
      System& worker_system = *system;
      run.state_reward = [&worker_system, &options] {
        return options.state_reward(worker_system);
      };
    }
    runs[index] = run_trajectory(*system, rng, run);
  };

  if (options.parallel) {
    util::ThreadPool::shared().parallel_for(n, [&](std::size_t begin,
                                                   std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) one(i);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) one(i);
  }

  ReplicateResult result;
  std::set<std::uint32_t> labels;
  for (const RunResult& run : runs) {
    for (const auto& [label, count] : run.counts) labels.insert(label);
    if (run.deadlocked) ++result.deadlocked;
  }
  for (std::uint32_t label : labels) {
    Estimate estimate;
    for (const RunResult& run : runs) estimate.stats.add(run.throughput(label));
    estimate.interval =
        util::confidence_interval(estimate.stats, options.confidence_level);
    result.throughputs.emplace(label, std::move(estimate));
  }
  for (const RunResult& run : runs) result.reward.stats.add(run.mean_reward);
  result.reward.interval =
      util::confidence_interval(result.reward.stats, options.confidence_level);
  return result;
}

}  // namespace choreo::sim
