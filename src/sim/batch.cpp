#include "sim/batch.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace choreo::sim {

BatchEstimate run_batch_means(System& system, util::Xoshiro256& rng,
                              std::uint32_t label,
                              const std::function<double()>& state_reward,
                              const BatchOptions& options) {
  CHOREO_ASSERT(options.batches >= 2 && options.horizon > 0.0);
  system.reset();
  BatchEstimate estimate;

  const double start = options.warmup_time;
  const double end = options.warmup_time + options.horizon;
  const double slice = options.horizon / static_cast<double>(options.batches);

  std::vector<double> batch_counts(options.batches, 0.0);
  std::vector<double> batch_rewards(options.batches, 0.0);
  util::BatchMeans sojourns(options.batches);

  double now = 0.0;
  std::vector<double> weights;
  while (now < end) {
    const auto& moves = system.enabled();
    if (moves.empty()) {
      if (state_reward) {
        // The remaining time is spent in the deadlock state.
        const double from = std::max(now, start);
        for (std::size_t b = 0; b < options.batches; ++b) {
          const double lo = std::max(from, start + slice * static_cast<double>(b));
          const double hi = start + slice * static_cast<double>(b + 1);
          if (hi > lo) batch_rewards[b] += state_reward() * (hi - lo);
        }
      }
      estimate.deadlocked = true;
      break;
    }
    weights.clear();
    double total_rate = 0.0;
    for (const System::Move& move : moves) {
      weights.push_back(move.rate);
      total_rate += move.rate;
    }
    const double sojourn = rng.exponential(total_rate);
    const double leave = now + sojourn;
    if (now >= start && leave <= end) sojourns.add(sojourn);

    if (state_reward) {
      // Attribute the sojourn's reward to the batches it overlaps.
      const double from = std::max(now, start);
      const double to = std::min(leave, end);
      if (to > from) {
        const double reward = state_reward();
        const auto first_batch = static_cast<std::size_t>(
            std::min((from - start) / slice,
                     static_cast<double>(options.batches - 1)));
        const auto last_batch = static_cast<std::size_t>(
            std::min((to - start) / slice,
                     static_cast<double>(options.batches - 1)));
        for (std::size_t b = first_batch; b <= last_batch; ++b) {
          const double lo = std::max(from, start + slice * static_cast<double>(b));
          const double hi =
              std::min(to, start + slice * static_cast<double>(b + 1));
          if (hi > lo) batch_rewards[b] += reward * (hi - lo);
        }
      }
    }

    const std::size_t chosen = rng.discrete(weights);
    if (leave >= start && leave < end && moves[chosen].label == label) {
      const auto batch = static_cast<std::size_t>(
          std::min((leave - start) / slice,
                   static_cast<double>(options.batches - 1)));
      batch_counts[batch] += 1.0;
      ++estimate.steps;
    }
    system.apply(chosen);
    now = leave;
  }

  util::RunningStats throughput_stats;
  util::RunningStats reward_stats;
  for (std::size_t b = 0; b < options.batches; ++b) {
    throughput_stats.add(batch_counts[b] / slice);
    reward_stats.add(batch_rewards[b] / slice);
  }
  estimate.throughput =
      util::confidence_interval(throughput_stats, options.confidence_level);
  if (state_reward) {
    estimate.reward =
        util::confidence_interval(reward_stats, options.confidence_level);
  }
  estimate.mean_sojourn = sojourns.interval(options.confidence_level);
  return estimate;
}

}  // namespace choreo::sim
