// The simulation-facing view of a stochastic system: a current state, the
// exponential moves enabled in it, and an apply operation.  Gillespie's
// direct method (sim/engine.hpp) only needs this interface, so the same
// engine simulates plain PEPA models and PEPA nets without ever building
// the full state space -- the property that makes simulation tolerant of
// the state-space explosion the paper's Section 1.1 discusses.
//
// Implementations are NOT thread-safe; parallel replications construct one
// instance per worker through a factory (see sim/replicate.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pepa/model.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/netsemantics.hpp"

namespace choreo::sim {

class System {
 public:
  struct Move {
    double rate;
    /// The PEPA action id of the move (for throughput accounting).
    std::uint32_t label;
  };

  virtual ~System() = default;

  /// Returns to the initial state.
  virtual void reset() = 0;
  /// Moves enabled in the current state (valid until the next apply/reset).
  virtual const std::vector<Move>& enabled() = 0;
  /// Applies the i-th enabled move.
  virtual void apply(std::size_t index) = 0;
  /// Human-readable label name (action name), for reports.
  virtual std::string label_name(std::uint32_t label) const = 0;
};

/// Simulates a PEPA model from its system equation.  Takes ownership of the
/// model.  Throws util::ModelError if a passive activity escapes to the top
/// level during simulation.
class PepaSystem final : public System {
 public:
  explicit PepaSystem(pepa::Model model);

  void reset() override;
  const std::vector<Move>& enabled() override;
  void apply(std::size_t index) override;
  std::string label_name(std::uint32_t label) const override;

  /// True when some sequential position of the current state is `name`.
  bool occupies(std::string_view name) const;

 private:
  pepa::Model model_;
  pepa::Semantics semantics_;
  pepa::ProcessId initial_;
  pepa::ProcessId current_;
  std::vector<Move> moves_;
  std::vector<pepa::ProcessId> targets_;
  bool fresh_ = false;
};

/// Simulates a PEPA net over its markings.  Takes ownership of the net.
class NetSystem final : public System {
 public:
  explicit NetSystem(pepanet::PepaNet net);

  void reset() override;
  const std::vector<Move>& enabled() override;
  void apply(std::size_t index) override;
  std::string label_name(std::uint32_t label) const override;

  const pepanet::Marking& marking() const noexcept { return current_; }
  const pepanet::PepaNet& net() const noexcept { return net_; }

 private:
  pepanet::PepaNet net_;
  pepanet::NetSemantics semantics_;
  pepanet::Marking current_;
  std::vector<Move> moves_;
  std::vector<pepanet::Marking> targets_;
  bool fresh_ = false;
};

}  // namespace choreo::sim
