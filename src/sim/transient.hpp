// Simulation-based transient estimation: the Monte-Carlo counterpart of
// ctmc::transient.  Runs independent replications up to each requested time
// point and estimates the expectation of a state reward there, with
// confidence intervals -- usable when uniformisation's state space is out
// of reach, and as a cross-validation of it when it is not.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/system.hpp"
#include "util/stats.hpp"

namespace choreo::sim {

struct TransientEstimateOptions {
  std::size_t replications = 64;
  std::uint64_t seed = 0xfeed;
  double confidence_level = 0.95;
};

/// For each time point t (ascending), the estimated E[reward(state at t)].
std::vector<util::ConfidenceInterval> estimate_transient(
    const std::function<std::unique_ptr<System>()>& factory,
    const std::function<double(System&)>& reward,
    const std::vector<double>& time_points,
    const TransientEstimateOptions& options = {});

}  // namespace choreo::sim
