#include "sim/system.hpp"

#include "pepa/measures.hpp"
#include "util/error.hpp"

namespace choreo::sim {

PepaSystem::PepaSystem(pepa::Model model)
    : model_(std::move(model)), semantics_(model_.arena()) {
  initial_ = pepa::expand_static(model_.arena(), model_.system());
  current_ = initial_;
}

void PepaSystem::reset() {
  current_ = initial_;
  fresh_ = false;
}

const std::vector<System::Move>& PepaSystem::enabled() {
  if (fresh_) return moves_;
  moves_.clear();
  targets_.clear();
  for (const pepa::Derivative& d : semantics_.derivatives(current_)) {
    if (d.rate.is_passive()) {
      throw util::ModelError(util::msg(
          "activity '", model_.arena().action_name(d.action),
          "' occurs passively at the top level during simulation"));
    }
    moves_.push_back({d.rate.value(), d.action});
    targets_.push_back(d.target);
  }
  fresh_ = true;
  return moves_;
}

void PepaSystem::apply(std::size_t index) {
  CHOREO_ASSERT(fresh_ && index < targets_.size());
  current_ = targets_[index];
  fresh_ = false;
}

std::string PepaSystem::label_name(std::uint32_t label) const {
  return model_.arena().action_name(label);
}

bool PepaSystem::occupies(std::string_view name) const {
  const auto constant = model_.arena().find_constant(name);
  if (!constant) return false;
  return pepa::occupies(model_.arena(), current_, *constant);
}

NetSystem::NetSystem(pepanet::PepaNet net)
    : net_(std::move(net)), semantics_(net_), current_(net_.initial_marking()) {}

void NetSystem::reset() {
  current_ = net_.initial_marking();
  fresh_ = false;
}

const std::vector<System::Move>& NetSystem::enabled() {
  if (fresh_) return moves_;
  moves_.clear();
  targets_.clear();
  for (pepanet::NetMove& move : semantics_.moves(current_)) {
    if (move.rate.is_passive()) {
      throw util::ModelError(util::msg(
          "activity '", net_.arena().action_name(move.action),
          "' occurs passively at the net level during simulation"));
    }
    moves_.push_back({move.rate.value(), move.action});
    targets_.push_back(std::move(move.target));
  }
  fresh_ = true;
  return moves_;
}

void NetSystem::apply(std::size_t index) {
  CHOREO_ASSERT(fresh_ && index < targets_.size());
  current_ = std::move(targets_[index]);
  fresh_ = false;
}

std::string NetSystem::label_name(std::uint32_t label) const {
  return net_.arena().action_name(label);
}

}  // namespace choreo::sim
