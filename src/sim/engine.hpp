// Gillespie's direct method over a sim::System.
//
// One trajectory run yields per-action completion counts (throughput
// estimators) and, optionally, the time-weighted mean of a user-supplied
// state reward.  A warm-up period discards the initial transient.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/system.hpp"
#include "util/rng.hpp"

namespace choreo::sim {

struct RunOptions {
  /// Simulated time discarded before measurement begins.
  double warmup_time = 0.0;
  /// Measured simulated time (after warm-up).
  double horizon = 1000.0;
  /// Evaluated on the current state at every sojourn and averaged with
  /// time weights; leave empty to skip.
  std::function<double()> state_reward;
};

struct RunResult {
  /// Simulated measurement time actually covered.
  double measured_time = 0.0;
  /// Number of transitions taken during measurement.
  std::uint64_t steps = 0;
  /// Completions per action label during measurement.
  std::map<std::uint32_t, std::uint64_t> counts;
  /// Time-weighted mean of the state reward (0 when not requested).
  double mean_reward = 0.0;
  /// True when the run hit a deadlock state before the horizon.
  bool deadlocked = false;

  /// Completion rate of a label (count / measured_time).
  double throughput(std::uint32_t label) const;
};

/// Runs one trajectory; the system is reset() first.
RunResult run_trajectory(System& system, util::Xoshiro256& rng,
                         const RunOptions& options);

}  // namespace choreo::sim
