#include "sim/transient.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace choreo::sim {

std::vector<util::ConfidenceInterval> estimate_transient(
    const std::function<std::unique_ptr<System>()>& factory,
    const std::function<double(System&)>& reward,
    const std::vector<double>& time_points,
    const TransientEstimateOptions& options) {
  CHOREO_ASSERT(std::is_sorted(time_points.begin(), time_points.end()));
  std::vector<util::RunningStats> stats(time_points.size());

  util::Xoshiro256 rng(options.seed);
  std::vector<double> weights;
  for (std::size_t replication = 0; replication < options.replications;
       ++replication) {
    const std::unique_ptr<System> system = factory();
    system->reset();
    double now = 0.0;
    std::size_t next_point = 0;
    while (next_point < time_points.size()) {
      const auto& moves = system->enabled();
      double leave = now;
      std::size_t chosen = 0;
      if (moves.empty()) {
        leave = time_points.back() + 1.0;  // deadlock: state frozen
      } else {
        weights.clear();
        double total_rate = 0.0;
        for (const System::Move& move : moves) {
          weights.push_back(move.rate);
          total_rate += move.rate;
        }
        leave = now + rng.exponential(total_rate);
        chosen = rng.discrete(weights);
      }
      // Sample every time point falling inside the current sojourn.
      while (next_point < time_points.size() &&
             time_points[next_point] < leave) {
        stats[next_point].add(reward(*system));
        ++next_point;
      }
      if (moves.empty()) break;
      system->apply(chosen);
      now = leave;
    }
  }

  std::vector<util::ConfidenceInterval> out;
  out.reserve(stats.size());
  for (const util::RunningStats& s : stats) {
    out.push_back(util::confidence_interval(s, options.confidence_level));
  }
  return out;
}

}  // namespace choreo::sim
