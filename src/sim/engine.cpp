#include "sim/engine.hpp"

#include <vector>

#include "util/error.hpp"

namespace choreo::sim {

double RunResult::throughput(std::uint32_t label) const {
  if (measured_time <= 0.0) return 0.0;
  const auto it = counts.find(label);
  return it == counts.end() ? 0.0
                            : static_cast<double>(it->second) / measured_time;
}

RunResult run_trajectory(System& system, util::Xoshiro256& rng,
                         const RunOptions& options) {
  system.reset();
  RunResult result;
  double now = 0.0;
  const double measure_from = options.warmup_time;
  const double end = options.warmup_time + options.horizon;
  double reward_integral = 0.0;

  std::vector<double> weights;
  while (now < end) {
    const auto& moves = system.enabled();
    if (moves.empty()) {
      // Deadlock: the remaining time is spent in this state.
      if (options.state_reward) {
        const double measured_start = std::max(now, measure_from);
        if (end > measured_start) {
          reward_integral += options.state_reward() * (end - measured_start);
        }
      }
      result.deadlocked = true;
      now = end;
      break;
    }
    weights.clear();
    double total_rate = 0.0;
    for (const System::Move& move : moves) {
      weights.push_back(move.rate);
      total_rate += move.rate;
    }
    const double sojourn = rng.exponential(total_rate);
    const double leave = now + sojourn;
    if (options.state_reward) {
      const double from = std::max(now, measure_from);
      const double to = std::min(leave, end);
      if (to > from) reward_integral += options.state_reward() * (to - from);
    }
    const std::size_t chosen = rng.discrete(weights);
    if (leave >= measure_from && leave < end) {
      ++result.counts[moves[chosen].label];
      ++result.steps;
    }
    system.apply(chosen);
    now = leave;
  }

  result.measured_time = options.horizon;
  if (options.state_reward && options.horizon > 0.0) {
    result.mean_reward = reward_integral / options.horizon;
  }
  return result;
}

}  // namespace choreo::sim
