// Single-run steady-state estimation with the method of batch means.
//
// Independent replications (sim/replicate.hpp) pay the warm-up once per
// replication; a single long run pays it once and splits the measurement
// window into contiguous batches whose means are treated as approximately
// independent samples.  This is the UML-Psi-style steady-state estimator
// the paper's related-work section contrasts with exact solution.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/system.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace choreo::sim {

struct BatchOptions {
  double warmup_time = 100.0;
  /// Total measured simulated time (divided into `batches` slices).
  double horizon = 10000.0;
  std::size_t batches = 32;
  double confidence_level = 0.95;
};

struct BatchEstimate {
  /// Throughput of the requested action (completions per time unit).
  util::ConfidenceInterval throughput;
  /// Time-weighted mean of the state reward (when requested).
  util::ConfidenceInterval reward;
  /// Mean sojourn time per state visit (batch means over the event stream).
  util::ConfidenceInterval mean_sojourn;
  std::uint64_t steps = 0;
  bool deadlocked = false;
};

/// Runs one long trajectory and estimates the steady-state throughput of
/// `label` (and optionally a state reward) with batch-means confidence
/// intervals.
BatchEstimate run_batch_means(System& system, util::Xoshiro256& rng,
                              std::uint32_t label,
                              const std::function<double()>& state_reward = {},
                              const BatchOptions& options = {});

}  // namespace choreo::sim
