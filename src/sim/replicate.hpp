// Independent replications with confidence intervals.
//
// Simulation returns approximate answers that need confidence intervals
// (the trade-off against exact numerical solution the paper's Section 1.1
// spells out).  Replications run in parallel on the shared thread pool;
// each worker builds its own System through the factory (System instances
// are not thread-safe) and derives its RNG stream with xoshiro jumps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace choreo::sim {

struct ReplicateOptions {
  /// Per-trajectory options.  Leave run.state_reward empty and use
  /// `state_reward` below instead: each worker owns a distinct System, so
  /// the reward must be evaluated against *that* instance.
  RunOptions run;
  /// Optional state reward, called with the worker's own system.
  std::function<double(System&)> state_reward;
  std::size_t replications = 16;
  std::uint64_t seed = 0x5eed;
  double confidence_level = 0.95;
  bool parallel = true;
};

struct Estimate {
  util::ConfidenceInterval interval;
  util::RunningStats stats;
};

struct ReplicateResult {
  /// Throughput estimate per action label observed in any replication.
  std::map<std::uint32_t, Estimate> throughputs;
  /// Estimate of the state reward (when the run requested one).
  Estimate reward;
  /// Number of replications that hit a deadlock.
  std::size_t deadlocked = 0;

  /// Throughput interval for a label (zero-width zero when never seen).
  util::ConfidenceInterval throughput(std::uint32_t label) const;
};

/// Runs `options.replications` independent trajectories of systems created
/// by `factory` and aggregates per-replication estimates.
ReplicateResult replicate(
    const std::function<std::unique_ptr<System>()>& factory,
    const ReplicateOptions& options = {});

}  // namespace choreo::sim
