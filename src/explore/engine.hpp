// The generic level-synchronous state-space exploration engine.
//
// Both Figure-4 derivations — PEPA state spaces (state diagrams) and
// PEPA-net marking graphs (activity diagrams) — are breadth-first
// explorations of a derivation graph with identical structure: expand the
// states of one level in parallel lanes, then number the discovered states
// and emit the transitions serially in canonical order.  This header is the
// single implementation of that loop; pepa::StateSpace::derive and
// pepanet::NetStateSpace::derive_from are thin policies over it.
//
// The parallel phase is built to make extra lanes actually pay:
//
//   - work-stealing chunks: lanes pull dynamic chunks of the frontier from
//     an atomic cursor (util::ThreadPool::parallel_for_dynamic), so a lane
//     that draws cheap states immediately steals the next chunk instead of
//     idling at a static split until the slowest lane finishes;
//   - batched pre-resolution: each chunk resolves all of its transition
//     targets against the interning index with one StripedMap::find_batch
//     call, which locks each touched stripe once per chunk instead of once
//     per move;
//   - a latch instead of a future join: the calling thread is itself a
//     lane and, once the cursor runs dry, helps drain the pool's task
//     queue while the remaining lanes finish — no per-level sleep on a
//     vector of futures.
//
// The serial phase stays the ordering authority.  It numbers discoveries
// against a level-local set (the shared index is immutable during a level,
// so any unresolved target is either new or a duplicate within the level)
// and publishes the whole level to the index with one
// StripedMap::try_emplace_batch call — again one stripe visit per level,
// not one per state.
//
// The engine is parameterised over the state type, the interning map, the
// successor function and the move-commit callback, and preserves the
// guarantees the two former copies established:
//
//   - canonical FIFO numbering: state ids, transition order and every
//     downstream artifact (generator matrix, annotated XMI, DOT dumps,
//     cache keys) are byte-identical at every lane count, because the
//     serial phase renumbers discoveries in source-index-then-move order —
//     exactly the order a sequential FIFO exploration assigns;
//   - deterministic errors: expansion failures are captured per state and
//     the canonically-first one is rethrown, and the shared diagnostics
//     (state-space explosion, passive-at-top-level) keep the exact texts
//     the per-formalism copies produced;
//   - once-per-level budget checks: the resource governor is consulted
//     once per frontier level, after the level is recorded in the
//     accounting, so uninterrupted runs never observe the check and
//     interrupted runs stop within one level of the request.  States are
//     charged per level, including — through an unwind path — the states
//     appended by a level the serial phase abandons mid-way, so partial
//     DeriveStats and JobHandle::progress() never under-report.
//
// Requirements on the policy types:
//
//   State       value interned into `states`/`index`; moved, hashed (Hash)
//               and compared for equality.
//   Successors  callable State-const-ref -> std::vector<Move> (by value;
//               must be safe to call concurrently from expansion lanes).
//   Move        exposes `.target` (State) and `.rate` (with is_passive()).
//   Canonicalize callable State-ref -> bool, rewriting the state to its
//               canonical representative in place (returning whether it
//               changed) before any lookup or interning.  Applied to the
//               initial state and to every successor target, so the
//               explored space is the quotient under the induced
//               equivalence.  Must be deterministic and safe to call
//               concurrently from expansion lanes.  NoCanonicalize keeps
//               the identity (full-space) behaviour.
//   ActionName  callable Move-const-ref -> printable action name, used in
//               the passive-at-top-level diagnostic.
//   Commit      callable (source index, Move&, target index), invoked
//               serially in canonical order; `move.target` may already be
//               moved-from when the target was newly interned.
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/striped_map.hpp"
#include "util/thread_pool.hpp"

namespace choreo::explore {

/// Counters describing one exploration run, for perf reports and the
/// service's exploration metrics.
struct DeriveStats {
  /// Breadth-first levels explored.
  std::size_t levels = 0;
  /// Largest level (states expanded in one parallel round).
  std::size_t peak_frontier = 0;
  /// Transition targets that resolved to an already-discovered state.
  std::size_t dedup_hits = 0;
  /// Newly discovered states (equals the final state count).
  std::size_t dedup_misses = 0;
  /// States the canonicalization stage rewrote to a different (canonical)
  /// representative before interning; 0 on unaggregated runs.  Together
  /// with dedup_misses this yields the on-the-fly aggregation's reduction
  /// evidence: rewrites happened and the explored space is the quotient.
  std::size_t canonical_rewrites = 0;
  /// Wall-clock derivation time.
  double seconds = 0.0;
};

struct EngineOptions {
  /// Exploration aborts (util::BudgetError) beyond this many states; the
  /// paper's Section 1.1 names state-space explosion as the known hazard of
  /// the numerical approach.
  std::size_t max_states = 4'000'000;
  /// When false, passive moves at the top level raise util::ModelError
  /// instead of being dropped.
  bool allow_top_level_passive = false;
  /// Exploration lanes per breadth-first level: 1 forces the sequential
  /// path, 0 sizes to the pool (worker count + the calling thread).  The
  /// explored space is identical for every setting.
  std::size_t threads = 0;
  /// States per work-stealing expansion chunk; 0 sizes automatically from
  /// the level and lane count.  A pure throughput knob — chunk boundaries
  /// never affect the explored space.
  std::size_t chunk_grain = 0;
  /// Pool expansion chunks run on; nullptr means util::ThreadPool::shared().
  util::ThreadPool* pool = nullptr;
  /// Resource governor: cancellation, deadline and state/byte accounting.
  /// Checked once per breadth-first level and charged with every discovered
  /// state.  nullptr disables governance.
  util::Budget* budget = nullptr;
  /// Approximate per-state footprint charged to the budget.
  std::size_t bytes_per_state = 0;
  /// Formalism vocabulary for the state-space-explosion diagnostic:
  /// "state space"/"states" (PEPA) or "marking graph"/"markings" (nets).
  std::string_view space_noun = "state space";
  std::string_view state_noun = "states";
  /// Tail of the passive-at-top-level diagnostic, appended directly after
  /// "activity '<name>" (so it conventionally starts with "' ").
  std::string_view passive_suffix =
      "' occurs passively at the top level; synchronise it with an active"
      " partner";
};

/// Sentinel for "target not yet numbered" in the expansion buffers.
inline constexpr std::size_t kUnresolved =
    std::numeric_limits<std::size_t>::max();

/// One move recorded by an expansion worker: the move itself plus the
/// target's state index when it was already numbered in an earlier level.
template <typename Move>
struct PendingMove {
  Move move;
  std::size_t resolved = kUnresolved;
};

/// The identity canonicalization: every state is its own representative, so
/// the explored space is the full chain (the default, golden-locked path).
struct NoCanonicalize {
  template <typename State>
  bool operator()(State&) const noexcept {
    return false;
  }
};

/// Explores from `initial`, appending discovered states to `states` (state
/// 0 is the initial state) and publishing them in `index`; both are expected
/// empty.  Every state — the initial one and each successor target — passes
/// through `canonicalize` before lookup or interning, so the explored space
/// is the quotient of the derivation graph under the canonicalizer's
/// equivalence (pass NoCanonicalize for the full space).  Transitions are
/// handed to `commit` in canonical order.  Returns the exploration counters
/// (seconds covers the exploration loop only; callers usually overwrite it
/// with their own stopwatch).
template <typename State, typename Hash, typename Successors,
          typename Canonicalize, typename ActionName, typename Commit>
DeriveStats run(std::vector<State>& states,
                util::StripedMap<State, std::size_t, Hash>& index,
                State initial, Successors&& successors,
                Canonicalize&& canonicalize, ActionName&& action_name,
                Commit&& commit, const EngineOptions& options) {
  util::Stopwatch timer;
  DeriveStats stats;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
  const std::size_t lanes =
      options.threads == 0 ? pool.worker_count() + 1 : options.threads;

  // The states of the level being expanded, in canonical (index) order.
  std::vector<std::size_t> frontier;

  // Expansion lanes count their rewrites locally and fold them in here once
  // per chunk; the serial phases add theirs directly to `stats`.
  std::atomic<std::size_t> rewrites{0};

  if (canonicalize(initial)) ++stats.canonical_rewrites;
  states.push_back(std::move(initial));
  index.try_emplace(states[0], 0);
  ++stats.dedup_misses;
  frontier.push_back(0);
  if (options.budget != nullptr) {
    options.budget->charge_states(1, options.bytes_per_state);
  }

  using Move = typename std::decay_t<
      decltype(successors(std::declval<const State&>()))>::value_type;

  // The level-local dedup set for the serial phase: keys are indices into
  // `states`, and lookups against a not-yet-numbered candidate go through a
  // transparent wrapper so the candidate is never copied before it wins a
  // number (the wrapper also keeps the overloads unambiguous when State is
  // itself an integer type).  The shared index is never consulted here — it
  // is immutable while a level runs, so a target the expansion phase left
  // unresolved is either genuinely new or a duplicate within the level, and
  // this set holds exactly those.
  struct Candidate {
    const State* state;
  };
  struct FreshHash {
    using is_transparent = void;
    const std::vector<State>* states;
    std::size_t operator()(std::size_t idx) const {
      return Hash{}((*states)[idx]);
    }
    std::size_t operator()(Candidate c) const { return Hash{}(*c.state); }
  };
  struct FreshEq {
    using is_transparent = void;
    const std::vector<State>* states;
    bool operator()(std::size_t a, std::size_t b) const {
      return (*states)[a] == (*states)[b];
    }
    bool operator()(std::size_t a, Candidate c) const {
      return (*states)[a] == *c.state;
    }
    bool operator()(Candidate c, std::size_t a) const {
      return *c.state == (*states)[a];
    }
  };
  std::unordered_set<std::size_t, FreshHash, FreshEq> fresh(
      16, FreshHash{&states}, FreshEq{&states});

  while (!frontier.empty()) {
    ++stats.levels;
    stats.peak_frontier = std::max(stats.peak_frontier, frontier.size());
    // The cooperative governance point: once per level, after recording the
    // level in the accounting (so partial stats cover the level being
    // abandoned), before the expensive expansion.  Level granularity keeps
    // exploration deterministic — uninterrupted runs never observe it.
    if (options.budget != nullptr) {
      options.budget->note_level(frontier.size());
      options.budget->check("derive");
    }
    const std::vector<std::size_t> level = std::move(frontier);
    frontier.clear();

    // Parallel phase: expand every level state into its move buffer.  The
    // workers call the successor function concurrently (the policy must be
    // thread-safe) and pre-resolve targets against the index — one batched
    // lookup per chunk — which only the serial phase below mutates, between
    // levels.  Errors are captured per state so the canonically-first one
    // can be rethrown deterministically.
    std::vector<std::vector<PendingMove<Move>>> moves(level.size());
    std::vector<std::exception_ptr> errors(level.size());
    auto expand = [&](std::size_t begin, std::size_t end) {
      std::size_t local_rewrites = 0;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          std::vector<Move> found = successors(states[level[i]]);
          moves[i].reserve(found.size());
          for (Move& move : found) {
            // Canonicalize before the batched lookup below, so the index
            // only ever sees (and interns) canonical representatives.
            if (canonicalize(move.target)) ++local_rewrites;
            moves[i].push_back({std::move(move), kUnresolved});
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
      if (local_rewrites != 0) {
        rewrites.fetch_add(local_rewrites, std::memory_order_relaxed);
      }
      // Batched pre-resolution over the whole chunk: one stripe visit per
      // touched stripe instead of one lock round-trip per move.
      std::vector<const State*> keys;
      for (std::size_t i = begin; i < end; ++i) {
        if (errors[i]) continue;
        for (const PendingMove<Move>& pending : moves[i]) {
          keys.push_back(&pending.move.target);
        }
      }
      if (keys.empty()) return;
      std::vector<const std::size_t*> found(keys.size());
      index.find_batch(keys, found);
      std::size_t k = 0;
      for (std::size_t i = begin; i < end; ++i) {
        if (errors[i]) continue;
        for (PendingMove<Move>& pending : moves[i]) {
          const std::size_t* known = found[k++];
          if (known != nullptr) pending.resolved = *known;
        }
      }
    };
    if (lanes <= 1 || level.size() <= 1) {
      expand(0, level.size());
    } else {
      const std::size_t grain =
          options.chunk_grain != 0
              ? options.chunk_grain
              : std::clamp<std::size_t>(level.size() / (lanes * 8), 1, 128);
      pool.parallel_for_dynamic(level.size(), grain, lanes, expand);
    }

    // Serial phase: number the discovered states and commit transitions in
    // canonical order — source index, then move order — which is the order
    // the sequential FIFO exploration produces.
    const std::size_t known_before = states.size();
    auto charge_level = [&] {
      if (options.budget != nullptr) {
        options.budget->charge_states(
            states.size() - known_before,
            (states.size() - known_before) * options.bytes_per_state);
      }
    };
    try {
      for (std::size_t i = 0; i < level.size(); ++i) {
        if (errors[i]) std::rethrow_exception(errors[i]);
        const std::size_t source = level[i];
        for (PendingMove<Move>& pending_move : moves[i]) {
          Move& move = pending_move.move;
          if (move.rate.is_passive()) {
            if (options.allow_top_level_passive) continue;
            throw util::ModelError(util::msg("activity '", action_name(move),
                                             options.passive_suffix));
          }
          std::size_t target = pending_move.resolved;
          if (target != kUnresolved) {
            ++stats.dedup_hits;
          } else if (const auto it = fresh.find(Candidate{&move.target});
                     it != fresh.end()) {
            target = *it;
            ++stats.dedup_hits;
          } else {
            if (states.size() >= options.max_states) {
              throw util::BudgetError(util::msg(
                  options.space_noun, " exceeds the configured bound of ",
                  options.max_states, " ", options.state_noun,
                  " (state-space explosion)"));
            }
            target = states.size();
            states.push_back(std::move(move.target));
            fresh.insert(target);
            ++stats.dedup_misses;
            frontier.push_back(target);
          }
          commit(source, move, target);
        }
      }
    } catch (...) {
      // Unwind accounting: states already appended by this level must be
      // charged even though the level is being abandoned, or partial
      // DeriveStats and JobHandle::progress() under-report.
      charge_level();
      throw;
    }
    // Bulk-intern the level: publish every state this serial pass numbered
    // with a single batched insert (each touched stripe locked once), then
    // charge the budget for them.
    if (states.size() > known_before) {
      std::vector<const State*> keys;
      std::vector<std::size_t> values;
      keys.reserve(states.size() - known_before);
      values.reserve(states.size() - known_before);
      for (std::size_t s = known_before; s < states.size(); ++s) {
        keys.push_back(&states[s]);
        values.push_back(s);
      }
      index.try_emplace_batch(keys, values);
    }
    fresh.clear();
    charge_level();
  }
  stats.canonical_rewrites += rewrites.load(std::memory_order_relaxed);
  stats.seconds = timer.seconds();
  return stats;
}

/// The historical signature: explore the full space (no canonicalization).
template <typename State, typename Hash, typename Successors,
          typename ActionName, typename Commit>
DeriveStats run(std::vector<State>& states,
                util::StripedMap<State, std::size_t, Hash>& index,
                State initial, Successors&& successors,
                ActionName&& action_name, Commit&& commit,
                const EngineOptions& options) {
  return run(states, index, std::move(initial),
             std::forward<Successors>(successors), NoCanonicalize{},
             std::forward<ActionName>(action_name),
             std::forward<Commit>(commit), options);
}

}  // namespace choreo::explore
