// The generic level-synchronous state-space exploration engine.
//
// Both Figure-4 derivations — PEPA state spaces (state diagrams) and
// PEPA-net marking graphs (activity diagrams) — are breadth-first
// explorations of a derivation graph with identical structure: expand the
// states of one level in parallel lanes, then number the discovered states
// and emit the transitions serially in canonical order.  This header is the
// single implementation of that loop; pepa::StateSpace::derive and
// pepanet::NetStateSpace::derive_from are thin policies over it.
//
// The engine is parameterised over the state type, the interning map, the
// successor function and the move-commit callback, and preserves the
// guarantees the two former copies established:
//
//   - canonical FIFO numbering: state ids, transition order and every
//     downstream artifact (generator matrix, annotated XMI, DOT dumps,
//     cache keys) are byte-identical at every lane count, because the
//     serial phase renumbers discoveries in source-index-then-move order —
//     exactly the order a sequential FIFO exploration assigns;
//   - deterministic errors: expansion failures are captured per state and
//     the canonically-first one is rethrown, and the shared diagnostics
//     (state-space explosion, passive-at-top-level) keep the exact texts
//     the per-formalism copies produced;
//   - once-per-level budget checks: the resource governor is consulted
//     once per frontier level, after the level is recorded in the
//     accounting, so uninterrupted runs never observe the check and
//     interrupted runs stop within one level of the request.
//
// Requirements on the policy types:
//
//   State       value interned into `states`/`index`; moved, hashed (Hash)
//               and compared for equality.
//   Successors  callable State-const-ref -> std::vector<Move> (by value;
//               must be safe to call concurrently from expansion lanes).
//   Move        exposes `.target` (State) and `.rate` (with is_passive()).
//   ActionName  callable Move-const-ref -> printable action name, used in
//               the passive-at-top-level diagnostic.
//   Commit      callable (source index, Move&, target index), invoked
//               serially in canonical order; `move.target` may already be
//               moved-from when the target was newly interned.
#pragma once

#include <algorithm>
#include <exception>
#include <future>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/striped_map.hpp"
#include "util/thread_pool.hpp"

namespace choreo::explore {

/// Counters describing one exploration run, for perf reports and the
/// service's exploration metrics.
struct DeriveStats {
  /// Breadth-first levels explored.
  std::size_t levels = 0;
  /// Largest level (states expanded in one parallel round).
  std::size_t peak_frontier = 0;
  /// Transition targets that resolved to an already-discovered state.
  std::size_t dedup_hits = 0;
  /// Newly discovered states (equals the final state count).
  std::size_t dedup_misses = 0;
  /// Wall-clock derivation time.
  double seconds = 0.0;
};

struct EngineOptions {
  /// Exploration aborts (util::BudgetError) beyond this many states; the
  /// paper's Section 1.1 names state-space explosion as the known hazard of
  /// the numerical approach.
  std::size_t max_states = 4'000'000;
  /// When false, passive moves at the top level raise util::ModelError
  /// instead of being dropped.
  bool allow_top_level_passive = false;
  /// Exploration lanes per breadth-first level: 1 forces the sequential
  /// path, 0 sizes to the pool (worker count + the calling thread).  The
  /// explored space is identical for every setting.
  std::size_t threads = 0;
  /// Pool expansion chunks run on; nullptr means util::ThreadPool::shared().
  util::ThreadPool* pool = nullptr;
  /// Resource governor: cancellation, deadline and state/byte accounting.
  /// Checked once per breadth-first level and charged with every discovered
  /// state.  nullptr disables governance.
  util::Budget* budget = nullptr;
  /// Approximate per-state footprint charged to the budget.
  std::size_t bytes_per_state = 0;
  /// Formalism vocabulary for the state-space-explosion diagnostic:
  /// "state space"/"states" (PEPA) or "marking graph"/"markings" (nets).
  std::string_view space_noun = "state space";
  std::string_view state_noun = "states";
  /// Tail of the passive-at-top-level diagnostic, appended directly after
  /// "activity '<name>" (so it conventionally starts with "' ").
  std::string_view passive_suffix =
      "' occurs passively at the top level; synchronise it with an active"
      " partner";
};

/// Sentinel for "target not yet numbered" in the expansion buffers.
inline constexpr std::size_t kUnresolved =
    std::numeric_limits<std::size_t>::max();

/// One move recorded by an expansion worker: the move itself plus the
/// target's state index when it was already numbered in an earlier level.
template <typename Move>
struct PendingMove {
  Move move;
  std::size_t resolved = kUnresolved;
};

/// Explores from `initial`, appending discovered states to `states` (state
/// 0 is the initial state) and publishing them in `index`; both are expected
/// empty.  Transitions are handed to `commit` in canonical order.  Returns
/// the exploration counters (seconds covers the exploration loop only;
/// callers usually overwrite it with their own stopwatch).
template <typename State, typename Hash, typename Successors,
          typename ActionName, typename Commit>
DeriveStats run(std::vector<State>& states,
                util::StripedMap<State, std::size_t, Hash>& index,
                State initial, Successors&& successors,
                ActionName&& action_name, Commit&& commit,
                const EngineOptions& options) {
  util::Stopwatch timer;
  DeriveStats stats;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::shared();
  const std::size_t lanes =
      options.threads == 0 ? pool.worker_count() + 1 : options.threads;

  // The states of the level being expanded, in canonical (index) order.
  std::vector<std::size_t> frontier;

  auto intern = [&](State state) {
    if (const std::size_t* known = index.find(state)) {
      ++stats.dedup_hits;
      return *known;
    }
    if (states.size() >= options.max_states) {
      throw util::BudgetError(util::msg(
          options.space_noun, " exceeds the configured bound of ",
          options.max_states, " ", options.state_noun,
          " (state-space explosion)"));
    }
    const std::size_t state_index = states.size();
    states.push_back(std::move(state));
    index.try_emplace(states[state_index], state_index);
    ++stats.dedup_misses;
    frontier.push_back(state_index);
    return state_index;
  };

  intern(std::move(initial));
  if (options.budget != nullptr) {
    options.budget->charge_states(1, options.bytes_per_state);
  }
  while (!frontier.empty()) {
    ++stats.levels;
    stats.peak_frontier = std::max(stats.peak_frontier, frontier.size());
    // The cooperative governance point: once per level, after recording the
    // level in the accounting (so partial stats cover the level being
    // abandoned), before the expensive expansion.  Level granularity keeps
    // exploration deterministic — uninterrupted runs never observe it.
    if (options.budget != nullptr) {
      options.budget->note_level(frontier.size());
      options.budget->check("derive");
    }
    const std::vector<std::size_t> level = std::move(frontier);
    frontier.clear();

    // Parallel phase: expand every level state into its move buffer.  The
    // workers call the successor function concurrently (the policy must be
    // thread-safe) and pre-resolve targets against the index, which only
    // the serial phase below mutates.  Errors are captured per state so the
    // canonically-first one can be rethrown deterministically.
    using Move = typename std::decay_t<
        decltype(successors(std::declval<const State&>()))>::value_type;
    std::vector<std::vector<PendingMove<Move>>> moves(level.size());
    std::vector<std::exception_ptr> errors(level.size());
    auto expand = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          std::vector<Move> found = successors(states[level[i]]);
          moves[i].reserve(found.size());
          for (Move& move : found) {
            const std::size_t* known = index.find(move.target);
            moves[i].push_back(
                {std::move(move), known != nullptr ? *known : kUnresolved});
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    const std::size_t chunks = std::min(lanes, level.size());
    if (chunks <= 1) {
      expand(0, level.size());
    } else {
      std::vector<std::future<void>> pending;
      pending.reserve(chunks - 1);
      for (std::size_t c = 1; c < chunks; ++c) {
        const std::size_t begin = level.size() * c / chunks;
        const std::size_t end = level.size() * (c + 1) / chunks;
        pending.push_back(pool.submit([&, begin, end] { expand(begin, end); }));
      }
      expand(0, level.size() / chunks);
      for (std::future<void>& f : pending) f.get();
    }

    // Serial phase: number the discovered states and commit transitions in
    // canonical order — source index, then move order — which is the order
    // the sequential FIFO exploration produces.
    const std::size_t known_before = states.size();
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
      const std::size_t source = level[i];
      for (PendingMove<Move>& pending_move : moves[i]) {
        Move& move = pending_move.move;
        if (move.rate.is_passive()) {
          if (options.allow_top_level_passive) continue;
          throw util::ModelError(util::msg("activity '", action_name(move),
                                           options.passive_suffix));
        }
        std::size_t target;
        if (pending_move.resolved != kUnresolved) {
          target = pending_move.resolved;
          ++stats.dedup_hits;
        } else {
          target = intern(std::move(move.target));
        }
        commit(source, move, target);
      }
    }
    if (options.budget != nullptr) {
      options.budget->charge_states(
          states.size() - known_before,
          (states.size() - known_before) * options.bytes_per_state);
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace choreo::explore
