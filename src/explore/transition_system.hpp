// The shared labelled transition system of a derived state space, stored in
// CSR (compressed sparse row) form, following Ding & Hillston's move from
// syntactic state spaces to compact numerical representations.
//
// The exploration engine emits transitions grouped by source in canonical
// order, so the flat payload array IS the CSR value array: finalize() only
// has to record the row boundaries (an offsets array indexed by source) and
// a second, action-keyed CSR index (a stable counting sort of transition
// positions by action id).  The two indexes make the measures that used to
// scan the whole transition vector per query O(degree) slice lookups:
//
//   from(source)                all transitions leaving one state
//   action_transitions(action)  positions of an action's transitions, in
//                               emission order (so per-action measure sums
//                               accumulate in the exact order the flat scan
//                               used — floating-point results are
//                               bit-identical)
//   deadlock_states()           states whose CSR row is empty
//
// The transition record type is a template parameter: PEPA uses the minimal
// {source, target, action, rate} record, PEPA nets a wider record carrying
// the firing/local provenance.  Records must expose `.source`, `.target`,
// `.action` (an integral id) and `.rate`.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace choreo::explore {

template <typename Transition>
class TransitionSystem {
 public:
  using value_type = Transition;

  /// Appends one transition.  Sources must be non-decreasing — the
  /// canonical emission order of level-synchronous exploration.
  void push_back(Transition transition) {
    CHOREO_ASSERT(transitions_.empty() ||
                  transition.source >= transitions_.back().source);
    transitions_.push_back(std::move(transition));
  }

  void reserve(std::size_t n) { transitions_.reserve(n); }

  /// Builds the source-row and action indexes.  Call once, after
  /// exploration, with the final state count; O(transitions + states +
  /// actions).
  void finalize(std::size_t state_count) {
    row_offsets_.assign(state_count + 1, 0);
    std::size_t max_action = 0;
    for (const Transition& t : transitions_) {
      CHOREO_ASSERT(t.source < state_count && t.target < state_count);
      ++row_offsets_[t.source + 1];
      max_action = std::max(max_action, static_cast<std::size_t>(t.action));
    }
    for (std::size_t s = 0; s < state_count; ++s) {
      row_offsets_[s + 1] += row_offsets_[s];
    }
    const std::size_t actions = transitions_.empty() ? 0 : max_action + 1;
    action_offsets_.assign(actions + 1, 0);
    for (const Transition& t : transitions_) {
      ++action_offsets_[static_cast<std::size_t>(t.action) + 1];
    }
    for (std::size_t a = 0; a < actions; ++a) {
      action_offsets_[a + 1] += action_offsets_[a];
    }
    // Stable counting sort: within one action, positions keep emission
    // order, so slice iteration reproduces the flat scan exactly.
    by_action_.resize(transitions_.size());
    std::vector<std::size_t> cursor(action_offsets_.begin(),
                                    action_offsets_.begin() + actions);
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
      by_action_[cursor[static_cast<std::size_t>(transitions_[i].action)]++] =
          i;
    }
  }

  std::size_t size() const noexcept { return transitions_.size(); }
  bool empty() const noexcept { return transitions_.empty(); }

  /// States covered by the row index (set by finalize()).
  std::size_t state_count() const noexcept {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }

  /// The flat payload, in canonical emission order (grouped by source).
  const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

  const Transition& operator[](std::size_t i) const { return transitions_[i]; }

  /// CSR row slice: every transition leaving `source`.
  std::span<const Transition> from(std::size_t source) const {
    return std::span<const Transition>(transitions_)
        .subspan(row_offsets_[source],
                 row_offsets_[source + 1] - row_offsets_[source]);
  }

  std::size_t out_degree(std::size_t source) const {
    return row_offsets_[source + 1] - row_offsets_[source];
  }

  /// Distinct action-id range covered by the action index (max id + 1).
  std::size_t action_bound() const noexcept {
    return action_offsets_.empty() ? 0 : action_offsets_.size() - 1;
  }

  /// Positions (into transitions(), in emission order) of the transitions
  /// carrying `action`; empty for actions outside the index.
  std::span<const std::size_t> action_transitions(std::size_t action) const {
    if (action + 1 >= action_offsets_.size()) return {};
    return std::span<const std::size_t>(by_action_)
        .subspan(action_offsets_[action],
                 action_offsets_[action + 1] - action_offsets_[action]);
  }

  /// States enabling no move at all — the empty rows of the source index.
  std::vector<std::size_t> deadlock_states() const {
    std::vector<std::size_t> out;
    for (std::size_t s = 0; s < state_count(); ++s) {
      if (row_offsets_[s] == row_offsets_[s + 1]) out.push_back(s);
    }
    return out;
  }

  /// Steady-state throughput of `action`: sum of distribution[source] * rate
  /// over the action's slice, O(degree of the action) — independent of the
  /// total transition count.
  template <typename Distribution>
  double action_throughput(const Distribution& distribution,
                           std::size_t action) const {
    double sum = 0.0;
    for (const std::size_t i : action_transitions(action)) {
      sum += distribution[transitions_[i].source] * transitions_[i].rate;
    }
    return sum;
  }

 private:
  std::vector<Transition> transitions_;
  /// row_offsets_[s]..row_offsets_[s+1]: the transitions leaving state s.
  std::vector<std::size_t> row_offsets_;
  /// action_offsets_[a]..action_offsets_[a+1]: slice of by_action_ holding
  /// the positions of action a's transitions, in emission order.
  std::vector<std::size_t> action_offsets_;
  std::vector<std::size_t> by_action_;
};

}  // namespace choreo::explore
