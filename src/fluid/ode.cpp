#include "fluid/ode.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/error.hpp"

namespace choreo::fluid {

namespace {

// Dormand-Prince 5(4) tableau.
constexpr double kA21 = 1.0 / 5.0;
constexpr double kA31 = 3.0 / 40.0, kA32 = 9.0 / 40.0;
constexpr double kA41 = 44.0 / 45.0, kA42 = -56.0 / 15.0, kA43 = 32.0 / 9.0;
constexpr double kA51 = 19372.0 / 6561.0, kA52 = -25360.0 / 2187.0,
                 kA53 = 64448.0 / 6561.0, kA54 = -212.0 / 729.0;
constexpr double kA61 = 9017.0 / 3168.0, kA62 = -355.0 / 33.0,
                 kA63 = 46732.0 / 5247.0, kA64 = 49.0 / 176.0,
                 kA65 = -5103.0 / 18656.0;
constexpr double kB1 = 35.0 / 384.0, kB3 = 500.0 / 1113.0,
                 kB4 = 125.0 / 192.0, kB5 = -2187.0 / 6784.0,
                 kB6 = 11.0 / 84.0;
// b - b*: the fifth-minus-fourth-order error weights.
constexpr double kE1 = 71.0 / 57600.0, kE3 = -71.0 / 16695.0,
                 kE4 = 71.0 / 1920.0, kE5 = -17253.0 / 339200.0,
                 kE6 = 22.0 / 525.0, kE7 = -1.0 / 40.0;

constexpr double kC2 = 1.0 / 5.0, kC3 = 3.0 / 10.0, kC4 = 4.0 / 5.0,
                 kC5 = 8.0 / 9.0;

constexpr double kSafety = 0.9;
constexpr double kMinFactor = 0.2;
constexpr double kMaxFactor = 5.0;

// Accepted steps whose whole displacement stays below the error-control
// scale before the state is declared numerically constant.  An explicit
// method hovering at its stability boundary around a fixed point keeps
// ||f|| at the noise floor (local error / h), which can sit far above an
// absolute steady tolerance while the state itself no longer moves; 25
// consecutive sub-tolerance steps (with the controller free to grow h
// five-fold each accept) cannot happen on a resolved transient.
constexpr std::size_t kStallStreak = 25;

double inf_norm(std::span<const double> v) {
  double norm = 0.0;
  for (double value : v) norm = std::max(norm, std::abs(value));
  return norm;
}

}  // namespace

std::vector<double> OdeSolution::at(double t) const {
  if (mesh_.empty()) {
    throw util::NumericError(
        "fluid: dense output requires record_trajectory");
  }
  if (t <= mesh_.front().t) return mesh_.front().state;
  if (t >= mesh_.back().t) return mesh_.back().state;
  const auto after = std::upper_bound(
      mesh_.begin(), mesh_.end(), t,
      [](double value, const MeshPoint& p) { return value < p.t; });
  const MeshPoint& p1 = *after;
  const MeshPoint& p0 = *std::prev(after);
  const double h = p1.t - p0.t;
  const double theta = (t - p0.t) / h;
  const double t2 = theta * theta, t3 = t2 * theta;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + theta;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  std::vector<double> y(p0.state.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = h00 * p0.state[i] + h10 * h * p0.derivative[i] +
           h01 * p1.state[i] + h11 * h * p1.derivative[i];
  }
  return y;
}

OdeSolution integrate(const Field& field, std::vector<double> x0,
                      const OdeOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t n = x0.size();

  OdeSolution solution;
  solution.state_ = std::move(x0);
  if (n == 0 || options.t_end <= 0.0) {
    solution.stats_.steady = n == 0;
    return solution;
  }

  std::vector<double>& y = solution.state_;
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n);
  std::vector<double> stage(n), y_new(n);

  double t = 0.0;
  field(t, y, k1);

  if (options.record_trajectory) {
    solution.mesh_.push_back({t, y, k1});
  }

  // Initial step: balance the solution and derivative magnitudes under the
  // mixed tolerance (Hairer's simplified selection).
  double h = options.initial_step;
  if (h <= 0.0) {
    double d0 = 0.0, d1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double sc = options.abs_tol + options.rel_tol * std::abs(y[i]);
      d0 += (y[i] / sc) * (y[i] / sc);
      d1 += (k1[i] / sc) * (k1[i] / sc);
    }
    d0 = std::sqrt(d0 / static_cast<double>(n));
    d1 = std::sqrt(d1 / static_cast<double>(n));
    h = (d0 < 1e-5 || d1 < 1e-5) ? 1e-6 : 0.01 * d0 / d1;
  }
  h = std::min(h, options.t_end);

  std::size_t attempts_since_check = 0;
  std::size_t steady_streak = 0;
  std::size_t stall_streak = 0;

  auto finish = [&](bool steady) {
    solution.stats_.steady = steady;
    solution.stats_.end_time = t;
    solution.stats_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return solution;
  };

  while (t < options.t_end) {
    if (solution.stats_.steps + solution.stats_.rejected_steps >=
        options.max_steps) {
      throw util::NumericError(util::msg(
          "fluid: integrator exhausted ", options.max_steps,
          " steps before reaching steady state or t=", options.t_end));
    }
    if (options.budget != nullptr &&
        ++attempts_since_check >= util::Budget::kSolverCheckStride) {
      options.budget->charge_solver_iterations(attempts_since_check);
      attempts_since_check = 0;
      options.budget->check("fluid");
    }

    h = std::min(h, options.t_end - t);
    if (!(h > std::abs(t) * 1e-14) || !(h > 1e-300)) {
      throw util::NumericError("fluid: step size underflow");
    }

    // The seven Dormand-Prince stages (k1 is fresh: FSAL).
    for (std::size_t i = 0; i < n; ++i) stage[i] = y[i] + h * kA21 * k1[i];
    field(t + kC2 * h, stage, k2);
    for (std::size_t i = 0; i < n; ++i) {
      stage[i] = y[i] + h * (kA31 * k1[i] + kA32 * k2[i]);
    }
    field(t + kC3 * h, stage, k3);
    for (std::size_t i = 0; i < n; ++i) {
      stage[i] = y[i] + h * (kA41 * k1[i] + kA42 * k2[i] + kA43 * k3[i]);
    }
    field(t + kC4 * h, stage, k4);
    for (std::size_t i = 0; i < n; ++i) {
      stage[i] = y[i] + h * (kA51 * k1[i] + kA52 * k2[i] + kA53 * k3[i] +
                             kA54 * k4[i]);
    }
    field(t + kC5 * h, stage, k5);
    for (std::size_t i = 0; i < n; ++i) {
      stage[i] = y[i] + h * (kA61 * k1[i] + kA62 * k2[i] + kA63 * k3[i] +
                             kA64 * k4[i] + kA65 * k5[i]);
    }
    field(t + h, stage, k6);
    for (std::size_t i = 0; i < n; ++i) {
      y_new[i] = y[i] + h * (kB1 * k1[i] + kB3 * k3[i] + kB4 * k4[i] +
                             kB5 * k5[i] + kB6 * k6[i]);
    }
    field(t + h, y_new, k7);

    // Scaled RMS error of the embedded fourth-order difference, plus the
    // step's displacement on the same scale (for stall detection).
    double err = 0.0;
    double motion = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = h * (kE1 * k1[i] + kE3 * k3[i] + kE4 * k4[i] +
                            kE5 * k5[i] + kE6 * k6[i] + kE7 * k7[i]);
      const double sc = options.abs_tol +
                        options.rel_tol *
                            std::max(std::abs(y[i]), std::abs(y_new[i]));
      err += (e / sc) * (e / sc);
      motion = std::max(motion, std::abs(y_new[i] - y[i]) / sc);
    }
    err = std::sqrt(err / static_cast<double>(n));

    if (err > 1.0) {
      ++solution.stats_.rejected_steps;
      h *= std::max(kMinFactor, kSafety * std::pow(err, -0.2));
      continue;
    }

    t += h;
    ++solution.stats_.steps;
    y.swap(y_new);
    k1.swap(k7);  // FSAL: f(t, y) is already evaluated

    if (options.record_trajectory) {
      solution.mesh_.push_back({t, y, k1});
    }

    if (options.steady_tolerance > 0.0) {
      if (inf_norm(k1) <=
          options.steady_tolerance * std::max(1.0, inf_norm(y))) {
        if (++steady_streak >= 2) return finish(true);
      } else {
        steady_streak = 0;
      }
      if (motion <= 1.0) {
        if (++stall_streak >= kStallStreak) return finish(true);
      } else {
        stall_streak = 0;
      }
    }

    const double factor =
        err <= 0.0 ? kMaxFactor
                   : std::clamp(kSafety * std::pow(err, -0.2), kMinFactor,
                                kMaxFactor);
    h *= factor;
  }

  return finish(false);
}

}  // namespace choreo::fluid
