// High-level fluid analysis: vector form + ODE integration to steady state
// + the measures the Choreographer reflects (throughput per action,
// population / occupancy probability per named local state).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "fluid/ode.hpp"
#include "fluid/vector_form.hpp"

namespace choreo::fluid {

struct FluidOptions {
  BuildOptions build;
  /// ODE control; `ode.budget` is the governor for the whole analysis.
  OdeOptions ode;
};

struct FluidResult {
  VectorForm form;
  /// Steady-state population vector (indexed like form.dimension()).
  std::vector<double> steady;
  OdeStats stats;
  /// (action, throughput) for every action of the vector form, sorted by
  /// action id — the fluid counterpart of pepa::all_throughputs.
  std::vector<std::pair<pepa::ActionId, double>> throughputs;

  /// Expected component count occupying `constant` in steady state.
  double population(pepa::ConstantId constant) const {
    return form.population(steady, constant);
  }
};

/// Builds the vector form of `system` and integrates the mean-field ODE
/// until the steady-state detector fires.  Throws util::NumericError when
/// the integrator reaches the horizon without detecting a steady state.
FluidResult solve_steady(pepa::Semantics& semantics, pepa::ProcessId system,
                         const FluidOptions& options = {});

}  // namespace choreo::fluid
