// Adaptive explicit Runge-Kutta integration for the fluid backend.
//
// The stepper is the Dormand-Prince 5(4) embedded pair (the RKF45 family
// member used by most production ODE suites): seven stages, FSAL, a
// fifth-order solution advanced with a fourth-order error estimate, and
// PI-free step-size control with the classic 0.9 * err^(-1/5) factor.
// Dense output between accepted steps uses the cubic Hermite interpolant on
// (y0, f0, y1, f1) — third-order accurate, which is ample for sampling
// transient curves and for the steady-state detector.
//
// The loop is budget-governed like the linear solvers: every
// util::Budget::kSolverCheckStride step attempts it charges the attempts
// and calls Budget::check("fluid"), so deadlines and cancellation interrupt
// an integration within a handful of steps.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/budget.hpp"

namespace choreo::fluid {

struct OdeOptions {
  double rel_tol = 1e-6;
  double abs_tol = 1e-9;
  /// Integration horizon: integration stops at this time even when the
  /// steady-state criterion was never met (stats().steady stays false).
  double t_end = 1e7;
  /// Starting step size; 0 selects one automatically from the initial
  /// derivative magnitude.
  double initial_step = 0.0;
  std::size_t max_steps = 10'000'000;
  /// Steady-state detector: stop once the scaled derivative norm
  /// ||f(x)||_inf <= steady_tolerance * max(1, ||x||_inf) holds on two
  /// consecutive accepted steps, or once the state stalls — 25 consecutive
  /// accepted steps that each move the state by less than the
  /// error-control scale (abs_tol + rel_tol * |x|).  The stall criterion
  /// catches fixed points an explicit method can only hover around: at the
  /// stability boundary ||f|| bottoms out at the local-error noise floor,
  /// which may exceed any absolute derivative threshold even though the
  /// state is numerically constant.  0 disables both criteria.
  double steady_tolerance = 1e-8;
  /// Keep the accepted-step mesh for dense output via OdeSolution::at().
  bool record_trajectory = false;
  /// Cooperative deadline/cancellation governor; nullptr disables checks.
  util::Budget* budget = nullptr;
};

struct OdeStats {
  std::size_t steps = 0;           ///< accepted steps
  std::size_t rejected_steps = 0;  ///< error-controlled rejections
  double seconds = 0.0;            ///< wall clock of the integration
  double end_time = 0.0;           ///< time reached
  bool steady = false;             ///< steady-state criterion met
};

/// One accepted mesh point (recorded when OdeOptions::record_trajectory).
struct MeshPoint {
  double t;
  std::vector<double> state;
  std::vector<double> derivative;
};

/// dx = f(t, x); `dx` is pre-sized to x.size() and must be fully written.
using Field =
    std::function<void(double t, std::span<const double> x,
                       std::span<double> dx)>;

class OdeSolution {
 public:
  const std::vector<double>& state() const noexcept { return state_; }
  double end_time() const noexcept { return stats_.end_time; }
  bool steady_state_reached() const noexcept { return stats_.steady; }
  const OdeStats& stats() const noexcept { return stats_; }

  /// Recorded accepted-step mesh (empty unless record_trajectory).
  const std::vector<MeshPoint>& mesh() const noexcept { return mesh_; }

  /// Dense output: cubic Hermite interpolation of the solution at `t`
  /// (clamped to the integrated interval).  Requires record_trajectory.
  std::vector<double> at(double t) const;

 private:
  friend OdeSolution integrate(const Field&, std::vector<double>,
                               const OdeOptions&);

  std::vector<double> state_;
  OdeStats stats_;
  std::vector<MeshPoint> mesh_;
};

/// Integrates x' = f(t, x) from x0 at t = 0.  Throws util::NumericError on
/// step-size underflow or when max_steps is exhausted before t_end, and
/// propagates InterruptedError/BudgetError from the budget checkpoint.
OdeSolution integrate(const Field& field, std::vector<double> x0,
                      const OdeOptions& options = {});

}  // namespace choreo::fluid
