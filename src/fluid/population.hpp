// The exact population CTMC of a vector form: the lumped chain whose states
// are count vectors over the groups' local derivative sets (Ding &
// Hillston's numerical vector form read as a Markov chain, i.e. the
// aggregation by exchangeability of replicas).  For K local states and N
// replicas the chain has O(N^(K-1)) states instead of the O(K^N) of the
// full interleaving, which makes *exact* steady-state validation of the
// fluid approximation feasible well past the point where ordinary
// derivation explodes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ctmc/generator.hpp"
#include "fluid/vector_form.hpp"
#include "util/budget.hpp"

namespace choreo::fluid {

struct PopulationOptions {
  /// Safety bound on the number of count vectors.
  std::size_t max_states = 1'000'000;
  /// Cooperative governor: checked during the breadth-first exploration and
  /// charged with the discovered vectors.  nullptr disables governance.
  util::Budget* budget = nullptr;
};

struct PopulationTransition {
  std::uint32_t source;
  std::uint32_t target;
  pepa::ActionId action;
  double rate;
};

class PopulationSpace {
 public:
  std::size_t state_count() const noexcept { return states_.size(); }
  /// Count vectors in discovery order; state 0 is the initial population.
  const std::vector<std::vector<std::uint32_t>>& states() const noexcept {
    return states_;
  }
  const std::vector<PopulationTransition>& transitions() const noexcept {
    return transitions_;
  }

  ctmc::Generator generator() const;

  /// Steady-state throughput of `action` under `distribution`.
  double action_throughput(std::span<const double> distribution,
                           pepa::ActionId action) const;

  /// Expected number of components occupying `constant` under
  /// `distribution` (exact counterpart of VectorForm::population).
  double mean_population(std::span<const double> distribution,
                         const VectorForm& form,
                         pepa::ConstantId constant) const;

 private:
  friend PopulationSpace derive_population(const VectorForm&,
                                           const PopulationOptions&);

  std::vector<std::vector<std::uint32_t>> states_;
  std::vector<PopulationTransition> transitions_;
};

/// Explores the population chain of `form` breadth-first from the initial
/// count vector.  Requires integral group counts (util::ModelError
/// otherwise); throws util::BudgetError when max_states is exceeded.
PopulationSpace derive_population(const VectorForm& form,
                                  const PopulationOptions& options = {});

}  // namespace choreo::fluid
