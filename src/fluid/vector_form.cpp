#include "fluid/vector_form.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "pepa/measures.hpp"
#include "util/error.hpp"

namespace choreo::fluid {

namespace {

using pepa::ActionId;
using pepa::Op;
using pepa::ProcessArena;
using pepa::ProcessId;

/// True when `id` contains a cooperation anywhere below (through constant
/// definitions).  Sequential leaves must be composition-free: a hiding or
/// choice over a composition cannot be represented as one counted group.
bool contains_composition(const ProcessArena& arena, ProcessId id,
                          std::unordered_set<ProcessId>& seen) {
  if (!seen.insert(id).second) return false;
  const pepa::ProcessNode& node = arena.node(id);
  switch (node.op) {
    case Op::kStop:
      return false;
    case Op::kCooperation:
      return true;
    case Op::kPrefix:
    case Op::kHiding:
      return contains_composition(arena, node.left, seen);
    case Op::kChoice:
      return contains_composition(arena, node.left, seen) ||
             contains_composition(arena, node.right, seen);
    case Op::kConstant:
      return contains_composition(arena, arena.body(node.constant), seen);
  }
  return false;
}

struct Builder {
  pepa::Semantics& semantics;
  const BuildOptions& options;
  std::vector<TreeNode> tree;
  std::vector<Group> groups;
  /// Per group, local-coordinate transitions (merged multiplicities).
  struct RawTransition {
    std::uint32_t source;
    std::uint32_t target;
    ActionId action;
    double rate;
    bool passive;
  };
  std::vector<std::vector<RawTransition>> raw;

  /// Flattens a chain of cooperations over the same action set into its
  /// maximal list of operands (min and + are both associative).  Iterative:
  /// replicated populations produce very deep or very wide chains.
  void gather(ProcessId term, const std::vector<ActionId>& set,
              std::vector<ProcessId>& out) {
    std::vector<ProcessId> stack{term};
    while (!stack.empty()) {
      const ProcessId current = stack.back();
      stack.pop_back();
      const pepa::ProcessNode& node = semantics.arena().node(current);
      if (node.op == Op::kCooperation && node.action_set == set) {
        stack.push_back(node.right);
        stack.push_back(node.left);
      } else {
        out.push_back(current);
      }
    }
  }

  /// Same flattening, but per distinct operand with its occurrence count.
  /// Hash-consing shares the identical subtrees of a replicated population,
  /// so the chain is a DAG with O(log N) distinct nodes; counting
  /// multiplicities instead of walking every occurrence keeps the build
  /// cost independent of the population size.  Operands are interned before
  /// the cooperations that use them, so visiting pending nodes in
  /// descending-id order sees every chain parent before its children.
  void gather_counted(ProcessId term, const std::vector<ActionId>& set,
                      std::vector<std::pair<ProcessId, double>>& out) {
    std::map<ProcessId, double, std::greater<ProcessId>> pending;
    pending.emplace(term, 1.0);
    while (!pending.empty()) {
      const auto [current, mult] = *pending.begin();
      pending.erase(pending.begin());
      const pepa::ProcessNode& node = semantics.arena().node(current);
      if (node.op == Op::kCooperation && node.action_set == set) {
        pending[node.left] += mult;
        pending[node.right] += mult;
      } else {
        out.emplace_back(current, mult);
      }
    }
  }

  std::uint32_t build_node(ProcessId term) {
    const ProcessArena& arena = semantics.arena();
    if (arena.node(term).op != Op::kCooperation) return leaf(term, 1.0);

    const std::vector<ActionId> set = arena.node(term).action_set;

    TreeNode internal;
    internal.coop_set = set;
    if (set.empty()) {
      // Identical sequential replicas interleaved over the empty set are
      // exchangeable: merge them into one counted group.  Composite
      // operands keep their own subtree per replica.
      std::vector<std::pair<ProcessId, double>> counted;
      gather_counted(term, set, counted);
      for (const auto& [part, count] : counted) {
        if (arena.node(part).op == Op::kCooperation) {
          for (std::size_t i = 0; i < static_cast<std::size_t>(count); ++i) {
            internal.children.push_back(build_node(part));
          }
        } else {
          internal.children.push_back(leaf(part, count));
        }
      }
    } else {
      // Non-empty sets synchronise their operands, so every occurrence is
      // its own cooperand; these chains are written by hand and stay short.
      std::vector<ProcessId> parts;
      gather(term, set, parts);
      for (ProcessId part : parts) {
        internal.children.push_back(
            arena.node(part).op == Op::kCooperation ? build_node(part)
                                                    : leaf(part, 1.0));
      }
    }
    if (internal.children.size() == 1) return internal.children.front();
    tree.push_back(std::move(internal));
    return static_cast<std::uint32_t>(tree.size() - 1);
  }

  /// Breadth-first closure of one sequential component's derivative set.
  std::uint32_t leaf(ProcessId term, double count) {
    const ProcessArena& arena = semantics.arena();
    {
      std::unordered_set<ProcessId> seen;
      if (contains_composition(arena, term, seen)) {
        throw util::ModelError(
            "fluid: hiding or choice over a composition cannot be "
            "represented as a sequential component");
      }
    }

    Group group;
    group.initial = term;
    group.count = count;
    std::unordered_map<ProcessId, std::uint32_t> index;
    index.emplace(term, 0);
    group.states.push_back(term);

    std::vector<RawTransition> local;
    for (std::size_t si = 0; si < group.states.size(); ++si) {
      const ProcessId state = group.states[si];
      for (const pepa::Derivative& d : semantics.derivatives(state)) {
        auto [it, fresh] =
            index.try_emplace(d.target,
                              static_cast<std::uint32_t>(group.states.size()));
        if (fresh) {
          if (group.states.size() >= options.max_local_states) {
            throw util::BudgetError(util::msg(
                "fluid: local derivative set exceeds ",
                options.max_local_states,
                " states; the component is not a small sequential process"));
          }
          group.states.push_back(d.target);
        }
        // Merge multiplicity: parallel (s, a, s') activities sum their
        // rates (the apparent-rate convention of the semantics cache).
        bool merged = false;
        for (RawTransition& existing : local) {
          if (existing.source == si &&
              existing.target == it->second &&
              existing.action == d.action) {
            if (existing.passive != d.rate.is_passive()) {
              throw util::ModelError(util::msg(
                  "fluid: action '", arena.action_name(d.action),
                  "' offered both actively and passively by one component"));
            }
            existing.rate += d.rate.value();
            merged = true;
            break;
          }
        }
        if (!merged) {
          local.push_back({static_cast<std::uint32_t>(si), it->second,
                           d.action, d.rate.value(), d.rate.is_passive()});
        }
      }
    }

    raw.push_back(std::move(local));
    groups.push_back(std::move(group));
    TreeNode node;
    node.group = static_cast<std::int32_t>(groups.size() - 1);
    tree.push_back(std::move(node));
    return static_cast<std::uint32_t>(tree.size() - 1);
  }
};

}  // namespace

VectorForm VectorForm::build(pepa::Semantics& semantics, pepa::ProcessId system,
                             const BuildOptions& options) {
  pepa::ProcessArena& arena = semantics.arena();
  const ProcessId expanded = pepa::expand_static(arena, system);

  Builder builder{semantics, options, {}, {}, {}};
  const std::uint32_t root = builder.build_node(expanded);

  VectorForm form;
  form.arena_ = &arena;
  form.tree_ = std::move(builder.tree);
  form.groups_ = std::move(builder.groups);
  form.root_ = root;

  // Assign vector offsets and globalise the per-group transitions.
  std::size_t dimension = 0;
  for (std::size_t g = 0; g < form.groups_.size(); ++g) {
    Group& group = form.groups_[g];
    group.first = static_cast<std::uint32_t>(dimension);
    dimension += group.states.size();
    group.first_transition = static_cast<std::uint32_t>(form.transitions_.size());
    for (const Builder::RawTransition& t : builder.raw[g]) {
      form.transitions_.push_back({group.first + t.source,
                                   group.first + t.target, t.action, 0,
                                   t.rate, t.passive});
    }
    group.transition_count =
        static_cast<std::uint32_t>(builder.raw[g].size());
  }
  form.dimension_ = dimension;

  // Action table and per-transition slots.
  for (const LocalTransition& t : form.transitions_) {
    form.actions_.push_back(t.action);
  }
  std::sort(form.actions_.begin(), form.actions_.end());
  form.actions_.erase(
      std::unique(form.actions_.begin(), form.actions_.end()),
      form.actions_.end());
  for (LocalTransition& t : form.transitions_) {
    t.action_slot = static_cast<std::uint32_t>(
        std::lower_bound(form.actions_.begin(), form.actions_.end(),
                         t.action) -
        form.actions_.begin());
  }

  // Static offering kinds, bottom up.  The tree is built children-first, so
  // a forward scan visits every child before its parent.
  const std::size_t slots = form.actions_.size();
  form.kinds_.assign(form.tree_.size() * slots, Kind::kDisabled);
  for (std::size_t n = 0; n < form.tree_.size(); ++n) {
    const TreeNode& node = form.tree_[n];
    if (node.group >= 0) {
      const Group& group = form.groups_[node.group];
      for (std::uint32_t t = 0; t < group.transition_count; ++t) {
        const LocalTransition& lt =
            form.transitions_[group.first_transition + t];
        Kind& kind = form.kinds_[n * slots + lt.action_slot];
        const Kind offered = lt.passive ? Kind::kPassive : Kind::kActive;
        if (kind == Kind::kDisabled) {
          kind = offered;
        } else if (kind != offered) {
          throw util::ModelError(util::msg(
              "fluid: action '", arena.action_name(lt.action),
              "' offered both actively and passively by one component"));
        }
      }
      continue;
    }
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const bool shared = pepa::set_contains(node.coop_set,
                                             form.actions_[slot]);
      Kind combined = Kind::kDisabled;
      bool all_enabled = true;
      for (std::uint32_t child : node.children) {
        const Kind ck = form.kinds_[child * slots + slot];
        if (ck == Kind::kDisabled) {
          all_enabled = false;
          continue;
        }
        if (combined == Kind::kDisabled) {
          combined = ck;
        } else if (combined != ck) {
          if (shared) {
            // min(active, passive) = active in the T-extended ordering.
            combined = Kind::kActive;
          } else {
            throw util::ModelError(util::msg(
                "fluid: action '", arena.action_name(form.actions_[slot]),
                "' offered both actively and passively across independent "
                "components"));
          }
        }
      }
      if (shared && !all_enabled) combined = Kind::kDisabled;
      form.kinds_[n * slots + slot] = combined;
    }
  }

  // Distinct offering states per (group, action): the mass behind the
  // availability factor of passive cooperands.
  form.enabled_sources_.resize(form.groups_.size());
  for (std::size_t g = 0; g < form.groups_.size(); ++g) {
    const Group& group = form.groups_[g];
    form.enabled_sources_[g].resize(slots);
    for (std::uint32_t t = 0; t < group.transition_count; ++t) {
      const LocalTransition& lt = form.transitions_[group.first_transition + t];
      std::vector<std::uint32_t>& sources =
          form.enabled_sources_[g][lt.action_slot];
      if (std::find(sources.begin(), sources.end(), lt.source) ==
          sources.end()) {
        sources.push_back(lt.source);
      }
    }
  }

  if (!options.allow_top_level_passive) {
    for (std::size_t slot = 0; slot < slots; ++slot) {
      if (form.kind(root, slot) == Kind::kPassive) {
        throw util::ModelError(util::msg(
            "action '", arena.action_name(form.actions_[slot]),
            "' is passive at the top level of the system equation"));
      }
    }
  }
  return form;
}

std::vector<double> VectorForm::initial_state() const {
  std::vector<double> x(dimension_, 0.0);
  for (const Group& group : groups_) {
    x[group.first] = group.count;
  }
  return x;
}

void VectorForm::evaluate(std::span<const double> x,
                          std::vector<double>& apparent,
                          std::vector<double>& value,
                          std::vector<double>& avail,
                          std::vector<double>& throughput) const {
  const std::size_t slots = actions_.size();
  apparent.assign(groups_.size() * slots, 0.0);
  value.assign(tree_.size() * slots, 0.0);
  avail.assign(tree_.size() * slots, 0.0);
  throughput.assign(tree_.size() * slots, 0.0);

  // Group apparent rates A_a(g) = sum_s x[s] r_a(s).
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = groups_[g];
    for (std::uint32_t t = 0; t < group.transition_count; ++t) {
      const LocalTransition& lt = transitions_[group.first_transition + t];
      apparent[g * slots + lt.action_slot] += x[lt.source] * lt.rate;
    }
  }

  // Bottom-up apparent values: min over cooperands on shared actions
  // (active offerings dominate passive ones), sums on independent ones.
  // `avail` carries the offering mass alongside: the continuous capacity
  // of a passive cooperand is min(1, avail) — see the header comment.
  for (std::size_t n = 0; n < tree_.size(); ++n) {
    const TreeNode& node = tree_[n];
    if (node.group >= 0) {
      const std::size_t g = static_cast<std::size_t>(node.group);
      for (std::size_t slot = 0; slot < slots; ++slot) {
        value[n * slots + slot] = apparent[g * slots + slot];
        double mass = 0.0;
        for (std::uint32_t source : enabled_sources_[g][slot]) {
          mass += x[source];
        }
        avail[n * slots + slot] = mass;
      }
      continue;
    }
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const Kind node_kind = kind(static_cast<std::uint32_t>(n),
                                  static_cast<std::uint32_t>(slot));
      if (node_kind == Kind::kDisabled) continue;
      const bool shared =
          pepa::set_contains(node.coop_set, actions_[slot]);
      double v = shared ? std::numeric_limits<double>::infinity() : 0.0;
      double m = shared ? std::numeric_limits<double>::infinity() : 0.0;
      double passive_factor = 1.0;
      for (std::uint32_t child : node.children) {
        const Kind ck = kind(child, static_cast<std::uint32_t>(slot));
        if (ck == Kind::kDisabled) continue;
        const double cv = value[child * slots + slot];
        const double cm = avail[child * slots + slot];
        if (!shared) {
          v += cv;
          m += cm;
          continue;
        }
        m = std::min(m, cm);
        if (ck == node_kind) {
          // Active nodes take the min over active cooperands; all-passive
          // nodes min the weights.
          v = std::min(v, cv);
        } else {
          // Passive cooperand of an active synchronisation: throttle by
          // its available offering mass.
          passive_factor *= std::min(1.0, cm);
        }
      }
      if (!std::isfinite(v)) v = 0.0;
      value[n * slots + slot] = v * passive_factor;
      avail[n * slots + slot] = m;
    }
  }

  // Top-down throughput apportionment: the root completes enabled active
  // actions at their apparent value; synchronised children receive the full
  // throughput, independent children their proportional share.
  const std::size_t slots_total = slots;
  for (std::size_t slot = 0; slot < slots_total; ++slot) {
    if (kind(root_, static_cast<std::uint32_t>(slot)) == Kind::kActive) {
      throughput[root_ * slots_total + slot] = value[root_ * slots_total + slot];
    }
  }
  for (std::size_t i = tree_.size(); i-- > 0;) {
    const TreeNode& node = tree_[i];
    if (node.group >= 0) continue;
    for (std::size_t slot = 0; slot < slots_total; ++slot) {
      const double parent = throughput[i * slots_total + slot];
      if (parent <= 0.0) continue;
      const bool shared = pepa::set_contains(node.coop_set, actions_[slot]);
      const double total = value[i * slots_total + slot];
      for (std::uint32_t child : node.children) {
        if (kind(child, static_cast<std::uint32_t>(slot)) == Kind::kDisabled) {
          continue;
        }
        throughput[child * slots_total + slot] =
            shared ? parent
                   : (total > 0.0
                          ? parent * value[child * slots_total + slot] / total
                          : 0.0);
      }
    }
  }
}

void VectorForm::derivative(std::span<const double> x,
                            std::span<double> dx) const {
  CHOREO_ASSERT(x.size() == dimension_ && dx.size() == dimension_);
  std::vector<double> apparent, value, avail, throughput;
  evaluate(x, apparent, value, avail, throughput);

  std::fill(dx.begin(), dx.end(), 0.0);
  const std::size_t slots = actions_.size();
  // Leaf node index per group: the tree is built leaves-before-parents, so
  // recover it by scanning once.
  for (std::size_t n = 0; n < tree_.size(); ++n) {
    const TreeNode& node = tree_[n];
    if (node.group < 0) continue;
    const Group& group = groups_[node.group];
    for (std::uint32_t t = 0; t < group.transition_count; ++t) {
      const LocalTransition& lt = transitions_[group.first_transition + t];
      const double total =
          apparent[static_cast<std::size_t>(node.group) * slots +
                   lt.action_slot];
      if (total <= 0.0) continue;
      const double allotted = throughput[n * slots + lt.action_slot];
      if (allotted <= 0.0) continue;
      const double flow = allotted * x[lt.source] * lt.rate / total;
      dx[lt.source] -= flow;
      dx[lt.target] += flow;
    }
  }
}

std::vector<std::pair<pepa::ActionId, double>> VectorForm::throughputs(
    std::span<const double> x) const {
  CHOREO_ASSERT(x.size() == dimension_);
  std::vector<double> apparent, value, avail, throughput;
  evaluate(x, apparent, value, avail, throughput);
  const std::size_t slots = actions_.size();
  std::vector<std::pair<pepa::ActionId, double>> result;
  result.reserve(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    result.emplace_back(actions_[slot], throughput[root_ * slots + slot]);
  }
  return result;
}

double VectorForm::population(std::span<const double> x,
                              pepa::ConstantId constant) const {
  CHOREO_ASSERT(x.size() == dimension_);
  double total = 0.0;
  for (const Group& group : groups_) {
    for (std::size_t s = 0; s < group.states.size(); ++s) {
      if (pepa::occupies(*arena_, group.states[s], constant)) {
        total += x[group.first + s];
      }
    }
  }
  return total;
}

}  // namespace choreo::fluid
