// The numerical vector form of a PEPA model (Ding & Hillston): instead of
// interleaving cooperating components into one global state space, the
// system equation is read as a static cooperation tree whose leaves are
// sequential components.  Identical replicas composed over the empty
// cooperation set are merged into one *group* with a count, and the model
// state becomes a vector of occupancy counts over the groups' local
// derivative sets.  The mean-field (fluid) approximation then treats the
// counts as continuous and moves mass along local transitions at rates
// governed by PEPA's min-based apparent-rate cooperation law.
//
// Everything here is derived directly from pepa::Semantics — local
// derivative sets come from a per-component breadth-first closure, never
// from the exponential global interleaving — so construction cost is
// independent of the population size.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pepa/semantics.hpp"

namespace choreo::fluid {

struct BuildOptions {
  /// Safety bound on one component's local derivative set; the fluid
  /// representation targets few local states replicated many times.
  std::size_t max_local_states = 65'536;
  /// Accept actions whose top-level apparent rate is passive (they can
  /// never fire and contribute no flow); mirrors
  /// pepa::DeriveOptions::allow_top_level_passive.
  bool allow_top_level_passive = false;
};

/// One local transition of a group, in global vector coordinates.
struct LocalTransition {
  std::uint32_t source;        ///< index into the population vector
  std::uint32_t target;        ///< index into the population vector
  pepa::ActionId action;
  std::uint32_t action_slot;   ///< index into VectorForm::actions()
  double rate;                 ///< active rate value or passive weight
  bool passive;
};

/// A maximal set of identical sequential components composed over the empty
/// cooperation set, represented once with a replica count.
struct Group {
  pepa::ProcessId initial = pepa::kInvalidProcess;  ///< shared initial derivative
  double count = 0.0;     ///< number of replicas (integral by construction)
  std::uint32_t first = 0;  ///< offset of this group's states in the vector
  std::vector<pepa::ProcessId> states;  ///< local derivative set, BFS order
  std::uint32_t first_transition = 0;   ///< slice into VectorForm::transitions()
  std::uint32_t transition_count = 0;
};

/// Static cooperation structure over the groups: leaves reference groups,
/// internal nodes carry the cooperation set.  Chains of cooperations over
/// the same action set are flattened (min and + are associative), so a
/// left-deep fold of N replicas becomes one node with one counted leaf.
struct TreeNode {
  std::int32_t group = -1;               ///< >= 0: leaf, index into groups()
  std::vector<std::uint32_t> children;   ///< internal node only
  std::vector<pepa::ActionId> coop_set;  ///< internal node only (sorted)
};

class VectorForm {
 public:
  /// Derives the vector form of `system`.  Throws util::ModelError when the
  /// term cannot be represented (hiding or choice over a composition, an
  /// action offered both actively and passively by one component, a
  /// passively-offered top-level action unless allowed) and
  /// util::BudgetError when a local derivative set exceeds the bound.
  static VectorForm build(pepa::Semantics& semantics, pepa::ProcessId system,
                          const BuildOptions& options = {});

  /// Length of the population vector (total local states over all groups).
  std::size_t dimension() const noexcept { return dimension_; }

  /// The initial population: each group's count on its initial state.
  std::vector<double> initial_state() const;

  const std::vector<Group>& groups() const noexcept { return groups_; }
  const std::vector<LocalTransition>& transitions() const noexcept {
    return transitions_;
  }
  /// Actions with at least one local transition, sorted by id.
  const std::vector<pepa::ActionId>& actions() const noexcept {
    return actions_;
  }
  const std::vector<TreeNode>& tree() const noexcept { return tree_; }
  std::uint32_t root() const noexcept { return root_; }
  const pepa::ProcessArena& arena() const noexcept { return *arena_; }

  /// The mean-field drift dx = f(x): for every group g and local transition
  /// s -a-> s', mass flows at rate T_a(g) * x[s] r / A_a(g) where A_a(g) is
  /// the group's apparent rate at x and T_a(g) the throughput apportioned
  /// to the group down the cooperation tree (full T for synchronised
  /// actions, proportional for independent ones).
  ///
  /// Passive cooperands need a continuous closure: the exact capacity of a
  /// passive side is infinite while any replica offers the action and zero
  /// otherwise, which makes the raw field discontinuous and the saturated
  /// steady state a chattering sliding mode.  The field instead scales a
  /// shared action's throughput by min(1, m) per passive cooperand, where
  /// m is the mass currently in offering states — exact in the light-load
  /// limit (m ~ 1: the active demand proceeds unthrottled) and in the
  /// saturated limit (the factor recovers the sliding-mode throughput).
  /// `dx` must have dimension() entries.
  void derivative(std::span<const double> x, std::span<double> dx) const;

  /// Root throughput of every action at population x: expected completions
  /// per time unit, the fluid analogue of pepa::action_throughput.
  std::vector<std::pair<pepa::ActionId, double>> throughputs(
      std::span<const double> x) const;

  /// Expected number of components occupying `constant` at population x
  /// (fluid analogue of pepa::mean_population).
  double population(std::span<const double> x,
                    pepa::ConstantId constant) const;

  /// An empty form (dimension 0); placeholder until build() assigns one.
  VectorForm() = default;

 private:
  /// Static offering kind of (node, action): actions a subtree can never
  /// perform are disabled; enabled ones are consistently active or passive.
  enum class Kind : std::uint8_t { kDisabled, kActive, kPassive };

  Kind kind(std::uint32_t node, std::uint32_t slot) const {
    return kinds_[node * actions_.size() + slot];
  }

  /// Fills `apparent` (groups x slots) and `value`/`avail`/`throughput`
  /// (tree nodes x slots); shared by derivative() and throughputs().
  void evaluate(std::span<const double> x, std::vector<double>& apparent,
                std::vector<double>& value, std::vector<double>& avail,
                std::vector<double>& throughput) const;

  const pepa::ProcessArena* arena_ = nullptr;
  std::vector<Group> groups_;
  std::vector<LocalTransition> transitions_;
  std::vector<pepa::ActionId> actions_;
  std::vector<TreeNode> tree_;
  std::uint32_t root_ = 0;
  std::size_t dimension_ = 0;
  /// kinds_[node * actions_.size() + slot]
  std::vector<Kind> kinds_;
  /// enabled_sources_[group][slot]: distinct vector indices of the group's
  /// states offering the action — the mass summed into the availability
  /// factor of passive cooperands.
  std::vector<std::vector<std::vector<std::uint32_t>>> enabled_sources_;
};

}  // namespace choreo::fluid
