#include "fluid/population.hpp"

#include <cmath>
#include <unordered_map>

#include "pepa/measures.hpp"
#include "pepa/rate.hpp"
#include "util/error.hpp"

namespace choreo::fluid {

namespace {

struct VectorHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint32_t value : v) {
      h ^= value;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// One joint move of the chain: the combined PEPA rate and the set of
/// (source, target) component hops it performs, one per participating group.
struct Move {
  pepa::Rate rate;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
};

struct ActionMoves {
  pepa::Rate apparent;
  std::vector<Move> moves;
};

/// Enumerates the moves of the subtree at `node` for the count vector `x`,
/// mirroring the cooperation case of Semantics::compute_derivatives but on
/// counted groups: a group in local state s with count x[s] offers its
/// transitions at x[s]-scaled rates, and shared actions combine one move
/// per cooperand with pepa::cooperation_rate.
struct Enumerator {
  const VectorForm& form;
  std::span<const std::uint32_t> x;

  std::vector<ActionMoves> run(std::uint32_t node_index) const {
    const std::size_t slots = form.actions().size();
    const TreeNode& node = form.tree()[node_index];
    std::vector<ActionMoves> result(slots);

    if (node.group >= 0) {
      const Group& group = form.groups()[node.group];
      for (std::uint32_t t = 0; t < group.transition_count; ++t) {
        const LocalTransition& lt =
            form.transitions()[group.first_transition + t];
        const std::uint32_t count = x[lt.source];
        if (count == 0) continue;
        const double scaled = static_cast<double>(count) * lt.rate;
        const pepa::Rate rate = lt.passive ? pepa::Rate::passive(scaled)
                                           : pepa::Rate::active(scaled);
        ActionMoves& slot = result[lt.action_slot];
        slot.apparent = slot.apparent.plus(
            rate, form.arena().action_name(lt.action));
        slot.moves.push_back({rate, {{lt.source, lt.target}}});
      }
      return result;
    }

    bool first_child = true;
    for (std::uint32_t child : node.children) {
      std::vector<ActionMoves> part = run(child);
      for (std::size_t slot = 0; slot < slots; ++slot) {
        const pepa::ActionId action = form.actions()[slot];
        const std::string& name = form.arena().action_name(action);
        if (!pepa::set_contains(node.coop_set, action)) {
          // Independent action: interleave.
          result[slot].apparent =
              result[slot].apparent.plus(part[slot].apparent, name);
          result[slot].moves.insert(result[slot].moves.end(),
                                    part[slot].moves.begin(),
                                    part[slot].moves.end());
          continue;
        }
        if (first_child) {
          result[slot] = std::move(part[slot]);
          continue;
        }
        // Shared action: every cooperand contributes one move per firing.
        std::vector<Move> combined;
        combined.reserve(result[slot].moves.size() * part[slot].moves.size());
        for (const Move& left : result[slot].moves) {
          for (const Move& right : part[slot].moves) {
            Move move;
            move.rate = pepa::cooperation_rate(
                left.rate, result[slot].apparent, right.rate,
                part[slot].apparent, name);
            move.hops = left.hops;
            move.hops.insert(move.hops.end(), right.hops.begin(),
                             right.hops.end());
            combined.push_back(std::move(move));
          }
        }
        result[slot].moves = std::move(combined);
        result[slot].apparent =
            pepa::Rate::min(result[slot].apparent, part[slot].apparent);
      }
      first_child = false;
    }
    return result;
  }
};

}  // namespace

PopulationSpace derive_population(const VectorForm& form,
                                  const PopulationOptions& options) {
  for (const Group& group : form.groups()) {
    if (group.count != std::floor(group.count) || group.count < 0.0) {
      throw util::ModelError(
          "population chain requires integral replica counts");
    }
  }

  PopulationSpace space;
  std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VectorHash>
      index;

  std::vector<std::uint32_t> initial(form.dimension(), 0);
  for (const Group& group : form.groups()) {
    initial[group.first] = static_cast<std::uint32_t>(group.count);
  }
  index.emplace(initial, 0);
  space.states_.push_back(std::move(initial));

  const std::size_t state_bytes = form.dimension() * sizeof(std::uint32_t);
  for (std::size_t si = 0; si < space.states_.size(); ++si) {
    if (options.budget != nullptr && si % 64 == 0) {
      options.budget->check("derive");
    }
    // The enumerator walks space.states_[si] by reference; states_ grows
    // below, so copy the source vector first.
    const std::vector<std::uint32_t> current = space.states_[si];
    const Enumerator enumerator{form, current};
    const std::vector<ActionMoves> moves = enumerator.run(form.root());
    for (std::size_t slot = 0; slot < moves.size(); ++slot) {
      for (const Move& move : moves[slot].moves) {
        if (move.rate.is_passive()) {
          throw util::ModelError(util::msg(
              "action '", form.arena().action_name(form.actions()[slot]),
              "' is passive at the top level of the system equation"));
        }
        std::vector<std::uint32_t> next = current;
        for (const auto& [source, target] : move.hops) {
          CHOREO_ASSERT(next[source] > 0);
          next[source] -= 1;
          next[target] += 1;
        }
        auto [it, fresh] = index.try_emplace(
            next, static_cast<std::uint32_t>(space.states_.size()));
        if (fresh) {
          if (space.states_.size() >= options.max_states) {
            throw util::BudgetError(util::msg(
                "population state-space explosion: more than ",
                options.max_states, " count vectors"));
          }
          if (options.budget != nullptr) {
            options.budget->charge_states(1, state_bytes);
          }
          space.states_.push_back(std::move(next));
        }
        space.transitions_.push_back({static_cast<std::uint32_t>(si),
                                      it->second, form.actions()[slot],
                                      move.rate.value()});
      }
    }
  }
  return space;
}

ctmc::Generator PopulationSpace::generator() const {
  std::vector<ctmc::RatedTransition> rated;
  rated.reserve(transitions_.size());
  for (const PopulationTransition& t : transitions_) {
    if (t.source == t.target) continue;  // self-loops: no CTMC effect
    rated.push_back({t.source, t.target, t.rate});
  }
  return ctmc::Generator::build(states_.size(), rated);
}

double PopulationSpace::action_throughput(std::span<const double> distribution,
                                          pepa::ActionId action) const {
  CHOREO_ASSERT(distribution.size() == states_.size());
  double total = 0.0;
  for (const PopulationTransition& t : transitions_) {
    if (t.action == action) total += distribution[t.source] * t.rate;
  }
  return total;
}

double PopulationSpace::mean_population(std::span<const double> distribution,
                                        const VectorForm& form,
                                        pepa::ConstantId constant) const {
  CHOREO_ASSERT(distribution.size() == states_.size());
  std::vector<bool> occupies(form.dimension(), false);
  for (const Group& group : form.groups()) {
    for (std::size_t s = 0; s < group.states.size(); ++s) {
      occupies[group.first + s] =
          pepa::occupies(form.arena(), group.states[s], constant);
    }
  }
  double total = 0.0;
  for (std::size_t si = 0; si < states_.size(); ++si) {
    if (distribution[si] == 0.0) continue;
    double count = 0.0;
    for (std::size_t i = 0; i < occupies.size(); ++i) {
      if (occupies[i]) count += states_[si][i];
    }
    total += distribution[si] * count;
  }
  return total;
}

}  // namespace choreo::fluid
