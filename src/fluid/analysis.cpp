#include "fluid/analysis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace choreo::fluid {

FluidResult solve_steady(pepa::Semantics& semantics, pepa::ProcessId system,
                         const FluidOptions& options) {
  FluidResult result;
  result.form = VectorForm::build(semantics, system, options.build);

  OdeOptions ode = options.ode;
  const VectorForm& form = result.form;
  OdeSolution solution = integrate(
      [&form](double, std::span<const double> x, std::span<double> dx) {
        form.derivative(x, dx);
      },
      form.initial_state(), ode);
  if (!solution.steady_state_reached()) {
    throw util::NumericError(util::msg(
        "fluid: no steady state detected by t=", solution.end_time(),
        " (", solution.stats().steps, " steps); the model may oscillate"));
  }

  result.steady = solution.state();
  // The mean-field flows keep populations non-negative analytically; clip
  // the O(tolerance) numerical undershoot.
  for (double& value : result.steady) value = std::max(value, 0.0);
  result.stats = solution.stats();
  result.throughputs = form.throughputs(result.steady);
  return result;
}

}  // namespace choreo::fluid
