// Export to the PRISM probabilistic model checker's explicit file formats.
//
// The paper routes PEPA models to PRISM for model checking ("we have
// previously connected our extractors and reflectors ... to the PRISM
// model-checker"); the portable interchange is PRISM's explicit-state
// format:
//
//   .tra  transitions:  "<states> <transitions>\n<src> <dst> <rate>\n..."
//   .sta  states:       "(s)\n<index>:(<index>)\n..."
//   .lab  labels:       '0="init" 1="deadlock" ...\n<state>: <label> ...'
//
// (PRISM: `prism -importtrans model.tra -importstates model.sta
//          -importlabels model.lab -ctmc prop.pctl`.)
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "ctmc/generator.hpp"

namespace choreo::ctmc {

/// The .tra transition list (off-diagonal generator entries).
std::string to_prism_tra(const Generator& generator);

/// The .sta state list over a single integer variable "s".
std::string to_prism_sta(const Generator& generator);

/// The .lab label file.  "init" (index 0) marks `initial_state` and
/// "deadlock" (index 1) marks the absorbing states; additional labels are
/// (name, member states) pairs.
std::string to_prism_lab(
    const Generator& generator, std::size_t initial_state,
    const std::vector<std::pair<std::string, std::vector<std::size_t>>>&
        extra_labels = {});

/// Writes base.tra / base.sta / base.lab.  Throws util::Error on I/O
/// failure.
void write_prism_files(
    const Generator& generator, const std::string& base_path,
    std::size_t initial_state = 0,
    const std::vector<std::pair<std::string, std::vector<std::size_t>>>&
        extra_labels = {});

}  // namespace choreo::ctmc
