#include "ctmc/prism_export.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::ctmc {

std::string to_prism_tra(const Generator& generator) {
  const std::size_t n = generator.state_count();
  std::size_t count = 0;
  std::ostringstream body;
  for (std::size_t s = 0; s < n; ++s) {
    const auto columns = generator.matrix().row_columns(s);
    const auto values = generator.matrix().row_values(s);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      if (columns[k] == s) continue;
      body << s << ' ' << columns[k] << ' ' << util::format_double(values[k])
           << '\n';
      ++count;
    }
  }
  std::ostringstream out;
  out << n << ' ' << count << '\n' << body.str();
  return out.str();
}

std::string to_prism_sta(const Generator& generator) {
  std::ostringstream out;
  out << "(s)\n";
  for (std::size_t s = 0; s < generator.state_count(); ++s) {
    out << s << ":(" << s << ")\n";
  }
  return out.str();
}

std::string to_prism_lab(
    const Generator& generator, std::size_t initial_state,
    const std::vector<std::pair<std::string, std::vector<std::size_t>>>&
        extra_labels) {
  CHOREO_ASSERT(initial_state < generator.state_count());
  std::ostringstream header;
  header << "0=\"init\" 1=\"deadlock\"";
  for (std::size_t i = 0; i < extra_labels.size(); ++i) {
    header << ' ' << (i + 2) << "=\"" << extra_labels[i].first << '"';
  }

  std::map<std::size_t, std::vector<std::size_t>> labels_of;  // state -> ids
  labels_of[initial_state].push_back(0);
  for (std::size_t s : generator.absorbing_states()) {
    labels_of[s].push_back(1);
  }
  for (std::size_t i = 0; i < extra_labels.size(); ++i) {
    for (std::size_t s : extra_labels[i].second) {
      CHOREO_ASSERT(s < generator.state_count());
      labels_of[s].push_back(i + 2);
    }
  }

  std::ostringstream out;
  out << header.str() << '\n';
  for (const auto& [state, ids] : labels_of) {
    out << state << ':';
    for (std::size_t id : ids) out << ' ' << id;
    out << '\n';
  }
  return out.str();
}

void write_prism_files(
    const Generator& generator, const std::string& base_path,
    std::size_t initial_state,
    const std::vector<std::pair<std::string, std::vector<std::size_t>>>&
        extra_labels) {
  auto write = [](const std::string& path, const std::string& contents) {
    std::ofstream stream(path, std::ios::binary);
    if (!stream) throw util::Error(util::msg("cannot open '", path, "'"));
    stream << contents;
    if (!stream) throw util::Error(util::msg("failed writing '", path, "'"));
  };
  write(base_path + ".tra", to_prism_tra(generator));
  write(base_path + ".sta", to_prism_sta(generator));
  write(base_path + ".lab", to_prism_lab(generator, initial_state, extra_labels));
}

}  // namespace choreo::ctmc
