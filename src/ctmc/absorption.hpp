// Absorption analysis for CTMCs with absorbing states.
//
// For a chain with one or more absorbing states (e.g. "download aborted" /
// "download completed" outcomes), computes per starting state the
// probability of ending in each absorbing state.  Complements the passage
// module: passage gives *when*, absorption gives *which* terminal outcome.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/generator.hpp"

namespace choreo::ctmc {

struct Absorption {
  /// The absorbing states, in ascending order.
  std::vector<std::size_t> absorbing;
  /// probabilities[s][k] = P[chain started in s is eventually absorbed in
  /// absorbing[k]].  Rows of transient states sum to 1 when absorption is
  /// certain; states that can avoid absorption forever sum to less.
  std::vector<std::vector<double>> probabilities;

  /// Probability that `state` is absorbed in `target` (a member of
  /// `absorbing`); throws util::NumericError when target is not absorbing.
  double probability(std::size_t state, std::size_t target) const;
};

/// Solves the absorption equations by Gauss-Seidel sweeps (the system
/// matrix is an M-matrix).  Throws util::NumericError when the chain has no
/// absorbing state.
Absorption absorption_probabilities(const Generator& generator);

}  // namespace choreo::ctmc
