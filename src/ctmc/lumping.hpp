// Exact state-space aggregation by Markov bisimulation (strong lumping).
//
// The PEPA Workbench fights state-space explosion with aggregation; the
// CTMC notion implemented here is strong Markov bisimulation -- PEPA's
// strong equivalence at chain level: a partition such that any two states
// in a block have identical total rates into *every* block (their own
// included, diagonal excluded).  This refines ordinary lumpability, so the
// quotient chain over the blocks is again a CTMC whose steady-state
// distribution equals the block-aggregated distribution of the full chain;
// unlike bare ordinary lumpability (whose coarsest solution is always the
// vacuous one-block partition), the coarsest bisimulation is the useful
// symmetry-collapsing quotient (e.g. N interleaved replicas collapse to
// their population vector).
//
// compute_lumping finds the *coarsest* such partition refining a given
// initial one (pass the trivial partition, or split by a reward/label so
// the measures of interest stay expressible on the quotient).
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/generator.hpp"

namespace choreo::ctmc {

struct Lumping {
  /// block_of[state] = index of the block containing the state.
  std::vector<std::size_t> block_of;
  std::size_t block_count = 0;
  /// One representative full-chain state per block.
  std::vector<std::size_t> representatives;

  /// The quotient generator over the blocks.
  Generator quotient(const Generator& full) const;

  /// Aggregates a full-chain distribution over the blocks.
  std::vector<double> aggregate(const std::vector<double>& distribution) const;

  /// Lifts a quotient distribution back to the full chain, splitting each
  /// block's mass uniformly over its members (exact for strongly lumpable
  /// symmetric chains; an approximation otherwise).
  std::vector<double> lift_uniform(const std::vector<double>& block_distribution,
                                   std::size_t state_count) const;
};

/// Coarsest ordinary lumping refining `initial_partition` (block labels per
/// state; pass an all-zero vector, or leave empty, for the trivial
/// partition).  Iterative signature refinement; O(iterations * edges).
Lumping compute_lumping(const Generator& generator,
                        std::vector<std::size_t> initial_partition = {});

/// Verifies the lumpability condition on the proposed partition; throws
/// util::NumericError with a witness when violated.
void check_lumpable(const Generator& generator, const Lumping& lumping,
                    double tolerance = 1e-9);

}  // namespace choreo::ctmc
