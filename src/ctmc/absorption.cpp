#include "ctmc/absorption.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace choreo::ctmc {

double Absorption::probability(std::size_t state, std::size_t target) const {
  const auto it = std::lower_bound(absorbing.begin(), absorbing.end(), target);
  if (it == absorbing.end() || *it != target) {
    throw util::NumericError(
        util::msg("state ", target, " is not absorbing"));
  }
  CHOREO_ASSERT(state < probabilities.size());
  return probabilities[state][static_cast<std::size_t>(it - absorbing.begin())];
}

Absorption absorption_probabilities(const Generator& generator) {
  Absorption result;
  result.absorbing = generator.absorbing_states();
  if (result.absorbing.empty()) {
    throw util::NumericError("chain has no absorbing state");
  }
  const std::size_t n = generator.state_count();
  const std::size_t k = result.absorbing.size();
  std::vector<bool> is_absorbing(n, false);
  std::vector<std::size_t> absorbing_index(n, 0);
  for (std::size_t i = 0; i < k; ++i) {
    is_absorbing[result.absorbing[i]] = true;
    absorbing_index[result.absorbing[i]] = i;
  }

  // h_k(s) satisfies, for transient s:  h_k(s) = sum_j P(s, j) h_k(j)
  // with P the jump chain; absorbing states are fixed at the unit vectors.
  result.probabilities.assign(n, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    result.probabilities[result.absorbing[i]][i] = 1.0;
  }

  const CsrMatrix& q = generator.matrix();
  const std::size_t max_iterations = 1000000;
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    double residual = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_absorbing[s]) continue;
      const auto columns = q.row_columns(s);
      const auto values = q.row_values(s);
      double exit = 0.0;
      std::vector<double> inflow(k, 0.0);
      for (std::size_t idx = 0; idx < columns.size(); ++idx) {
        if (columns[idx] == s) {
          exit = -values[idx];
          continue;
        }
        for (std::size_t i = 0; i < k; ++i) {
          inflow[i] += values[idx] * result.probabilities[columns[idx]][i];
        }
      }
      CHOREO_ASSERT(exit > 0.0);  // transient states can move
      for (std::size_t i = 0; i < k; ++i) {
        const double updated = inflow[i] / exit;
        residual = std::max(residual,
                            std::abs(updated - result.probabilities[s][i]));
        result.probabilities[s][i] = updated;
      }
    }
    if (residual <= 1e-13) return result;
  }
  throw util::NumericError("absorption iteration did not converge");
}

}  // namespace choreo::ctmc
