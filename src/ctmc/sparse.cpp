#include "ctmc/sparse.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace choreo::ctmc {

CsrMatrix CsrMatrix::from_triplets(std::size_t n, std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    CHOREO_ASSERT(t.row < n && t.col < n);
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix matrix;
  matrix.row_ptr_.assign(n + 1, 0);
  matrix.col_.reserve(triplets.size());
  matrix.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t row = 0; row < n; ++row) {
    while (i < triplets.size() && triplets[i].row == row) {
      const std::size_t col = triplets[i].col;
      double value = 0.0;
      while (i < triplets.size() && triplets[i].row == row && triplets[i].col == col) {
        value += triplets[i].value;
        ++i;
      }
      if (value != 0.0) {
        matrix.col_.push_back(col);
        matrix.values_.push_back(value);
      }
    }
    matrix.row_ptr_[row + 1] = matrix.col_.size();
  }
  return matrix;
}

std::span<const std::size_t> CsrMatrix::row_columns(std::size_t row) const {
  CHOREO_ASSERT(row + 1 < row_ptr_.size());
  return {col_.data() + row_ptr_[row], row_ptr_[row + 1] - row_ptr_[row]};
}

std::span<const double> CsrMatrix::row_values(std::size_t row) const {
  CHOREO_ASSERT(row + 1 < row_ptr_.size());
  return {values_.data() + row_ptr_[row], row_ptr_[row + 1] - row_ptr_[row]};
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  const auto columns = row_columns(row);
  const auto it = std::lower_bound(columns.begin(), columns.end(), col);
  if (it == columns.end() || *it != col) return 0.0;
  return row_values(row)[static_cast<std::size_t>(it - columns.begin())];
}

CsrMatrix CsrMatrix::transposed() const {
  const std::size_t n = size();
  std::vector<Triplet> triplets;
  triplets.reserve(nonzeros());
  for (std::size_t row = 0; row < n; ++row) {
    const auto columns = row_columns(row);
    const auto values = row_values(row);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      triplets.push_back({columns[k], row, values[k]});
    }
  }
  return from_triplets(n, std::move(triplets));
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y,
                         bool parallel) const {
  const std::size_t n = size();
  CHOREO_ASSERT(x.size() == n && y.size() == n);
  auto rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t row = begin; row < end; ++row) {
      const auto columns = row_columns(row);
      const auto values = row_values(row);
      double sum = 0.0;
      for (std::size_t k = 0; k < columns.size(); ++k) {
        sum += values[k] * x[columns[k]];
      }
      y[row] = sum;
    }
  };
  // Below ~16k rows the fork/join overhead dominates on this kind of kernel.
  if (parallel && n >= 16384 && util::ThreadPool::shared().worker_count() > 0) {
    util::ThreadPool::shared().parallel_for(n, rows);
  } else {
    rows(0, n);
  }
}

std::vector<double> CsrMatrix::to_dense() const {
  const std::size_t n = size();
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t row = 0; row < n; ++row) {
    const auto columns = row_columns(row);
    const auto values = row_values(row);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      dense[row * n + columns[k]] = values[k];
    }
  }
  return dense;
}

}  // namespace choreo::ctmc
