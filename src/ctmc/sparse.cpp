#include "ctmc/sparse.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel_sort.hpp"
#include "util/thread_pool.hpp"

namespace choreo::ctmc {

CsrMatrix CsrMatrix::from_triplets(std::size_t n, std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    CHOREO_ASSERT(t.row < n && t.col < n);
  }
  const std::size_t m = triplets.size();
  util::ThreadPool& pool = util::ThreadPool::shared();
  // Below this the fork/join overhead dominates the assembly passes.
  const bool parallel = pool.worker_count() > 0 && m >= (1u << 15);

  // Sort a permutation of the triplets by (row, col, original index).  The
  // index tie-break makes the order total, so the sorted permutation is
  // unique: duplicates are summed in insertion order whatever sort runs, and
  // the parallel and sequential assemblies agree to the last bit.
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto by_coordinate = [&](std::size_t a, std::size_t b) {
    const Triplet& ta = triplets[a];
    const Triplet& tb = triplets[b];
    if (ta.row != tb.row) return ta.row < tb.row;
    if (ta.col != tb.col) return ta.col < tb.col;
    return a < b;
  };
  if (parallel) {
    util::parallel_sort(order.begin(), order.end(), by_coordinate, pool);
  } else {
    std::sort(order.begin(), order.end(), by_coordinate);
  }

  // Triplet range of each row within the sorted permutation.
  std::vector<std::size_t> trip_ptr(n + 1, 0);
  for (const Triplet& t : triplets) ++trip_ptr[t.row + 1];
  std::partial_sum(trip_ptr.begin(), trip_ptr.end(), trip_ptr.begin());

  CsrMatrix matrix;
  matrix.row_ptr_.assign(n + 1, 0);

  // Pass one (row-chunked): unique nonzero entries per row.  Each row is
  // compressed by exactly one lane, so chunking cannot change any sum.
  auto count_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t row = begin; row < end; ++row) {
      std::size_t k = trip_ptr[row];
      std::size_t unique = 0;
      while (k < trip_ptr[row + 1]) {
        const std::size_t col = triplets[order[k]].col;
        double value = 0.0;
        while (k < trip_ptr[row + 1] && triplets[order[k]].col == col) {
          value += triplets[order[k]].value;
          ++k;
        }
        if (value != 0.0) ++unique;
      }
      matrix.row_ptr_[row + 1] = unique;
    }
  };
  if (parallel) {
    pool.parallel_for(n, count_rows);
  } else {
    count_rows(0, n);
  }
  std::partial_sum(matrix.row_ptr_.begin(), matrix.row_ptr_.end(),
                   matrix.row_ptr_.begin());

  // Pass two (row-chunked): write each row's entries at its offset.
  matrix.col_.resize(matrix.row_ptr_[n]);
  matrix.values_.resize(matrix.row_ptr_[n]);
  auto fill_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t row = begin; row < end; ++row) {
      std::size_t k = trip_ptr[row];
      std::size_t out = matrix.row_ptr_[row];
      while (k < trip_ptr[row + 1]) {
        const std::size_t col = triplets[order[k]].col;
        double value = 0.0;
        while (k < trip_ptr[row + 1] && triplets[order[k]].col == col) {
          value += triplets[order[k]].value;
          ++k;
        }
        if (value != 0.0) {
          matrix.col_[out] = col;
          matrix.values_[out] = value;
          ++out;
        }
      }
    }
  };
  if (parallel) {
    pool.parallel_for(n, fill_rows);
  } else {
    fill_rows(0, n);
  }
  return matrix;
}

std::span<const std::size_t> CsrMatrix::row_columns(std::size_t row) const {
  CHOREO_ASSERT(row + 1 < row_ptr_.size());
  return {col_.data() + row_ptr_[row], row_ptr_[row + 1] - row_ptr_[row]};
}

std::span<const double> CsrMatrix::row_values(std::size_t row) const {
  CHOREO_ASSERT(row + 1 < row_ptr_.size());
  return {values_.data() + row_ptr_[row], row_ptr_[row + 1] - row_ptr_[row]};
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  const auto columns = row_columns(row);
  const auto it = std::lower_bound(columns.begin(), columns.end(), col);
  if (it == columns.end() || *it != col) return 0.0;
  return row_values(row)[static_cast<std::size_t>(it - columns.begin())];
}

CsrMatrix CsrMatrix::transposed() const {
  const std::size_t n = size();
  std::vector<Triplet> triplets;
  triplets.reserve(nonzeros());
  for (std::size_t row = 0; row < n; ++row) {
    const auto columns = row_columns(row);
    const auto values = row_values(row);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      triplets.push_back({columns[k], row, values[k]});
    }
  }
  return from_triplets(n, std::move(triplets));
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y,
                         bool parallel) const {
  const std::size_t n = size();
  CHOREO_ASSERT(x.size() == n && y.size() == n);
  auto rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t row = begin; row < end; ++row) {
      const auto columns = row_columns(row);
      const auto values = row_values(row);
      double sum = 0.0;
      for (std::size_t k = 0; k < columns.size(); ++k) {
        sum += values[k] * x[columns[k]];
      }
      y[row] = sum;
    }
  };
  // Below ~16k rows the fork/join overhead dominates on this kind of kernel.
  if (parallel && n >= 16384 && util::ThreadPool::shared().worker_count() > 0) {
    util::ThreadPool::shared().parallel_for(n, rows);
  } else {
    rows(0, n);
  }
}

std::vector<double> CsrMatrix::to_dense() const {
  const std::size_t n = size();
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t row = 0; row < n; ++row) {
    const auto columns = row_columns(row);
    const auto values = row_values(row);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      dense[row * n + columns[k]] = values[k];
    }
  }
  return dense;
}

}  // namespace choreo::ctmc
