// Transient solution of CTMCs by uniformisation.
//
//   pi(t) = sum_k Poisson(k; lambda t) * pi(0) P^k,  P = I + Q / lambda.
//
// Poisson weights are evaluated in log space so large lambda*t does not
// underflow, and the summation window is chosen so the truncated tail mass
// is below the requested epsilon (a lightweight Fox-Glynn scheme).
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/generator.hpp"
#include "util/budget.hpp"

namespace choreo::ctmc {

struct TransientOptions {
  /// Permitted truncation error on the probability mass.
  double epsilon = 1e-10;
  bool parallel = true;
  /// Resource governor: cancellation/deadline checked every few
  /// uniformisation terms (util::InterruptedError on interruption).
  util::Budget* budget = nullptr;
};

struct TransientResult {
  std::vector<double> distribution;
  /// Number of DTMC steps actually summed.
  std::size_t terms = 0;
};

/// Distribution at time `t` starting from `initial` (must sum to 1).
TransientResult transient(const Generator& generator,
                          const std::vector<double>& initial, double t,
                          const TransientOptions& options = {});

/// Convenience: start deterministically in `initial_state`.
TransientResult transient_from_state(const Generator& generator,
                                     std::size_t initial_state, double t,
                                     const TransientOptions& options = {});

}  // namespace choreo::ctmc
