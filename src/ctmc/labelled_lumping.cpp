#include "ctmc/labelled_lumping.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace choreo::ctmc {

namespace {

using Signature = std::vector<std::pair<std::pair<std::uint32_t, std::size_t>, double>>;

/// rate(s, alpha, block) for every (alpha, block) with non-zero rate.
Signature signature_of(std::size_t state,
                       const std::vector<std::vector<std::size_t>>& outgoing,
                       const std::vector<LabelledTransition>& transitions,
                       const std::vector<std::size_t>& block_of) {
  std::map<std::pair<std::uint32_t, std::size_t>, double> into;
  for (std::size_t index : outgoing[state]) {
    const LabelledTransition& t = transitions[index];
    into[{t.label, block_of[t.target]}] += t.rate;
  }
  Signature out(into.begin(), into.end());
  for (auto& [key, rate] : out) rate = std::round(rate * 1e12) / 1e12;
  return out;
}

}  // namespace

LabelledLumping compute_labelled_lumping(
    std::size_t state_count, const std::vector<LabelledTransition>& transitions,
    std::vector<std::size_t> initial_partition) {
  if (initial_partition.empty()) initial_partition.assign(state_count, 0);
  CHOREO_ASSERT(initial_partition.size() == state_count);

  std::vector<std::vector<std::size_t>> outgoing(state_count);
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    CHOREO_ASSERT(transitions[i].source < state_count);
    CHOREO_ASSERT(transitions[i].target < state_count);
    outgoing[transitions[i].source].push_back(i);
  }

  LabelledLumping lumping;
  lumping.block_of = std::move(initial_partition);
  while (true) {
    std::map<std::pair<std::size_t, Signature>, std::size_t> groups;
    std::vector<std::size_t> next(state_count);
    for (std::size_t s = 0; s < state_count; ++s) {
      auto key = std::make_pair(
          lumping.block_of[s],
          signature_of(s, outgoing, transitions, lumping.block_of));
      const auto [it, inserted] = groups.emplace(std::move(key), groups.size());
      next[s] = it->second;
    }
    std::vector<bool> seen(state_count, false);
    std::size_t old_count = 0;
    for (std::size_t s = 0; s < state_count; ++s) {
      if (!seen[lumping.block_of[s]]) {
        seen[lumping.block_of[s]] = true;
        ++old_count;
      }
    }
    lumping.block_of = std::move(next);
    if (groups.size() == old_count) break;
  }

  std::map<std::size_t, std::size_t> order;
  for (std::size_t s = 0; s < state_count; ++s) {
    const auto [it, inserted] = order.emplace(lumping.block_of[s], order.size());
    if (inserted) lumping.representatives.push_back(s);
    lumping.block_of[s] = it->second;
  }
  lumping.block_count = order.size();

  // Quotient LTS from the representatives (labelled self-loops kept).
  for (std::size_t b = 0; b < lumping.block_count; ++b) {
    std::map<std::pair<std::uint32_t, std::size_t>, double> into;
    for (std::size_t index : outgoing[lumping.representatives[b]]) {
      const LabelledTransition& t = transitions[index];
      into[{t.label, lumping.block_of[t.target]}] += t.rate;
    }
    for (const auto& [key, rate] : into) {
      lumping.quotient_transitions.push_back({b, key.second, key.first, rate});
    }
  }
  return lumping;
}

Generator LabelledLumping::quotient_generator() const {
  std::vector<RatedTransition> rated;
  for (const LabelledTransition& t : quotient_transitions) {
    if (t.source == t.target) continue;  // self-loops do not move the chain
    rated.push_back({t.source, t.target, t.rate});
  }
  return Generator::build(block_count, rated);
}

double LabelledLumping::throughput(const std::vector<double>& block_distribution,
                                   std::uint32_t label) const {
  CHOREO_ASSERT(block_distribution.size() == block_count);
  double sum = 0.0;
  for (const LabelledTransition& t : quotient_transitions) {
    if (t.label == label) sum += block_distribution[t.source] * t.rate;
  }
  return sum;
}

std::vector<double> LabelledLumping::aggregate(
    const std::vector<double>& distribution) const {
  CHOREO_ASSERT(distribution.size() == block_of.size());
  std::vector<double> out(block_count, 0.0);
  for (std::size_t s = 0; s < distribution.size(); ++s) {
    out[block_of[s]] += distribution[s];
  }
  return out;
}

}  // namespace choreo::ctmc
