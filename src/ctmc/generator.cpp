#include "ctmc/generator.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace choreo::ctmc {

namespace {

/// Validates one transition; appends its off-diagonal triplet and folds its
/// rate into the source's exit sum.
void fold_transition(const RatedTransition& t, std::size_t state_count,
                     std::vector<Triplet>& triplets, std::vector<double>& exit) {
  CHOREO_ASSERT(t.source < state_count && t.target < state_count);
  if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
    throw util::ModelError(util::msg("transition ", t.source, " -> ", t.target,
                                     " has non-positive rate ", t.rate));
  }
  if (t.source == t.target) return;
  triplets.push_back({t.source, t.target, t.rate});
  exit[t.source] += t.rate;
}

}  // namespace

Generator Generator::build(std::size_t state_count,
                           const std::vector<RatedTransition>& transitions) {
  const std::size_t m = transitions.size();
  util::ThreadPool& pool = util::ThreadPool::shared();
  // The parallel path needs the transitions grouped by source (state-space
  // derivation emits them that way): chunk boundaries are then aligned to
  // source boundaries, so each state's exit rate is summed by exactly one
  // lane in input order and the floating-point results match the sequential
  // fold bit for bit.
  const bool sorted_by_source =
      std::is_sorted(transitions.begin(), transitions.end(),
                     [](const RatedTransition& a, const RatedTransition& b) {
                       return a.source < b.source;
                     });
  const std::size_t lanes = pool.worker_count() + 1;
  const bool parallel =
      pool.worker_count() > 0 && sorted_by_source && m >= (1u << 15);

  std::vector<Triplet> triplets;
  std::vector<double> exit(state_count, 0.0);
  if (!parallel) {
    triplets.reserve(m * 2);
    for (const RatedTransition& t : transitions) {
      fold_transition(t, state_count, triplets, exit);
    }
  } else {
    // Source-aligned chunk bounds: advance each natural bound until the
    // source changes, so no state straddles two chunks.
    std::vector<std::size_t> bounds(lanes + 1, m);
    bounds[0] = 0;
    for (std::size_t c = 1; c < lanes; ++c) {
      std::size_t b = std::max(m * c / lanes, bounds[c - 1]);
      while (b < m && b > 0 &&
             transitions[b].source == transitions[b - 1].source) {
        ++b;
      }
      bounds[c] = b;
    }

    // Each lane folds its chunk into private triplets (concatenated in
    // chunk = input order below) and disjoint exit entries; a lane stops at
    // its first bad transition, and the earliest one in input order is
    // rethrown — exactly the transition the sequential fold rejects first.
    std::vector<std::vector<Triplet>> parts(lanes);
    std::vector<std::exception_ptr> errors(lanes);
    auto fold_chunk = [&](std::size_t lane) {
      parts[lane].reserve(bounds[lane + 1] - bounds[lane]);
      for (std::size_t i = bounds[lane]; i < bounds[lane + 1]; ++i) {
        try {
          fold_transition(transitions[i], state_count, parts[lane], exit);
        } catch (...) {
          errors[lane] = std::current_exception();
          break;
        }
      }
    };
    std::vector<std::future<void>> pending;
    pending.reserve(lanes - 1);
    for (std::size_t lane = 1; lane < lanes; ++lane) {
      pending.push_back(pool.submit([&, lane] { fold_chunk(lane); }));
    }
    fold_chunk(0);
    for (std::future<void>& f : pending) f.get();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (errors[lane]) std::rethrow_exception(errors[lane]);
    }
    triplets.reserve(m * 2);
    for (std::vector<Triplet>& part : parts) {
      triplets.insert(triplets.end(), part.begin(), part.end());
    }
  }
  for (std::size_t s = 0; s < state_count; ++s) {
    if (exit[s] > 0.0) triplets.push_back({s, s, -exit[s]});
  }

  Generator generator;
  generator.matrix_ = CsrMatrix::from_triplets(state_count, std::move(triplets));
  generator.transposed_ = generator.matrix_.transposed();
  generator.max_exit_rate_ =
      exit.empty() ? 0.0 : *std::max_element(exit.begin(), exit.end());
  return generator;
}

double Generator::exit_rate(std::size_t state) const {
  return -matrix_.at(state, state);
}

std::vector<std::size_t> Generator::absorbing_states() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (matrix_.row_columns(s).empty()) out.push_back(s);
  }
  return out;
}

void Generator::validate(double tolerance) const {
  for (std::size_t row = 0; row < state_count(); ++row) {
    const auto columns = matrix_.row_columns(row);
    const auto values = matrix_.row_values(row);
    double sum = 0.0;
    for (std::size_t k = 0; k < columns.size(); ++k) {
      sum += values[k];
      if (columns[k] != row && values[k] < 0.0) {
        throw util::NumericError(
            util::msg("negative off-diagonal entry Q[", row, "][", columns[k],
                      "] = ", values[k]));
      }
    }
    if (std::abs(sum) > tolerance) {
      throw util::NumericError(
          util::msg("generator row ", row, " sums to ", sum, ", expected 0"));
    }
  }
}

}  // namespace choreo::ctmc
