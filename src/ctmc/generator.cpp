#include "ctmc/generator.hpp"

namespace choreo::ctmc {

Generator Generator::build(std::size_t state_count,
                           const std::vector<RatedTransition>& transitions) {
  return build_from<RatedTransition>(state_count, transitions);
}

double Generator::exit_rate(std::size_t state) const {
  return -matrix_.at(state, state);
}

std::vector<std::size_t> Generator::absorbing_states() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (matrix_.row_columns(s).empty()) out.push_back(s);
  }
  return out;
}

void Generator::validate(double tolerance) const {
  for (std::size_t row = 0; row < state_count(); ++row) {
    const auto columns = matrix_.row_columns(row);
    const auto values = matrix_.row_values(row);
    double sum = 0.0;
    for (std::size_t k = 0; k < columns.size(); ++k) {
      sum += values[k];
      if (columns[k] != row && values[k] < 0.0) {
        throw util::NumericError(
            util::msg("negative off-diagonal entry Q[", row, "][", columns[k],
                      "] = ", values[k]));
      }
    }
    if (std::abs(sum) > tolerance) {
      throw util::NumericError(
          util::msg("generator row ", row, " sums to ", sum, ", expected 0"));
    }
  }
}

}  // namespace choreo::ctmc
