#include "ctmc/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace choreo::ctmc {

Generator Generator::build(std::size_t state_count,
                           const std::vector<RatedTransition>& transitions) {
  std::vector<Triplet> triplets;
  triplets.reserve(transitions.size() * 2);
  std::vector<double> exit(state_count, 0.0);
  for (const RatedTransition& t : transitions) {
    CHOREO_ASSERT(t.source < state_count && t.target < state_count);
    if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
      throw util::ModelError(util::msg("transition ", t.source, " -> ", t.target,
                                       " has non-positive rate ", t.rate));
    }
    if (t.source == t.target) continue;
    triplets.push_back({t.source, t.target, t.rate});
    exit[t.source] += t.rate;
  }
  for (std::size_t s = 0; s < state_count; ++s) {
    if (exit[s] > 0.0) triplets.push_back({s, s, -exit[s]});
  }

  Generator generator;
  generator.matrix_ = CsrMatrix::from_triplets(state_count, std::move(triplets));
  generator.transposed_ = generator.matrix_.transposed();
  generator.max_exit_rate_ =
      exit.empty() ? 0.0 : *std::max_element(exit.begin(), exit.end());
  return generator;
}

double Generator::exit_rate(std::size_t state) const {
  return -matrix_.at(state, state);
}

std::vector<std::size_t> Generator::absorbing_states() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_count(); ++s) {
    if (matrix_.row_columns(s).empty()) out.push_back(s);
  }
  return out;
}

void Generator::validate(double tolerance) const {
  for (std::size_t row = 0; row < state_count(); ++row) {
    const auto columns = matrix_.row_columns(row);
    const auto values = matrix_.row_values(row);
    double sum = 0.0;
    for (std::size_t k = 0; k < columns.size(); ++k) {
      sum += values[k];
      if (columns[k] != row && values[k] < 0.0) {
        throw util::NumericError(
            util::msg("negative off-diagonal entry Q[", row, "][", columns[k],
                      "] = ", values[k]));
      }
    }
    if (std::abs(sum) > tolerance) {
      throw util::NumericError(
          util::msg("generator row ", row, " sums to ", sum, ", expected 0"));
    }
  }
}

}  // namespace choreo::ctmc
