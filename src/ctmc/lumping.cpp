#include "ctmc/lumping.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace choreo::ctmc {

namespace {

/// Per-state signature: total rate into each (current) block, the state's
/// own block included (minus the diagonal).  Comparing own-block rates too
/// makes this the strong Markov-bisimulation condition -- PEPA's strong
/// equivalence at CTMC level -- which is strictly finer than bare ordinary
/// lumpability (whose coarsest solution is always the useless one-block
/// partition) while still guaranteeing an exact quotient.
std::vector<std::pair<std::size_t, double>> signature_of(
    const Generator& generator, std::size_t state,
    const std::vector<std::size_t>& block_of) {
  std::map<std::size_t, double> into;
  const auto columns = generator.matrix().row_columns(state);
  const auto values = generator.matrix().row_values(state);
  for (std::size_t k = 0; k < columns.size(); ++k) {
    if (columns[k] == state) continue;  // diagonal
    into[block_of[columns[k]]] += values[k];
  }
  std::vector<std::pair<std::size_t, double>> out(into.begin(), into.end());
  // Quantise rates so floating-point noise cannot split blocks.
  for (auto& [block, rate] : out) {
    rate = std::round(rate * 1e12) / 1e12;
  }
  return out;
}

}  // namespace

Lumping compute_lumping(const Generator& generator,
                        std::vector<std::size_t> initial_partition) {
  const std::size_t n = generator.state_count();
  if (initial_partition.empty()) initial_partition.assign(n, 0);
  CHOREO_ASSERT(initial_partition.size() == n);
  for (std::size_t label : initial_partition) CHOREO_ASSERT(label < n || n == 0);

  Lumping lumping;
  lumping.block_of = std::move(initial_partition);

  while (true) {
    // Group states by (current block, outgoing block-rate signature).  The
    // key contains the current block, so refinement can only split blocks:
    // the group count is non-decreasing, and a fixed point is reached
    // exactly when it stops growing.
    std::map<std::pair<std::size_t, std::vector<std::pair<std::size_t, double>>>,
             std::size_t>
        groups;
    std::vector<std::size_t> next(n);
    for (std::size_t s = 0; s < n; ++s) {
      auto key = std::make_pair(lumping.block_of[s],
                                signature_of(generator, s, lumping.block_of));
      const auto [it, inserted] = groups.emplace(std::move(key), groups.size());
      next[s] = it->second;
    }
    std::vector<bool> seen(n, false);
    std::size_t old_count = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (!seen[lumping.block_of[s]]) {
        seen[lumping.block_of[s]] = true;
        ++old_count;
      }
    }
    lumping.block_of = std::move(next);
    if (groups.size() == old_count) break;
  }

  // Normalise block ids to 0..k-1 in order of first appearance and record
  // representatives.
  std::map<std::size_t, std::size_t> order;
  lumping.representatives.clear();
  for (std::size_t s = 0; s < n; ++s) {
    const auto [it, inserted] = order.emplace(lumping.block_of[s], order.size());
    if (inserted) lumping.representatives.push_back(s);
    lumping.block_of[s] = it->second;
  }
  lumping.block_count = order.size();
  return lumping;
}

Generator Lumping::quotient(const Generator& full) const {
  CHOREO_ASSERT(block_of.size() == full.state_count());
  std::vector<RatedTransition> transitions;
  for (std::size_t b = 0; b < block_count; ++b) {
    const std::size_t representative = representatives[b];
    std::map<std::size_t, double> into;
    const auto columns = full.matrix().row_columns(representative);
    const auto values = full.matrix().row_values(representative);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      if (columns[k] == representative) continue;
      const std::size_t target_block = block_of[columns[k]];
      if (target_block == b) continue;  // internal moves vanish
      into[target_block] += values[k];
    }
    for (const auto& [target, rate] : into) {
      transitions.push_back({b, target, rate});
    }
  }
  return Generator::build(block_count, transitions);
}

std::vector<double> Lumping::aggregate(
    const std::vector<double>& distribution) const {
  CHOREO_ASSERT(distribution.size() == block_of.size());
  std::vector<double> out(block_count, 0.0);
  for (std::size_t s = 0; s < distribution.size(); ++s) {
    out[block_of[s]] += distribution[s];
  }
  return out;
}

std::vector<double> Lumping::lift_uniform(
    const std::vector<double>& block_distribution, std::size_t state_count) const {
  CHOREO_ASSERT(block_distribution.size() == block_count);
  CHOREO_ASSERT(block_of.size() == state_count);
  std::vector<std::size_t> sizes(block_count, 0);
  for (std::size_t s = 0; s < state_count; ++s) ++sizes[block_of[s]];
  std::vector<double> out(state_count, 0.0);
  for (std::size_t s = 0; s < state_count; ++s) {
    out[s] = block_distribution[block_of[s]] /
             static_cast<double>(sizes[block_of[s]]);
  }
  return out;
}

void check_lumpable(const Generator& generator, const Lumping& lumping,
                    double tolerance) {
  const std::size_t n = generator.state_count();
  // For each block, every member must share the representative's
  // block-level outgoing rates.
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t b = lumping.block_of[s];
    const auto mine = signature_of(generator, s, lumping.block_of);
    const auto reference =
        signature_of(generator, lumping.representatives[b], lumping.block_of);
    if (mine.size() != reference.size()) {
      throw util::NumericError(util::msg("partition not lumpable: state ", s,
                                         " disagrees with block ", b,
                                         "'s representative"));
    }
    for (std::size_t k = 0; k < mine.size(); ++k) {
      if (mine[k].first != reference[k].first ||
          std::abs(mine[k].second - reference[k].second) > tolerance) {
        throw util::NumericError(util::msg(
            "partition not lumpable: state ", s, " has rate ", mine[k].second,
            " into block ", mine[k].first, ", representative has ",
            reference[k].second));
      }
    }
  }
}

}  // namespace choreo::ctmc
