#include "ctmc/rewards.hpp"

#include "util/error.hpp"

namespace choreo::ctmc {

double expectation(std::span<const double> distribution,
                   std::span<const double> reward) {
  CHOREO_ASSERT(distribution.size() == reward.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    sum += distribution[i] * reward[i];
  }
  return sum;
}

double probability(std::span<const double> distribution,
                   const std::function<bool(std::size_t)>& predicate) {
  double sum = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    if (predicate(i)) sum += distribution[i];
  }
  return sum;
}

double throughput(std::span<const double> distribution,
                  const std::vector<RatedTransition>& transitions) {
  double sum = 0.0;
  for (const RatedTransition& t : transitions) {
    CHOREO_ASSERT(t.source < distribution.size());
    sum += distribution[t.source] * t.rate;
  }
  return sum;
}

}  // namespace choreo::ctmc
