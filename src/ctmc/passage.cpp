#include "ctmc/passage.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "ctmc/transient.hpp"
#include "util/error.hpp"

namespace choreo::ctmc {

namespace {

std::vector<bool> target_mask(std::size_t n, const std::vector<std::size_t>& targets) {
  if (targets.empty()) {
    throw util::NumericError("passage analysis needs a non-empty target set");
  }
  std::vector<bool> mask(n, false);
  for (std::size_t t : targets) {
    CHOREO_ASSERT(t < n);
    mask[t] = true;
  }
  return mask;
}

/// States from which some target is reachable (backwards BFS).
std::vector<bool> can_reach(const Generator& generator,
                            const std::vector<bool>& is_target) {
  const std::size_t n = generator.state_count();
  const CsrMatrix& qt = generator.matrix_transposed();
  std::vector<bool> reach(n, false);
  std::deque<std::size_t> frontier;
  for (std::size_t s = 0; s < n; ++s) {
    if (is_target[s]) {
      reach[s] = true;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const std::size_t state = frontier.front();
    frontier.pop_front();
    // Predecessors of `state` are the column indices of Q^T's row.
    const auto columns = qt.row_columns(state);
    const auto values = qt.row_values(state);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      if (columns[k] == state || values[k] <= 0.0) continue;
      if (!reach[columns[k]]) {
        reach[columns[k]] = true;
        frontier.push_back(columns[k]);
      }
    }
  }
  return reach;
}

/// The generator with every target state made absorbing.
Generator absorbing_variant(const Generator& generator,
                            const std::vector<bool>& is_target) {
  std::vector<RatedTransition> transitions;
  const std::size_t n = generator.state_count();
  for (std::size_t s = 0; s < n; ++s) {
    if (is_target[s]) continue;
    const auto columns = generator.matrix().row_columns(s);
    const auto values = generator.matrix().row_values(s);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      if (columns[k] == s) continue;
      transitions.push_back({s, columns[k], values[k]});
    }
  }
  return Generator::build(n, transitions);
}

}  // namespace

std::vector<double> mean_passage_times(const Generator& generator,
                                       const std::vector<std::size_t>& targets) {
  const std::size_t n = generator.state_count();
  const std::vector<bool> is_target = target_mask(n, targets);
  const std::vector<bool> reaches = can_reach(generator, is_target);
  for (std::size_t s = 0; s < n; ++s) {
    if (!reaches[s]) {
      throw util::NumericError(util::msg(
          "state ", s, " cannot reach the target set: mean passage time"
          " is infinite"));
    }
  }

  // Solve exit_i * m_i - sum_{j not target, j != i} q_ij m_j = 1 for the
  // non-target states by Gauss-Seidel (the system matrix is a weakly
  // diagonally dominant M-matrix, for which the sweep converges), with a
  // dense fallback not needed in practice.
  std::vector<double> m(n, 0.0);
  const CsrMatrix& q = generator.matrix();
  const std::size_t max_iterations = 1000000;
  double residual = 0.0;
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_target[i]) continue;
      const auto columns = q.row_columns(i);
      const auto values = q.row_values(i);
      double exit = 0.0;
      double inflow = 0.0;
      for (std::size_t k = 0; k < columns.size(); ++k) {
        if (columns[k] == i) {
          exit = -values[k];
        } else if (!is_target[columns[k]]) {
          inflow += values[k] * m[columns[k]];
        }
      }
      CHOREO_ASSERT(exit > 0.0);  // non-target states can move (reachability)
      const double updated = (1.0 + inflow) / exit;
      residual = std::max(residual, std::abs(updated - m[i]));
      m[i] = updated;
    }
    if (residual <= 1e-12 * (1.0 + *std::max_element(m.begin(), m.end()))) {
      return m;
    }
  }
  throw util::NumericError(util::msg(
      "mean passage-time iteration did not converge (residual ", residual, ")"));
}

double mean_passage_time(const Generator& generator, std::size_t source,
                         const std::vector<std::size_t>& targets) {
  return mean_passage_times(generator, targets)[source];
}

std::vector<double> passage_pdf(const Generator& generator,
                                const std::vector<double>& initial,
                                const std::vector<std::size_t>& targets,
                                const std::vector<double>& time_points,
                                const PassageCdfOptions& options) {
  const std::size_t n = generator.state_count();
  if (initial.size() != n) {
    throw util::NumericError("initial distribution size mismatch");
  }
  const std::vector<bool> is_target = target_mask(n, targets);
  const Generator absorbing = absorbing_variant(generator, is_target);

  // rate(s -> T) per transient state, from the *original* generator.
  std::vector<double> into_target(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (is_target[s]) continue;
    const auto columns = generator.matrix().row_columns(s);
    const auto values = generator.matrix().row_values(s);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      if (columns[k] != s && is_target[columns[k]]) {
        into_target[s] += values[k];
      }
    }
  }

  TransientOptions transient_options;
  transient_options.epsilon = options.epsilon;
  transient_options.parallel = options.parallel;

  std::vector<double> pdf;
  pdf.reserve(time_points.size());
  for (double t : time_points) {
    const auto result = transient(absorbing, initial, t, transient_options);
    double flux = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      flux += result.distribution[s] * into_target[s];
    }
    pdf.push_back(flux);
  }
  return pdf;
}

std::vector<double> passage_cdf(const Generator& generator,
                                const std::vector<double>& initial,
                                const std::vector<std::size_t>& targets,
                                const std::vector<double>& time_points,
                                const PassageCdfOptions& options) {
  const std::size_t n = generator.state_count();
  if (initial.size() != n) {
    throw util::NumericError("initial distribution size mismatch");
  }
  const std::vector<bool> is_target = target_mask(n, targets);
  const Generator absorbing = absorbing_variant(generator, is_target);

  TransientOptions transient_options;
  transient_options.epsilon = options.epsilon;
  transient_options.parallel = options.parallel;

  std::vector<double> cdf;
  cdf.reserve(time_points.size());
  for (double t : time_points) {
    const auto result = transient(absorbing, initial, t, transient_options);
    double mass = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_target[s]) mass += result.distribution[s];
    }
    cdf.push_back(mass);
  }
  return cdf;
}

}  // namespace choreo::ctmc
