#include "ctmc/steady_state.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace choreo::ctmc {

const char* method_name(Method method) {
  switch (method) {
    case Method::kAuto: return "auto";
    case Method::kDenseLU: return "dense-lu";
    case Method::kJacobi: return "jacobi";
    case Method::kGaussSeidel: return "gauss-seidel";
    case Method::kSor: return "sor";
    case Method::kPower: return "power";
  }
  return "?";
}

namespace {

void normalise(std::vector<double>& pi) {
  // L1 normalisation: over-relaxed sweeps can transiently drive entries
  // negative, so the signed sum is not a safe divisor.  At a converged
  // fixed point all entries are non-negative and this is the plain sum.
  double sum = 0.0;
  for (double p : pi) sum += std::abs(p);
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    throw util::NumericError("steady-state iteration diverged (zero or"
                             " non-finite iterate)");
  }
  for (double& p : pi) p /= sum;
}

/// ||pi Q||_inf, evaluated as (Q^T pi) to reuse the row-oriented kernel.
double residual_norm(const Generator& generator, const std::vector<double>& pi,
                     bool parallel) {
  std::vector<double> product(pi.size(), 0.0);
  generator.matrix_transposed().multiply(pi, product, parallel);
  double norm = 0.0;
  for (double v : product) norm = std::max(norm, std::abs(v));
  return norm;
}

SolveResult solve_dense_lu(const Generator& generator) {
  const std::size_t n = generator.state_count();
  // Assemble Q^T and overwrite the last equation with the normalisation
  // condition sum(pi) = 1, then LU-factorise with partial pivoting.
  std::vector<double> a = generator.matrix_transposed().to_dense();
  std::vector<double> b(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) a[(n - 1) * n + col] = 1.0;
  b[n - 1] = 1.0;

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(a[perm[k] * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double candidate = std::abs(a[perm[i] * n + k]);
      if (candidate > best) {
        best = candidate;
        pivot = i;
      }
    }
    if (best == 0.0) {
      throw util::NumericError(
          "singular system in dense LU (is the chain disconnected?)");
    }
    std::swap(perm[k], perm[pivot]);
    const double akk = a[perm[k] * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a[perm[i] * n + k] / akk;
      if (factor == 0.0) continue;
      a[perm[i] * n + k] = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) {
        a[perm[i] * n + j] -= factor * a[perm[k] * n + j];
      }
      b[perm[i]] -= factor * b[perm[k]];
    }
  }
  // Back substitution.
  std::vector<double> pi(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[perm[ri]];
    for (std::size_t j = ri + 1; j < n; ++j) sum -= a[perm[ri] * n + j] * pi[j];
    pi[ri] = sum / a[perm[ri] * n + ri];
  }
  // Clamp the tiny negatives rounding can introduce, then renormalise.
  for (double& p : pi) p = std::max(p, 0.0);
  normalise(pi);

  SolveResult result;
  result.distribution = std::move(pi);
  result.method_used = Method::kDenseLU;
  result.iterations = 1;
  return result;
}

/// Shared driver for Jacobi / Gauss-Seidel / SOR sweeps over Q^T.
SolveResult solve_sweeps(const Generator& generator, const SolveOptions& options,
                         Method method) {
  const std::size_t n = generator.state_count();
  const CsrMatrix& qt = generator.matrix_transposed();

  // exit[j] = -Q[j][j]; a zero exit rate (absorbing state) breaks the sweep
  // update, which divides by it.
  std::vector<double> exit(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double diag = qt.at(j, j);
    if (diag >= 0.0) {
      throw util::NumericError(util::msg(
          "state ", j, " is absorbing; ", method_name(method),
          " cannot solve chains with absorbing states (use dense-lu)"));
    }
    exit[j] = -diag;
  }

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(method == Method::kJacobi ? n : 0, 0.0);
  const double omega = method == Method::kSor ? options.relaxation : 1.0;

  SolveResult result;
  result.method_used = method;
  for (std::size_t iteration = 1; iteration <= options.max_iterations; ++iteration) {
    if (method == Method::kJacobi) {
      // Damped Jacobi: the undamped iteration oscillates on strongly cyclic
      // chains (e.g. a two-state toggle); averaging with the previous
      // iterate breaks the period-2 cycle while preserving the fixed point.
      constexpr double kDamping = 0.5;
      for (std::size_t j = 0; j < n; ++j) {
        const auto columns = qt.row_columns(j);
        const auto values = qt.row_values(j);
        double inflow = 0.0;
        for (std::size_t k = 0; k < columns.size(); ++k) {
          if (columns[k] != j) inflow += values[k] * pi[columns[k]];
        }
        next[j] = (1.0 - kDamping) * pi[j] + kDamping * inflow / exit[j];
      }
      pi.swap(next);
    } else {  // Gauss-Seidel / SOR update in place
      for (std::size_t j = 0; j < n; ++j) {
        const auto columns = qt.row_columns(j);
        const auto values = qt.row_values(j);
        double inflow = 0.0;
        for (std::size_t k = 0; k < columns.size(); ++k) {
          if (columns[k] != j) inflow += values[k] * pi[columns[k]];
        }
        const double updated = inflow / exit[j];
        pi[j] = (1.0 - omega) * pi[j] + omega * updated;
      }
    }
    normalise(pi);

    // The residual check costs a mat-vec, so amortise it; the cooperative
    // budget check rides on the same cadence, bounding how long a cancelled
    // or deadline-expired solve keeps sweeping.
    if (iteration % util::Budget::kSolverCheckStride == 0 ||
        iteration == options.max_iterations) {
      if (options.budget != nullptr) {
        options.budget->charge_solver_iterations(
            util::Budget::kSolverCheckStride);
        options.budget->check("solve");
      }
      const double residual = residual_norm(generator, pi, options.parallel);
      if (residual <= options.tolerance) {
        result.distribution = std::move(pi);
        result.iterations = iteration;
        result.residual = residual;
        return result;
      }
    }
  }
  throw util::NumericError(util::msg(
      method_name(method), " did not converge within ", options.max_iterations,
      " iterations (residual ",
      residual_norm(generator, pi, options.parallel), ")"));
}

SolveResult solve_power(const Generator& generator, const SolveOptions& options) {
  const std::size_t n = generator.state_count();
  const CsrMatrix& qt = generator.matrix_transposed();

  // Uniformise: P = I + Q / lambda.  Iterating pi <- pi P preserves the
  // stationary distribution and is guaranteed aperiodic because lambda
  // strictly exceeds every exit rate.
  const double lambda = std::max(generator.max_exit_rate(), 1e-300) * 1.05;

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> flow(n, 0.0);

  SolveResult result;
  result.method_used = Method::kPower;
  for (std::size_t iteration = 1; iteration <= options.max_iterations; ++iteration) {
    if (options.budget != nullptr &&
        iteration % util::Budget::kSolverCheckStride == 0) {
      options.budget->charge_solver_iterations(
          util::Budget::kSolverCheckStride);
      options.budget->check("solve");
    }
    qt.multiply(pi, flow, options.parallel);  // flow = (pi Q)^T
    double residual = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      residual = std::max(residual, std::abs(flow[j]));
      pi[j] += flow[j] / lambda;
      pi[j] = std::max(pi[j], 0.0);
    }
    normalise(pi);
    if (residual <= options.tolerance) {
      result.distribution = std::move(pi);
      result.iterations = iteration;
      result.residual = residual;
      return result;
    }
  }
  throw util::NumericError(util::msg("power iteration did not converge within ",
                                     options.max_iterations, " iterations"));
}

}  // namespace

SolveResult steady_state(const Generator& generator, const SolveOptions& options) {
  if (generator.state_count() == 0) {
    throw util::NumericError("cannot solve an empty chain");
  }
  util::Stopwatch timer;

  Method method = options.method;
  if (method == Method::kAuto) {
    if (generator.state_count() <= options.dense_cutoff) {
      method = Method::kDenseLU;
    } else if (!generator.absorbing_states().empty()) {
      method = Method::kPower;
    } else {
      method = Method::kGaussSeidel;
    }
  }

  SolveResult result;
  switch (method) {
    case Method::kDenseLU:
      result = solve_dense_lu(generator);
      break;
    case Method::kJacobi:
    case Method::kGaussSeidel:
    case Method::kSor:
      result = solve_sweeps(generator, options, method);
      break;
    case Method::kPower:
      result = solve_power(generator, options);
      break;
    case Method::kAuto:
      CHOREO_ASSERT(false);
  }
  if (result.residual == 0.0 && method == Method::kDenseLU) {
    result.residual = residual_norm(generator, result.distribution, options.parallel);
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace choreo::ctmc
