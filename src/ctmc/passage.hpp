// First-passage time analysis.
//
// The paper's tool ecosystem includes the Imperial PEPA Compiler (ipc),
// whose headline capability is "derivation of passage-time densities in
// PEPA models".  This module provides the CTMC core of that analysis:
//
//   - the mean first-passage time from a source distribution to a target
//     set (the linear "hitting time" system), and
//   - the passage-time CDF, computed by making the targets absorbing and
//     running transient uniformisation: P[T <= t] is the probability mass
//     absorbed by time t.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/generator.hpp"

namespace choreo::ctmc {

/// Mean hitting times m[s] = E[time to reach `targets` from s]; m[s] = 0
/// for targets.  Throws util::NumericError when some state cannot reach a
/// target (the expectation is infinite).
std::vector<double> mean_passage_times(const Generator& generator,
                                       const std::vector<std::size_t>& targets);

/// Convenience: expected passage time from a single source state.
double mean_passage_time(const Generator& generator, std::size_t source,
                         const std::vector<std::size_t>& targets);

struct PassageCdfOptions {
  double epsilon = 1e-10;
  bool parallel = true;
};

/// P[T <= t] for each requested time point, starting from `initial`
/// (a distribution over states; targets' mass counts as already passed).
std::vector<double> passage_cdf(const Generator& generator,
                                const std::vector<double>& initial,
                                const std::vector<std::size_t>& targets,
                                const std::vector<double>& time_points,
                                const PassageCdfOptions& options = {});

/// The passage-time *density* f(t) at each requested time point (ipc's
/// headline output): the instantaneous probability flux into the target
/// set,  f(t) = sum_{s not in T} pi_t(s) * rate(s -> T),  where pi_t is the
/// transient distribution of the chain with targets made absorbing.
std::vector<double> passage_pdf(const Generator& generator,
                                const std::vector<double>& initial,
                                const std::vector<std::size_t>& targets,
                                const std::vector<double>& time_points,
                                const PassageCdfOptions& options = {});

}  // namespace choreo::ctmc
