// Steady-state solution of CTMCs: pi Q = 0, sum(pi) = 1.
//
// The PEPA Workbench solves the CTMC numerically; this module provides the
// equivalent solvers.  Direct dense LU gives exact (to rounding) answers for
// small chains; the iterative methods (Jacobi, Gauss-Seidel, SOR, and the
// power method on the uniformised DTMC) scale to the state-space sizes the
// paper's Section 1.1 worries about.  All iterative methods run on the
// transposed generator so the kernel is a plain row-oriented sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ctmc/generator.hpp"
#include "util/budget.hpp"

namespace choreo::ctmc {

enum class Method {
  kAuto,         ///< dense LU for small chains, Gauss-Seidel otherwise
  kDenseLU,      ///< direct solution with partial pivoting (exact, O(n^3))
  kJacobi,       ///< Jacobi iteration
  kGaussSeidel,  ///< Gauss-Seidel iteration (the workbench default)
  kSor,          ///< successive over-relaxation
  kPower,        ///< power iteration on the uniformised DTMC
};

const char* method_name(Method method);

struct SolveOptions {
  Method method = Method::kAuto;
  /// Convergence threshold on the residual ||pi Q||_inf.
  double tolerance = 1e-12;
  std::size_t max_iterations = 200000;
  /// SOR relaxation factor in (0, 2).  Values much above 1 accelerate
  /// diagonally-dominant chains but can stall on stiff ones; 1.1 is a
  /// conservative default (1.0 reduces SOR to Gauss-Seidel).
  double relaxation = 1.1;
  /// Use the shared thread pool for large mat-vec products.
  bool parallel = true;
  /// Dense-LU size cutoff used by kAuto.
  std::size_t dense_cutoff = 512;
  /// Resource governor: cancellation/deadline checked every few sweeps of
  /// the iterative methods (amortised with the residual check), so a
  /// cancelled solve aborts with util::InterruptedError instead of running
  /// to max_iterations.  nullptr disables governance.
  util::Budget* budget = nullptr;
};

struct SolveResult {
  std::vector<double> distribution;
  Method method_used = Method::kAuto;
  std::size_t iterations = 0;
  /// Final residual ||pi Q||_inf.
  double residual = 0.0;
  double seconds = 0.0;
};

/// Solves for the stationary distribution.  Throws util::NumericError when
/// the chosen method cannot converge (e.g. Gauss-Seidel on a chain with
/// absorbing states) or when the chain is empty.
SolveResult steady_state(const Generator& generator, const SolveOptions& options = {});

}  // namespace choreo::ctmc
