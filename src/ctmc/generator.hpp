// Infinitesimal generator matrices of Continuous-Time Markov Chains.
//
// A Generator is built from the labelled transitions produced by PEPA /
// PEPA-net state-space derivation: parallel transitions between the same
// pair of states accumulate, and the diagonal holds the negated exit rates.
//
// build_from() folds any contiguous transition-like records (anything
// exposing .source, .target and .rate — in particular the payload of an
// explore::TransitionSystem) directly into the matrix triplets, so building
// the generator of a derived state space needs no intermediate copy of the
// transition vector.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <exception>
#include <future>
#include <span>
#include <vector>

#include "ctmc/sparse.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace choreo::ctmc {

/// A rated transition between two CTMC states.
struct RatedTransition {
  std::size_t source;
  std::size_t target;
  double rate;
};

class Generator {
 public:
  Generator() = default;

  /// Builds the generator of a CTMC with `state_count` states from rated
  /// transitions.  Self-loops are dropped (they do not affect the CTMC).
  /// Throws util::ModelError on non-positive rates.  Large inputs grouped by
  /// source (the order state-space derivation emits) are folded in parallel
  /// over source-aligned chunks, bit-identical to the sequential fold.
  static Generator build(std::size_t state_count,
                         const std::vector<RatedTransition>& transitions);

  /// Same fold over any transition-like records (.source/.target/.rate),
  /// e.g. the payload of a derived explore::TransitionSystem, without
  /// copying into RatedTransition first.
  template <typename Transition>
  static Generator build_from(std::size_t state_count,
                              std::span<const Transition> transitions);

  std::size_t state_count() const noexcept { return matrix_.size(); }
  const CsrMatrix& matrix() const noexcept { return matrix_; }
  /// Q transposed, which the iterative steady-state solvers run on.
  const CsrMatrix& matrix_transposed() const noexcept { return transposed_; }

  /// Total exit rate of a state (= -Q[state][state]).
  double exit_rate(std::size_t state) const;
  /// Largest exit rate over all states (the uniformisation constant basis).
  double max_exit_rate() const noexcept { return max_exit_rate_; }

  /// States with no outgoing transitions.  A deadlocked state makes the
  /// steady-state distribution degenerate; PEPA tooling reports these.
  std::vector<std::size_t> absorbing_states() const;

  /// Verifies row sums vanish (within tolerance) and off-diagonal entries
  /// are non-negative; throws util::NumericError otherwise.
  void validate(double tolerance = 1e-9) const;

 private:
  CsrMatrix matrix_;
  CsrMatrix transposed_;
  double max_exit_rate_ = 0.0;
};

namespace detail {

/// Validates one transition; appends its off-diagonal triplet and folds its
/// rate into the source's exit sum.
template <typename Transition>
void fold_transition(const Transition& t, std::size_t state_count,
                     std::vector<Triplet>& triplets, std::vector<double>& exit) {
  CHOREO_ASSERT(t.source < state_count && t.target < state_count);
  if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
    throw util::ModelError(util::msg("transition ", t.source, " -> ", t.target,
                                     " has non-positive rate ", t.rate));
  }
  if (t.source == t.target) return;
  triplets.push_back({t.source, t.target, t.rate});
  exit[t.source] += t.rate;
}

}  // namespace detail

template <typename Transition>
Generator Generator::build_from(std::size_t state_count,
                                std::span<const Transition> transitions) {
  const std::size_t m = transitions.size();
  util::ThreadPool& pool = util::ThreadPool::shared();
  // The parallel path needs the transitions grouped by source (state-space
  // derivation emits them that way): chunk boundaries are then aligned to
  // source boundaries, so each state's exit rate is summed by exactly one
  // lane in input order and the floating-point results match the sequential
  // fold bit for bit.
  const bool sorted_by_source =
      std::is_sorted(transitions.begin(), transitions.end(),
                     [](const Transition& a, const Transition& b) {
                       return a.source < b.source;
                     });
  const std::size_t lanes = pool.worker_count() + 1;
  const bool parallel =
      pool.worker_count() > 0 && sorted_by_source && m >= (1u << 15);

  std::vector<Triplet> triplets;
  std::vector<double> exit(state_count, 0.0);
  if (!parallel) {
    triplets.reserve(m * 2);
    for (const Transition& t : transitions) {
      detail::fold_transition(t, state_count, triplets, exit);
    }
  } else {
    // Source-aligned chunk bounds: advance each natural bound until the
    // source changes, so no state straddles two chunks.
    std::vector<std::size_t> bounds(lanes + 1, m);
    bounds[0] = 0;
    for (std::size_t c = 1; c < lanes; ++c) {
      std::size_t b = std::max(m * c / lanes, bounds[c - 1]);
      while (b < m && b > 0 &&
             transitions[b].source == transitions[b - 1].source) {
        ++b;
      }
      bounds[c] = b;
    }

    // Each lane folds its chunk into private triplets (concatenated in
    // chunk = input order below) and disjoint exit entries; a lane stops at
    // its first bad transition, and the earliest one in input order is
    // rethrown — exactly the transition the sequential fold rejects first.
    std::vector<std::vector<Triplet>> parts(lanes);
    std::vector<std::exception_ptr> errors(lanes);
    auto fold_chunk = [&](std::size_t lane) {
      parts[lane].reserve(bounds[lane + 1] - bounds[lane]);
      for (std::size_t i = bounds[lane]; i < bounds[lane + 1]; ++i) {
        try {
          detail::fold_transition(transitions[i], state_count, parts[lane],
                                  exit);
        } catch (...) {
          errors[lane] = std::current_exception();
          break;
        }
      }
    };
    std::vector<std::future<void>> pending;
    pending.reserve(lanes - 1);
    for (std::size_t lane = 1; lane < lanes; ++lane) {
      pending.push_back(pool.submit([&, lane] { fold_chunk(lane); }));
    }
    fold_chunk(0);
    for (std::future<void>& f : pending) f.get();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (errors[lane]) std::rethrow_exception(errors[lane]);
    }
    triplets.reserve(m * 2);
    for (std::vector<Triplet>& part : parts) {
      triplets.insert(triplets.end(), part.begin(), part.end());
    }
  }
  for (std::size_t s = 0; s < state_count; ++s) {
    if (exit[s] > 0.0) triplets.push_back({s, s, -exit[s]});
  }

  Generator generator;
  generator.matrix_ = CsrMatrix::from_triplets(state_count, std::move(triplets));
  generator.transposed_ = generator.matrix_.transposed();
  generator.max_exit_rate_ =
      exit.empty() ? 0.0 : *std::max_element(exit.begin(), exit.end());
  return generator;
}

}  // namespace choreo::ctmc
