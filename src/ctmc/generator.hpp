// Infinitesimal generator matrices of Continuous-Time Markov Chains.
//
// A Generator is built from the labelled transitions produced by PEPA /
// PEPA-net state-space derivation: parallel transitions between the same
// pair of states accumulate, and the diagonal holds the negated exit rates.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/sparse.hpp"

namespace choreo::ctmc {

/// A rated transition between two CTMC states.
struct RatedTransition {
  std::size_t source;
  std::size_t target;
  double rate;
};

class Generator {
 public:
  Generator() = default;

  /// Builds the generator of a CTMC with `state_count` states from rated
  /// transitions.  Self-loops are dropped (they do not affect the CTMC).
  /// Throws util::ModelError on non-positive rates.  Large inputs grouped by
  /// source (the order state-space derivation emits) are folded in parallel
  /// over source-aligned chunks, bit-identical to the sequential fold.
  static Generator build(std::size_t state_count,
                         const std::vector<RatedTransition>& transitions);

  std::size_t state_count() const noexcept { return matrix_.size(); }
  const CsrMatrix& matrix() const noexcept { return matrix_; }
  /// Q transposed, which the iterative steady-state solvers run on.
  const CsrMatrix& matrix_transposed() const noexcept { return transposed_; }

  /// Total exit rate of a state (= -Q[state][state]).
  double exit_rate(std::size_t state) const;
  /// Largest exit rate over all states (the uniformisation constant basis).
  double max_exit_rate() const noexcept { return max_exit_rate_; }

  /// States with no outgoing transitions.  A deadlocked state makes the
  /// steady-state distribution degenerate; PEPA tooling reports these.
  std::vector<std::size_t> absorbing_states() const;

  /// Verifies row sums vanish (within tolerance) and off-diagonal entries
  /// are non-negative; throws util::NumericError otherwise.
  void validate(double tolerance = 1e-9) const;

 private:
  CsrMatrix matrix_;
  CsrMatrix transposed_;
  double max_exit_rate_ = 0.0;
};

}  // namespace choreo::ctmc
