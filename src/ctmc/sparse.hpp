// Sparse matrix support for CTMC generator matrices.
//
// Matrices are assembled as triplets (duplicates accumulate) and compressed
// to CSR.  The steady-state solvers iterate on the transpose of the
// generator, so a cheap transpose is provided.  The matrix-vector product is
// parallelised across rows via the shared thread pool; generator matrices
// from state-space derivation are extremely sparse (a handful of activities
// per state) and memory-bound, which suits contiguous row chunks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace choreo::ctmc {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds an n-by-n CSR matrix from triplets; duplicate (row, col) entries
  /// are summed in insertion order.  Entries within each row are ordered by
  /// column.  Large inputs are assembled in parallel (total-order sort plus
  /// row-chunked compression); the result is bit-identical to the sequential
  /// assembly.
  static CsrMatrix from_triplets(std::size_t n, std::vector<Triplet> triplets);

  std::size_t size() const noexcept { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t nonzeros() const noexcept { return values_.size(); }

  std::span<const std::size_t> row_columns(std::size_t row) const;
  std::span<const double> row_values(std::size_t row) const;

  /// Entry (row, col), or 0 when structurally absent.
  double at(std::size_t row, std::size_t col) const;

  CsrMatrix transposed() const;

  /// y = A x (parallelised over rows when `parallel` and the matrix is
  /// large enough to amortise the fork).
  void multiply(std::span<const double> x, std::span<double> y,
                bool parallel = true) const;

  /// Dense copy in row-major order (for the direct solver and for tests).
  std::vector<double> to_dense() const;

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<double> values_;
};

}  // namespace choreo::ctmc
