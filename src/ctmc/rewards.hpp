// Reward structures over CTMC solutions.
//
// Throughput (the paper's headline activity-diagram measure) is an impulse
// reward: the expected rate at which transitions of a chosen kind occur in
// steady state.  Steady-state probability of a predicate (the paper's
// state-diagram measure) is a state reward with a 0/1 reward vector.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "ctmc/generator.hpp"

namespace choreo::ctmc {

/// Expected value of a per-state reward under `distribution`.
double expectation(std::span<const double> distribution,
                   std::span<const double> reward);

/// Probability mass of the states selected by `predicate`.
double probability(std::span<const double> distribution,
                   const std::function<bool(std::size_t)>& predicate);

/// Throughput: sum over `transitions` of pi[source] * rate.  The caller
/// passes the subset of state-space transitions that carry the activity of
/// interest (the derivation modules provide per-action transition lists).
double throughput(std::span<const double> distribution,
                  const std::vector<RatedTransition>& transitions);

}  // namespace choreo::ctmc
