#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace choreo::ctmc {

namespace {

double log_poisson_pmf(std::size_t k, double mean) {
  return static_cast<double>(k) * std::log(mean) - mean -
         std::lgamma(static_cast<double>(k) + 1.0);
}

}  // namespace

TransientResult transient(const Generator& generator,
                          const std::vector<double>& initial, double t,
                          const TransientOptions& options) {
  const std::size_t n = generator.state_count();
  if (initial.size() != n) {
    throw util::NumericError("initial distribution size mismatch");
  }
  if (t < 0.0) throw util::NumericError("negative time in transient analysis");

  TransientResult result;
  if (t == 0.0 || generator.max_exit_rate() == 0.0) {
    result.distribution = initial;
    result.terms = 1;
    return result;
  }

  const double lambda = generator.max_exit_rate() * 1.02;
  const double mean = lambda * t;
  const CsrMatrix& qt = generator.matrix_transposed();

  // Choose the truncation point: walk right from the mode until the
  // cumulative mass reaches 1 - epsilon.
  const auto mode = static_cast<std::size_t>(mean);
  std::size_t k_max = mode;
  double cumulative = 0.0;
  for (std::size_t k = 0;; ++k) {
    cumulative += std::exp(log_poisson_pmf(k, mean));
    if (cumulative >= 1.0 - options.epsilon) {
      k_max = k;
      break;
    }
    // Far beyond the mode the pmf decays geometrically; this bound is only
    // a safety net against epsilon ~ 0.
    if (k > mode + 40 + 10 * static_cast<std::size_t>(std::sqrt(mean) + 1.0)) {
      k_max = k;
      break;
    }
  }

  std::vector<double> term = initial;   // pi(0) P^k
  std::vector<double> sum(n, 0.0);
  std::vector<double> flow(n, 0.0);
  for (std::size_t k = 0; k <= k_max; ++k) {
    if (options.budget != nullptr &&
        k % util::Budget::kSolverCheckStride == 0) {
      options.budget->charge_solver_iterations(std::min<std::size_t>(
          util::Budget::kSolverCheckStride, k_max - k + 1));
      options.budget->check("solve");
    }
    const double weight = std::exp(log_poisson_pmf(k, mean));
    for (std::size_t j = 0; j < n; ++j) sum[j] += weight * term[j];
    if (k == k_max) break;
    // term <- term P = term + (term Q) / lambda
    qt.multiply(term, flow, options.parallel);
    for (std::size_t j = 0; j < n; ++j) {
      term[j] = std::max(term[j] + flow[j] / lambda, 0.0);
    }
  }

  // Distribute the truncated tail mass proportionally (renormalise).
  double total = 0.0;
  for (double v : sum) total += v;
  if (total > 0.0) {
    for (double& v : sum) v /= total;
  }
  result.distribution = std::move(sum);
  result.terms = k_max + 1;
  return result;
}

TransientResult transient_from_state(const Generator& generator,
                                     std::size_t initial_state, double t,
                                     const TransientOptions& options) {
  std::vector<double> initial(generator.state_count(), 0.0);
  CHOREO_ASSERT(initial_state < generator.state_count());
  initial[initial_state] = 1.0;
  return transient(generator, initial, t, options);
}

}  // namespace choreo::ctmc
