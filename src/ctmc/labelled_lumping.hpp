// Action-labelled exact aggregation: PEPA strong equivalence.
//
// ctmc/lumping.hpp aggregates the bare chain; this module refines by
// *labelled* signatures -- two states are equivalent only when their total
// rate into every block agrees **per action type**.  This is PEPA's strong
// equivalence evaluated on the derived labelled transition system, and the
// quotient preserves not just the aggregated steady state but every
// per-action throughput, so all of Choreographer's reflected measures can
// be computed on the (often exponentially smaller) quotient.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ctmc/generator.hpp"

namespace choreo::ctmc {

/// A transition of a labelled transition system with rates.
struct LabelledTransition {
  std::size_t source;
  std::size_t target;
  std::uint32_t label;
  double rate;
};

struct LabelledLumping {
  std::vector<std::size_t> block_of;
  std::size_t block_count = 0;
  std::vector<std::size_t> representatives;
  /// The quotient LTS (labelled self-loops preserved: they carry
  /// throughput even though they do not move the chain).
  std::vector<LabelledTransition> quotient_transitions;

  /// Generator of the quotient chain.
  Generator quotient_generator() const;

  /// Throughput of `label` on the quotient under a quotient distribution.
  double throughput(const std::vector<double>& block_distribution,
                    std::uint32_t label) const;

  std::vector<double> aggregate(const std::vector<double>& distribution) const;
};

/// Coarsest strong-equivalence partition of an LTS with `state_count`
/// states, refining `initial_partition` (empty = trivial).
LabelledLumping compute_labelled_lumping(
    std::size_t state_count, const std::vector<LabelledTransition>& transitions,
    std::vector<std::size_t> initial_partition = {});

}  // namespace choreo::ctmc
