#include "uml/model.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace choreo::uml {

std::optional<std::string> TaggedValues::get(std::string_view tag) const {
  for (const auto& [name, value] : items_) {
    if (name == tag) return value;
  }
  return std::nullopt;
}

std::string TaggedValues::get_or(std::string_view tag,
                                 std::string_view fallback) const {
  if (auto value = get(tag)) return *value;
  return std::string(fallback);
}

void TaggedValues::set(std::string_view tag, std::string_view value) {
  for (auto& [name, existing] : items_) {
    if (name == tag) {
      existing = std::string(value);
      return;
    }
  }
  items_.emplace_back(std::string(tag), std::string(value));
}

double TaggedValues::get_double(std::string_view tag, double fallback) const {
  const auto text = get(tag);
  if (!text) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*text, &consumed);
    if (consumed != text->size()) throw std::invalid_argument(*text);
    return value;
  } catch (const std::exception&) {
    throw util::ModelError(util::msg("tagged value ", tag, " = '", *text,
                                     "' is not a number"));
  }
}

// --- ActivityGraph ----------------------------------------------------------

NodeId ActivityGraph::add_node(ActivityNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId ActivityGraph::add_initial() {
  ActivityNode node;
  node.kind = ActivityNode::Kind::kInitial;
  return add_node(std::move(node));
}

NodeId ActivityGraph::add_final() {
  ActivityNode node;
  node.kind = ActivityNode::Kind::kFinal;
  return add_node(std::move(node));
}

NodeId ActivityGraph::add_action(std::string name, double rate, bool is_move) {
  ActivityNode node;
  node.kind = ActivityNode::Kind::kAction;
  node.name = std::move(name);
  node.is_move = is_move;
  node.tags.set("rate", util::format_double(rate));
  return add_node(std::move(node));
}

NodeId ActivityGraph::add_decision(std::string name) {
  ActivityNode node;
  node.kind = ActivityNode::Kind::kDecision;
  node.name = std::move(name);
  return add_node(std::move(node));
}

ObjectNodeId ActivityGraph::add_object(std::string name, std::string class_name,
                                       std::string location,
                                       std::string state_mark) {
  ObjectBox box;
  box.name = std::move(name);
  box.class_name = std::move(class_name);
  box.state_mark = std::move(state_mark);
  if (!location.empty()) box.tags.set("atloc", location);
  objects_.push_back(std::move(box));
  return static_cast<ObjectNodeId>(objects_.size() - 1);
}

void ActivityGraph::add_control_flow(NodeId source, NodeId target) {
  CHOREO_ASSERT(source < nodes_.size() && target < nodes_.size());
  control_flows_.push_back({source, target});
}

void ActivityGraph::add_object_flow(NodeId action, ObjectNodeId object,
                                    bool into_action) {
  CHOREO_ASSERT(action < nodes_.size() && object < objects_.size());
  object_flows_.push_back({action, object, into_action});
}

NodeId ActivityGraph::initial_node() const {
  std::optional<NodeId> found;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == ActivityNode::Kind::kInitial) {
      if (found) {
        throw util::ModelError(util::msg("activity graph '", name_,
                                         "' has several initial nodes"));
      }
      found = id;
    }
  }
  if (!found) {
    throw util::ModelError(
        util::msg("activity graph '", name_, "' has no initial node"));
  }
  return *found;
}

std::vector<NodeId> ActivityGraph::successors(NodeId node) const {
  std::vector<NodeId> out;
  for (const ControlFlow& flow : control_flows_) {
    if (flow.source == node) out.push_back(flow.target);
  }
  return out;
}

std::vector<NodeId> ActivityGraph::predecessors(NodeId node) const {
  std::vector<NodeId> out;
  for (const ControlFlow& flow : control_flows_) {
    if (flow.target == node) out.push_back(flow.source);
  }
  return out;
}

std::vector<ObjectNodeId> ActivityGraph::inputs_of(NodeId action) const {
  std::vector<ObjectNodeId> out;
  for (const ObjectFlow& flow : object_flows_) {
    if (flow.action == action && flow.into_action) out.push_back(flow.object);
  }
  return out;
}

std::vector<ObjectNodeId> ActivityGraph::outputs_of(NodeId action) const {
  std::vector<ObjectNodeId> out;
  for (const ObjectFlow& flow : object_flows_) {
    if (flow.action == action && !flow.into_action) out.push_back(flow.object);
  }
  return out;
}

std::vector<std::string> ActivityGraph::object_names() const {
  std::vector<std::string> out;
  for (const ObjectBox& box : objects_) {
    if (std::find(out.begin(), out.end(), box.name) == out.end()) {
      out.push_back(box.name);
    }
  }
  return out;
}

std::vector<ObjectNodeId> ActivityGraph::boxes_of(
    std::string_view object_name) const {
  std::vector<ObjectNodeId> out;
  for (ObjectNodeId id = 0; id < objects_.size(); ++id) {
    if (objects_[id].name == object_name) out.push_back(id);
  }
  return out;
}

std::optional<NodeId> ActivityGraph::find_action(std::string_view name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == ActivityNode::Kind::kAction && nodes_[id].name == name) {
      return id;
    }
  }
  return std::nullopt;
}

void ActivityGraph::validate() const {
  (void)initial_node();  // throws when missing or duplicated
  std::unordered_set<std::string> action_names;
  for (const ActivityNode& node : nodes_) {
    if (node.kind != ActivityNode::Kind::kAction) continue;
    if (node.name.empty()) {
      throw util::ModelError(
          util::msg("activity graph '", name_, "' has an unnamed action state"));
    }
    if (!action_names.insert(node.name).second) {
      throw util::ModelError(util::msg(
          "activity graph '", name_, "' has two actions named '", node.name,
          "' (action names become PEPA activity types and must be unique)"));
    }
  }
  for (const ControlFlow& flow : control_flows_) {
    if (flow.source >= nodes_.size() || flow.target >= nodes_.size()) {
      throw util::ModelError(
          util::msg("activity graph '", name_, "' has a dangling control flow"));
    }
  }
  for (const ObjectFlow& flow : object_flows_) {
    if (flow.action >= nodes_.size() || flow.object >= objects_.size()) {
      throw util::ModelError(
          util::msg("activity graph '", name_, "' has a dangling object flow"));
    }
    if (nodes_[flow.action].kind != ActivityNode::Kind::kAction) {
      throw util::ModelError(util::msg("activity graph '", name_,
                                       "' attaches an object to a pseudo state"));
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const ActivityNode& node = nodes_[id];
    if (node.kind != ActivityNode::Kind::kAction || !node.is_move) continue;
    const auto inputs = inputs_of(id);
    const auto outputs = outputs_of(id);
    if (inputs.empty() || outputs.empty()) {
      throw util::ModelError(util::msg(
          "move activity '", node.name,
          "' needs object flows in and out (it relocates those objects)"));
    }
    for (ObjectNodeId in : inputs) {
      if (objects_[in].location().empty()) {
        throw util::ModelError(util::msg("move activity '", node.name,
                                         "' has an input object without atloc"));
      }
    }
    for (ObjectNodeId out : outputs) {
      if (objects_[out].location().empty()) {
        throw util::ModelError(util::msg("move activity '", node.name,
                                         "' has an output object without atloc"));
      }
    }
  }
}

// --- StateMachine -----------------------------------------------------------

StateId StateMachine::add_state(std::string name) {
  SimpleState state;
  state.name = std::move(name);
  states_.push_back(std::move(state));
  if (!initial_ && states_.size() == 1) initial_ = 0;
  return static_cast<StateId>(states_.size() - 1);
}

void StateMachine::add_transition(StateId source, StateId target,
                                  std::string action, double rate) {
  CHOREO_ASSERT(source < states_.size() && target < states_.size());
  transitions_.push_back({source, target, std::move(action), rate, false});
}

void StateMachine::add_passive_transition(StateId source, StateId target,
                                          std::string action, double weight) {
  CHOREO_ASSERT(source < states_.size() && target < states_.size());
  transitions_.push_back({source, target, std::move(action), weight, true});
}

void StateMachine::set_initial(StateId state) {
  CHOREO_ASSERT(state < states_.size());
  initial_ = state;
}

StateId StateMachine::initial_state() const {
  if (!initial_) {
    throw util::ModelError(
        util::msg("state machine '", name_, "' has no initial state"));
  }
  return *initial_;
}

std::optional<StateId> StateMachine::find_state(std::string_view name) const {
  for (StateId id = 0; id < states_.size(); ++id) {
    if (states_[id].name == name) return id;
  }
  return std::nullopt;
}

void StateMachine::validate() const {
  if (states_.empty()) {
    throw util::ModelError(util::msg("state machine '", name_, "' is empty"));
  }
  (void)initial_state();
  std::unordered_set<std::string> names;
  for (const SimpleState& state : states_) {
    if (state.name.empty()) {
      throw util::ModelError(
          util::msg("state machine '", name_, "' has an unnamed state"));
    }
    if (!names.insert(state.name).second) {
      throw util::ModelError(util::msg("state machine '", name_,
                                       "' has two states named '", state.name,
                                       "'"));
    }
  }
  for (const MachineTransition& t : transitions_) {
    if (t.source >= states_.size() || t.target >= states_.size()) {
      throw util::ModelError(
          util::msg("state machine '", name_, "' has a dangling transition"));
    }
    if (t.action.empty()) {
      throw util::ModelError(util::msg("state machine '", name_,
                                       "' has a transition without an action"));
    }
    if (!(t.rate > 0.0)) {
      throw util::ModelError(util::msg("state machine '", name_, "' transition '",
                                       t.action, "' needs a positive ",
                                       t.passive ? "weight" : "rate"));
    }
  }
}

// --- InteractionDiagram ------------------------------------------------------

void InteractionDiagram::add_lifeline(std::string context) {
  lifelines_.push_back(std::move(context));
}

void InteractionDiagram::add_message(std::string sender, std::string receiver,
                                     std::string action) {
  messages_.push_back({std::move(sender), std::move(receiver), std::move(action)});
}

bool InteractionDiagram::has_lifeline(std::string_view context) const {
  return std::find(lifelines_.begin(), lifelines_.end(), context) !=
         lifelines_.end();
}

void InteractionDiagram::validate() const {
  std::unordered_set<std::string> seen;
  for (const std::string& lifeline : lifelines_) {
    if (lifeline.empty()) {
      throw util::ModelError(
          util::msg("interaction '", name_, "' has an unnamed lifeline"));
    }
    if (!seen.insert(lifeline).second) {
      throw util::ModelError(util::msg("interaction '", name_,
                                       "' repeats lifeline '", lifeline, "'"));
    }
  }
  for (const Message& message : messages_) {
    if (!has_lifeline(message.sender) || !has_lifeline(message.receiver)) {
      throw util::ModelError(
          util::msg("interaction '", name_, "' message '", message.action,
                    "' references a missing lifeline"));
    }
    if (message.action.empty()) {
      throw util::ModelError(
          util::msg("interaction '", name_, "' has an unnamed message"));
    }
  }
}

// --- Model ------------------------------------------------------------------

ActivityGraph& Model::add_activity_graph(ActivityGraph graph) {
  activity_graphs_.push_back(std::move(graph));
  return activity_graphs_.back();
}

StateMachine& Model::add_state_machine(StateMachine machine) {
  state_machines_.push_back(std::move(machine));
  return state_machines_.back();
}

InteractionDiagram& Model::add_interaction(InteractionDiagram diagram) {
  interactions_.push_back(std::move(diagram));
  return interactions_.back();
}

void Model::validate() const {
  for (const ActivityGraph& graph : activity_graphs_) graph.validate();
  for (const StateMachine& machine : state_machines_) machine.validate();
  for (const InteractionDiagram& diagram : interactions_) diagram.validate();
}

}  // namespace choreo::uml
