// GraphViz (DOT) rendering of UML diagrams — a lightweight stand-in for
// the Poseidon diagram views, handy for inspecting models and reflected
// results (throughput / probability tags are drawn on the nodes).
#pragma once

#include <string>

#include "uml/model.hpp"

namespace choreo::uml {

/// Activity diagram: actions as boxes (moves shaded), pseudo states as the
/// usual dots/diamonds, object boxes as folders annotated with atloc.
std::string to_dot(const ActivityGraph& graph);

/// State diagram: rounded states with probability tags, rated transitions.
std::string to_dot(const StateMachine& machine);

/// Interaction diagram: lifelines as columns, messages as labelled arrows.
std::string to_dot(const InteractionDiagram& diagram);

}  // namespace choreo::uml
