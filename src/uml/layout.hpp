// The Poseidon pre/postprocessor pair of the paper's Figure 4.
//
// Drawing tools store diagram layout in tool-specific elements that are not
// part of the UML metamodel; a metadata repository rejects them.  The
// preprocessor splits a project document into (a) a metamodel-conforming
// XMI document and (b) the saved layout subtrees; after analysis the
// postprocessor merges the reflected XMI with the original layout so the
// user's diagram arrangement survives the round trip.
//
// Layout lives in top-level extension elements whose names are outside the
// UML namespace (conventionally <Poseidon.layout>, but any non-"XMI.*",
// non-"UML:*" top-level child is treated as tool data).
#pragma once

#include <vector>

#include "xml/dom.hpp"

namespace choreo::uml {

struct SplitProject {
  /// Metamodel-conforming document (tool elements removed).
  xml::Document model;
  /// The removed top-level tool/layout subtrees, in document order.
  std::vector<xml::Node> layout;
};

/// True for element names that belong to the XMI/UML metamodel.
bool is_metamodel_element(const xml::Node& node);

/// Splits a project document (Poseidon preprocessor).
SplitProject preprocess(const xml::Document& project);

/// Merges reflected model content with the original layout subtrees
/// (Poseidon postprocessor).  Layout nodes are re-appended to the root in
/// their original order.
xml::Document postprocess(const xml::Document& reflected,
                          const std::vector<xml::Node>& layout);

}  // namespace choreo::uml
