#include "uml/layout.hpp"

#include "util/strings.hpp"

namespace choreo::uml {

bool is_metamodel_element(const xml::Node& node) {
  if (!node.is_element()) return true;  // text/comments pass through
  return util::starts_with(node.name(), "XMI") ||
         util::starts_with(node.name(), "UML:");
}

SplitProject preprocess(const xml::Document& project) {
  SplitProject split;
  split.model = project;
  xml::Node& root = split.model.root();
  std::vector<xml::Node> kept;
  kept.reserve(root.children().size());
  for (xml::Node& child : root.children()) {
    if (is_metamodel_element(child)) {
      kept.push_back(std::move(child));
    } else {
      split.layout.push_back(std::move(child));
    }
  }
  root.children() = std::move(kept);
  return split;
}

xml::Document postprocess(const xml::Document& reflected,
                          const std::vector<xml::Node>& layout) {
  xml::Document merged = reflected;
  for (const xml::Node& node : layout) {
    merged.root().add_child(node);
  }
  return merged;
}

}  // namespace choreo::uml
