// The UML metamodel subset Choreographer consumes (UML 1.4 vocabulary, as
// in the paper's Poseidon/MDR pipeline):
//
//   - activity graphs with the Baumeister et al. mobility extensions:
//     action states (optionally stereotyped <<move>>), initial/final pseudo
//     states, decision diamonds, object flow states carrying an
//     "atloc = <location>" tagged value and a state marker (f, f*, f**...),
//     control flows between activities and object flows linking activities
//     to the object boxes they require/produce;
//   - state machines: named simple states with rated transitions (the
//     client/server diagrams of the paper's Section 5).
//
// Tagged values attach quantitative annotations: "rate" on action states
// and state-machine transitions (model input), "throughput" on action
// states and "probability" on simple states (reflected results).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace choreo::uml {

using NodeId = std::uint32_t;
using ObjectNodeId = std::uint32_t;
using StateId = std::uint32_t;

/// An ordered tag -> value map (order preserved for XMI round-trips).
class TaggedValues {
 public:
  std::optional<std::string> get(std::string_view tag) const;
  std::string get_or(std::string_view tag, std::string_view fallback) const;
  void set(std::string_view tag, std::string_view value);
  bool has(std::string_view tag) const { return get(tag).has_value(); }
  /// Parses the tag as a double; throws util::ModelError when malformed.
  double get_double(std::string_view tag, double fallback) const;
  const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

// --- activity graphs ------------------------------------------------------

struct ActivityNode {
  enum class Kind : std::uint8_t { kInitial, kFinal, kAction, kDecision };
  Kind kind = Kind::kAction;
  std::string name;  // action name; empty for pseudo states
  /// The <<move>> stereotype of the mobility notation.
  bool is_move = false;
  TaggedValues tags;  // "rate", "priority"; "throughput" after reflection
};

struct ControlFlow {
  NodeId source;
  NodeId target;
};

/// One object box (UML:ObjectFlowState): the object `name` of class
/// `class_name`, in the diagram state `state_mark` ("", "*", "**", ...),
/// located at the value of its "atloc" tag.
struct ObjectBox {
  std::string name;        // "f"
  std::string class_name;  // "FILE"
  std::string state_mark;  // "*", "**", ... (display only)
  TaggedValues tags;       // "atloc"
  std::string location() const { return tags.get_or("atloc", ""); }
};

/// Links an activity with an object box.  `into_action` distinguishes
/// object-flow direction: true = the box flows into the activity (the
/// object is required), false = the activity produces/updates the box.
struct ObjectFlow {
  NodeId action;
  ObjectNodeId object;
  bool into_action;
};

class ActivityGraph {
 public:
  explicit ActivityGraph(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  NodeId add_node(ActivityNode node);
  /// Convenience constructors.
  NodeId add_initial();
  NodeId add_final();
  NodeId add_action(std::string name, double rate, bool is_move = false);
  NodeId add_decision(std::string name = "");

  ObjectNodeId add_object(std::string name, std::string class_name,
                          std::string location, std::string state_mark = "");

  void add_control_flow(NodeId source, NodeId target);
  void add_object_flow(NodeId action, ObjectNodeId object, bool into_action);

  const std::vector<ActivityNode>& nodes() const noexcept { return nodes_; }
  std::vector<ActivityNode>& nodes() noexcept { return nodes_; }
  const std::vector<ControlFlow>& control_flows() const noexcept {
    return control_flows_;
  }
  const std::vector<ObjectBox>& objects() const noexcept { return objects_; }
  std::vector<ObjectBox>& objects() noexcept { return objects_; }
  const std::vector<ObjectFlow>& object_flows() const noexcept {
    return object_flows_;
  }

  /// The unique initial node; throws util::ModelError when absent.
  NodeId initial_node() const;
  std::vector<NodeId> successors(NodeId node) const;
  std::vector<NodeId> predecessors(NodeId node) const;
  /// Object boxes flowing into / out of an action.
  std::vector<ObjectNodeId> inputs_of(NodeId action) const;
  std::vector<ObjectNodeId> outputs_of(NodeId action) const;
  /// Distinct object names in diagram order.
  std::vector<std::string> object_names() const;
  /// Boxes of one object in diagram order.
  std::vector<ObjectNodeId> boxes_of(std::string_view object_name) const;
  /// Action node by name (first match).
  std::optional<NodeId> find_action(std::string_view name) const;

  /// Structural checks: one initial node, edges in range, move activities
  /// with object flows on both sides, no duplicate action names (they name
  /// PEPA activities).  Throws util::ModelError.
  void validate() const;

 private:
  std::string name_;
  std::vector<ActivityNode> nodes_;
  std::vector<ControlFlow> control_flows_;
  std::vector<ObjectBox> objects_;
  std::vector<ObjectFlow> object_flows_;
};

// --- state machines -------------------------------------------------------

struct SimpleState {
  std::string name;
  TaggedValues tags;  // "probability" after reflection
};

struct MachineTransition {
  StateId source;
  StateId target;
  std::string action;  // trigger/effect label, names the PEPA activity
  /// Rate of the exponential delay, or the weight when `passive` (the
  /// activity then only proceeds in cooperation with an active partner and
  /// is serialised as rate="infty" / "w*infty").
  double rate = 1.0;
  bool passive = false;
};

class StateMachine {
 public:
  explicit StateMachine(std::string name = "", std::string context = "")
      : name_(std::move(name)), context_(std::move(context)) {}

  const std::string& name() const noexcept { return name_; }
  /// The class whose behaviour this machine describes (e.g. "Client").
  const std::string& context() const noexcept { return context_; }

  StateId add_state(std::string name);
  void add_transition(StateId source, StateId target, std::string action,
                      double rate);
  /// A passive transition (rate set by the cooperating active partner).
  void add_passive_transition(StateId source, StateId target, std::string action,
                              double weight = 1.0);
  void set_initial(StateId state);

  const std::vector<SimpleState>& states() const noexcept { return states_; }
  std::vector<SimpleState>& states() noexcept { return states_; }
  const std::vector<MachineTransition>& transitions() const noexcept {
    return transitions_;
  }
  std::vector<MachineTransition>& transitions() noexcept { return transitions_; }
  StateId initial_state() const;
  std::optional<StateId> find_state(std::string_view name) const;

  /// Checks: non-empty, initial set, all states reachable appear in range,
  /// positive rates, unique state names.  Throws util::ModelError.
  void validate() const;

 private:
  std::string name_;
  std::string context_;
  std::vector<SimpleState> states_;
  std::vector<MachineTransition> transitions_;
  std::optional<StateId> initial_;
};

// --- interaction diagrams ---------------------------------------------------

/// One message of an interaction (sequence/collaboration) diagram: the
/// named action flows between two classifier roles (contexts).
struct Message {
  std::string sender;    // context (class) name, e.g. "Client"
  std::string receiver;  // context name, e.g. "Server"
  std::string action;    // activity name, e.g. "request"
};

/// An interaction diagram.  The paper's Section 6 proposes these as the
/// way to state explicitly which components cooperate; the state-machine
/// extractor uses them to restrict cooperation sets: two contexts that
/// both appear as lifelines of some diagram synchronise *only* on the
/// actions messaged between them.
class InteractionDiagram {
 public:
  explicit InteractionDiagram(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  void add_lifeline(std::string context);
  void add_message(std::string sender, std::string receiver, std::string action);

  const std::vector<std::string>& lifelines() const noexcept { return lifelines_; }
  const std::vector<Message>& messages() const noexcept { return messages_; }
  bool has_lifeline(std::string_view context) const;

  /// Checks lifelines are unique and messages reference them.
  void validate() const;

 private:
  std::string name_;
  std::vector<std::string> lifelines_;
  std::vector<Message> messages_;
};

// --- the model ------------------------------------------------------------

class Model {
 public:
  explicit Model(std::string name = "model") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  ActivityGraph& add_activity_graph(ActivityGraph graph);
  StateMachine& add_state_machine(StateMachine machine);
  InteractionDiagram& add_interaction(InteractionDiagram diagram);

  const std::vector<ActivityGraph>& activity_graphs() const noexcept {
    return activity_graphs_;
  }
  std::vector<ActivityGraph>& activity_graphs() noexcept {
    return activity_graphs_;
  }
  const std::vector<StateMachine>& state_machines() const noexcept {
    return state_machines_;
  }
  std::vector<StateMachine>& state_machines() noexcept {
    return state_machines_;
  }
  const std::vector<InteractionDiagram>& interactions() const noexcept {
    return interactions_;
  }

  void validate() const;

 private:
  std::string name_;
  std::vector<ActivityGraph> activity_graphs_;
  std::vector<StateMachine> state_machines_;
  std::vector<InteractionDiagram> interactions_;
};

}  // namespace choreo::uml
