#include "uml/dot.hpp"

#include <map>
#include <sstream>

namespace choreo::uml {

namespace {
std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const ActivityGraph& graph) {
  std::ostringstream out;
  out << "digraph activity {\n  rankdir=TB;\n";
  for (NodeId id = 0; id < graph.nodes().size(); ++id) {
    const ActivityNode& node = graph.nodes()[id];
    out << "  n" << id << " [";
    switch (node.kind) {
      case ActivityNode::Kind::kInitial:
        out << "shape=circle, style=filled, fillcolor=black, label=\"\","
               " width=0.2";
        break;
      case ActivityNode::Kind::kFinal:
        out << "shape=doublecircle, style=filled, fillcolor=black,"
               " label=\"\", width=0.15";
        break;
      case ActivityNode::Kind::kDecision:
        out << "shape=diamond, label=\"" << escape(node.name) << '"';
        break;
      case ActivityNode::Kind::kAction: {
        std::string label = node.name;
        if (node.is_move) label += "\\n<<move>>";
        if (const auto rate = node.tags.get("rate")) {
          label += "\\nrate=" + *rate;
        }
        if (const auto throughput = node.tags.get("throughput")) {
          label += "\\nthroughput=" + *throughput;
        }
        out << "shape=box, style=rounded";
        if (node.is_move) out << ", style=\"rounded,filled\", fillcolor=lightblue";
        out << ", label=\"" << escape(label) << '"';
        break;
      }
    }
    out << "];\n";
  }
  for (ObjectNodeId id = 0; id < graph.objects().size(); ++id) {
    const ObjectBox& box = graph.objects()[id];
    std::string label = box.name + box.state_mark + ": " + box.class_name;
    if (!box.location().empty()) label += "\\natloc=" + box.location();
    out << "  o" << id << " [shape=folder, label=\"" << escape(label)
        << "\"];\n";
  }
  for (const ControlFlow& flow : graph.control_flows()) {
    out << "  n" << flow.source << " -> n" << flow.target << ";\n";
  }
  for (const ObjectFlow& flow : graph.object_flows()) {
    if (flow.into_action) {
      out << "  o" << flow.object << " -> n" << flow.action
          << " [style=dashed];\n";
    } else {
      out << "  n" << flow.action << " -> o" << flow.object
          << " [style=dashed];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const StateMachine& machine) {
  std::ostringstream out;
  out << "digraph statemachine {\n  rankdir=LR;\n"
      << "  init [shape=point];\n";
  for (StateId id = 0; id < machine.states().size(); ++id) {
    const SimpleState& state = machine.states()[id];
    std::string label = state.name;
    if (const auto probability = state.tags.get("probability")) {
      label += "\\nP=" + *probability;
    }
    out << "  s" << id << " [shape=box, style=rounded, label=\""
        << escape(label) << "\"];\n";
  }
  out << "  init -> s" << machine.initial_state() << ";\n";
  for (const MachineTransition& t : machine.transitions()) {
    out << "  s" << t.source << " -> s" << t.target << " [label=\""
        << escape(t.action) << " / "
        << (t.passive ? (t.rate == 1.0 ? std::string("infty")
                                       : std::to_string(t.rate) + "*infty")
                      : std::to_string(t.rate))
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const InteractionDiagram& diagram) {
  std::ostringstream out;
  out << "digraph interaction {\n  rankdir=LR;\n"
      << "  node [shape=box, style=filled, fillcolor=lightyellow];\n";
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < diagram.lifelines().size(); ++i) {
    index[diagram.lifelines()[i]] = i;
    out << "  l" << i << " [label=\"" << escape(diagram.lifelines()[i])
        << "\"];\n";
  }
  for (const Message& message : diagram.messages()) {
    out << "  l" << index.at(message.sender) << " -> l"
        << index.at(message.receiver) << " [label=\"" << escape(message.action)
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace choreo::uml
