#include "uml/xmi.hpp"

#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "xml/parse.hpp"
#include "xml/query.hpp"
#include "xml/write.hpp"

namespace choreo::uml {

namespace {

void write_tags(xml::Node& element, const TaggedValues& tags) {
  for (const auto& [tag, value] : tags.items()) {
    element.add_element("UML:TaggedValue")
        .set_attr("tag", tag)
        .set_attr("value", value);
  }
}

TaggedValues read_tags(const xml::Node& element) {
  TaggedValues tags;
  for (const xml::Node* tagged : element.find_children("UML:TaggedValue")) {
    const auto tag = tagged->attr("tag");
    const auto value = tagged->attr("value");
    if (!tag || !value) {
      throw util::ModelError("UML:TaggedValue needs 'tag' and 'value'");
    }
    tags.set(*tag, *value);
  }
  return tags;
}

std::string node_id(std::string_view prefix, std::size_t index) {
  return util::msg(prefix, index);
}

void write_activity_graph(xml::Node& parent, const ActivityGraph& graph) {
  xml::Node& element = parent.add_element("UML:ActivityGraph");
  element.set_attr("name", graph.name());
  for (NodeId id = 0; id < graph.nodes().size(); ++id) {
    const ActivityNode& node = graph.nodes()[id];
    switch (node.kind) {
      case ActivityNode::Kind::kInitial: {
        element.add_element("UML:PseudoState")
            .set_attr("xmi.id", node_id("n", id))
            .set_attr("kind", "initial");
        break;
      }
      case ActivityNode::Kind::kFinal: {
        element.add_element("UML:FinalState").set_attr("xmi.id", node_id("n", id));
        break;
      }
      case ActivityNode::Kind::kDecision: {
        xml::Node& state = element.add_element("UML:PseudoState");
        state.set_attr("xmi.id", node_id("n", id)).set_attr("kind", "junction");
        if (!node.name.empty()) state.set_attr("name", node.name);
        break;
      }
      case ActivityNode::Kind::kAction: {
        xml::Node& state = element.add_element("UML:ActionState");
        state.set_attr("xmi.id", node_id("n", id)).set_attr("name", node.name);
        if (node.is_move) {
          state.add_element("UML:Stereotype").set_attr("name", "move");
        }
        write_tags(state, node.tags);
        break;
      }
    }
  }
  for (ObjectNodeId id = 0; id < graph.objects().size(); ++id) {
    const ObjectBox& box = graph.objects()[id];
    xml::Node& state = element.add_element("UML:ObjectFlowState");
    state.set_attr("xmi.id", node_id("o", id))
        .set_attr("name", box.name)
        .set_attr("classifier", box.class_name);
    if (!box.state_mark.empty()) state.set_attr("state", box.state_mark);
    write_tags(state, box.tags);
  }
  for (const ControlFlow& flow : graph.control_flows()) {
    element.add_element("UML:Transition")
        .set_attr("source", node_id("n", flow.source))
        .set_attr("target", node_id("n", flow.target));
  }
  for (const ObjectFlow& flow : graph.object_flows()) {
    xml::Node& edge = element.add_element("UML:ObjectFlow");
    if (flow.into_action) {
      edge.set_attr("source", node_id("o", flow.object))
          .set_attr("target", node_id("n", flow.action));
    } else {
      edge.set_attr("source", node_id("n", flow.action))
          .set_attr("target", node_id("o", flow.object));
    }
  }
}

void write_state_machine(xml::Node& parent, const StateMachine& machine) {
  xml::Node& element = parent.add_element("UML:StateMachine");
  element.set_attr("name", machine.name());
  if (!machine.context().empty()) element.set_attr("context", machine.context());
  for (StateId id = 0; id < machine.states().size(); ++id) {
    const SimpleState& state = machine.states()[id];
    xml::Node& node = element.add_element("UML:SimpleState");
    node.set_attr("xmi.id", node_id("s", id)).set_attr("name", state.name);
    write_tags(node, state.tags);
  }
  element.add_element("UML:Pseudostate")
      .set_attr("kind", "initial")
      .set_attr("target", node_id("s", machine.initial_state()));
  for (const MachineTransition& t : machine.transitions()) {
    std::string rate_text;
    if (t.passive) {
      rate_text = t.rate == 1.0 ? "infty"
                                : util::format_double(t.rate) + "*infty";
    } else {
      rate_text = util::format_double(t.rate);
    }
    element.add_element("UML:Transition")
        .set_attr("source", node_id("s", t.source))
        .set_attr("target", node_id("s", t.target))
        .set_attr("trigger", t.action)
        .set_attr("rate", rate_text);
  }
}

void write_interaction(xml::Node& parent, const InteractionDiagram& diagram) {
  xml::Node& element = parent.add_element("UML:Collaboration");
  element.set_attr("name", diagram.name());
  std::unordered_map<std::string, std::string> role_id;
  for (std::size_t i = 0; i < diagram.lifelines().size(); ++i) {
    const std::string id = node_id("l", i);
    role_id[diagram.lifelines()[i]] = id;
    element.add_element("UML:ClassifierRole")
        .set_attr("xmi.id", id)
        .set_attr("base", diagram.lifelines()[i]);
  }
  for (const Message& message : diagram.messages()) {
    element.add_element("UML:Message")
        .set_attr("sender", role_id.at(message.sender))
        .set_attr("receiver", role_id.at(message.receiver))
        .set_attr("action", message.action);
  }
}

// --- reading ---------------------------------------------------------------

std::string require_attr(const xml::Node& node, std::string_view name) {
  const auto value = node.attr(name);
  if (!value) {
    throw util::ModelError(
        util::msg("<", node.name(), "> is missing attribute '", name, "'"));
  }
  return *value;
}

ActivityGraph read_activity_graph(const xml::Node& element) {
  ActivityGraph graph(element.attr_or("name", ""));
  std::unordered_map<std::string, NodeId> node_by_id;
  std::unordered_map<std::string, ObjectNodeId> object_by_id;

  for (const xml::Node* child : element.element_children()) {
    if (child->name() == "UML:PseudoState") {
      const std::string kind = child->attr_or("kind", "initial");
      ActivityNode node;
      if (kind == "initial") {
        node.kind = ActivityNode::Kind::kInitial;
      } else if (kind == "junction" || kind == "choice") {
        node.kind = ActivityNode::Kind::kDecision;
        node.name = child->attr_or("name", "");
      } else {
        throw util::ModelError(
            util::msg("unsupported UML:PseudoState kind '", kind, "'"));
      }
      node_by_id[require_attr(*child, "xmi.id")] = graph.add_node(std::move(node));
    } else if (child->name() == "UML:FinalState") {
      node_by_id[require_attr(*child, "xmi.id")] = graph.add_final();
    } else if (child->name() == "UML:ActionState") {
      ActivityNode node;
      node.kind = ActivityNode::Kind::kAction;
      node.name = require_attr(*child, "name");
      node.tags = read_tags(*child);
      for (const xml::Node* stereotype : child->find_children("UML:Stereotype")) {
        node.is_move = node.is_move || stereotype->attr_or("name", "") == "move";
      }
      node_by_id[require_attr(*child, "xmi.id")] = graph.add_node(std::move(node));
    } else if (child->name() == "UML:ObjectFlowState") {
      ObjectBox box;
      box.name = require_attr(*child, "name");
      box.class_name = child->attr_or("classifier", "");
      box.state_mark = child->attr_or("state", "");
      box.tags = read_tags(*child);
      const ObjectNodeId id =
          graph.add_object(box.name, box.class_name, "", box.state_mark);
      // add_object assembled fresh tags; overwrite with the parsed ones so
      // atloc and any custom tags survive.
      graph.objects()[id].tags = box.tags;
      object_by_id[require_attr(*child, "xmi.id")] = id;
    }
  }
  for (const xml::Node* child : element.element_children()) {
    if (child->name() == "UML:Transition") {
      const std::string source = require_attr(*child, "source");
      const std::string target = require_attr(*child, "target");
      if (!node_by_id.count(source) || !node_by_id.count(target)) {
        throw util::ModelError(util::msg("control flow ", source, " -> ", target,
                                         " references unknown nodes"));
      }
      graph.add_control_flow(node_by_id[source], node_by_id[target]);
    } else if (child->name() == "UML:ObjectFlow") {
      const std::string source = require_attr(*child, "source");
      const std::string target = require_attr(*child, "target");
      if (object_by_id.count(source) && node_by_id.count(target)) {
        graph.add_object_flow(node_by_id[target], object_by_id[source], true);
      } else if (node_by_id.count(source) && object_by_id.count(target)) {
        graph.add_object_flow(node_by_id[source], object_by_id[target], false);
      } else {
        throw util::ModelError(util::msg("object flow ", source, " -> ", target,
                                         " must link an object and an action"));
      }
    }
  }
  return graph;
}

StateMachine read_state_machine(const xml::Node& element) {
  StateMachine machine(element.attr_or("name", ""), element.attr_or("context", ""));
  std::unordered_map<std::string, StateId> state_by_id;
  for (const xml::Node* child : element.find_children("UML:SimpleState")) {
    const StateId id = machine.add_state(require_attr(*child, "name"));
    machine.states()[id].tags = read_tags(*child);
    state_by_id[require_attr(*child, "xmi.id")] = id;
  }
  for (const xml::Node* child : element.find_children("UML:Pseudostate")) {
    if (child->attr_or("kind", "") != "initial") continue;
    const std::string target = require_attr(*child, "target");
    if (!state_by_id.count(target)) {
      throw util::ModelError(
          util::msg("initial pseudostate targets unknown state '", target, "'"));
    }
    machine.set_initial(state_by_id[target]);
  }
  for (const xml::Node* child : element.find_children("UML:Transition")) {
    const std::string source = require_attr(*child, "source");
    const std::string target = require_attr(*child, "target");
    if (!state_by_id.count(source) || !state_by_id.count(target)) {
      throw util::ModelError(util::msg("transition ", source, " -> ", target,
                                       " references unknown states"));
    }
    double rate = 1.0;
    bool passive = false;
    if (auto text = child->attr("rate")) {
      // "infty", "T" or "w*infty" mark a passive transition.
      std::string value = *text;
      if (value == "infty" || value == "T") {
        passive = true;
        value.clear();
      } else if (const auto star = value.find("*infty");
                 star != std::string::npos && star + 6 == value.size()) {
        passive = true;
        value = value.substr(0, star);
      }
      if (!passive || !value.empty()) {
        try {
          std::size_t consumed = 0;
          rate = std::stod(passive ? value : *text, &consumed);
        } catch (const std::exception&) {
          throw util::ModelError(util::msg("malformed rate '", *text, "'"));
        }
      }
    }
    if (passive) {
      machine.add_passive_transition(state_by_id[source], state_by_id[target],
                                     child->attr_or("trigger", ""), rate);
    } else {
      machine.add_transition(state_by_id[source], state_by_id[target],
                             child->attr_or("trigger", ""), rate);
    }
  }
  return machine;
}

InteractionDiagram read_interaction(const xml::Node& element) {
  InteractionDiagram diagram(element.attr_or("name", ""));
  std::unordered_map<std::string, std::string> base_of;
  for (const xml::Node* child : element.find_children("UML:ClassifierRole")) {
    const std::string base = require_attr(*child, "base");
    base_of[require_attr(*child, "xmi.id")] = base;
    diagram.add_lifeline(base);
  }
  for (const xml::Node* child : element.find_children("UML:Message")) {
    const std::string sender = require_attr(*child, "sender");
    const std::string receiver = require_attr(*child, "receiver");
    if (!base_of.count(sender) || !base_of.count(receiver)) {
      throw util::ModelError(util::msg("message '",
                                       child->attr_or("action", "?"),
                                       "' references unknown classifier roles"));
    }
    diagram.add_message(base_of[sender], base_of[receiver],
                        require_attr(*child, "action"));
  }
  return diagram;
}

}  // namespace

xml::Document to_xmi(const Model& model) {
  xml::Node root = xml::Node::element("XMI");
  root.set_attr("xmi.version", "1.2");
  root.set_attr("xmlns:UML", "org.omg.xmi.namespace.UML");
  xml::Node& content = root.add_element("XMI.content");
  xml::Node& uml_model = content.add_element("UML:Model");
  uml_model.set_attr("name", model.name());
  for (const ActivityGraph& graph : model.activity_graphs()) {
    write_activity_graph(uml_model, graph);
  }
  for (const StateMachine& machine : model.state_machines()) {
    write_state_machine(uml_model, machine);
  }
  for (const InteractionDiagram& diagram : model.interactions()) {
    write_interaction(uml_model, diagram);
  }
  return xml::Document(std::move(root));
}

Model from_xmi(const xml::Document& document) {
  if (document.root().name() != "XMI") {
    throw util::ModelError("not an XMI document (root element is not <XMI>)");
  }
  const xml::Node& uml_model =
      xml::require_first(document.root(), "XMI.content/UML:Model");
  Model model(uml_model.attr_or("name", "model"));
  for (const xml::Node* child : uml_model.element_children()) {
    if (child->name() == "UML:ActivityGraph") {
      model.add_activity_graph(read_activity_graph(*child));
    } else if (child->name() == "UML:StateMachine") {
      model.add_state_machine(read_state_machine(*child));
    } else if (child->name() == "UML:Collaboration") {
      model.add_interaction(read_interaction(*child));
    }
  }
  model.validate();
  return model;
}

void write_xmi_file(const Model& model, const std::string& path) {
  xml::write_file(to_xmi(model), path);
}

Model read_xmi_file(const std::string& path) {
  return from_xmi(xml::parse_file(path));
}

}  // namespace choreo::uml
