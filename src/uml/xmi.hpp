// XMI serialisation of the UML metamodel subset.
//
// The dialect follows the XMI 1.2 / UML 1.4 element vocabulary the paper's
// toolchain exchanged with Poseidon:
//
//   <XMI xmi.version="1.2">
//     <XMI.content>
//       <UML:Model name="...">
//         <UML:ActivityGraph name="...">
//           <UML:PseudoState xmi.id="n0" kind="initial"/>
//           <UML:ActionState xmi.id="n1" name="download_file">
//             <UML:Stereotype name="move"/>           (moves only)
//             <UML:TaggedValue tag="rate" value="2.0"/>
//           </UML:ActionState>
//           <UML:PseudoState xmi.id="n2" kind="junction" name="ok?"/>
//           <UML:FinalState xmi.id="n3"/>
//           <UML:ObjectFlowState xmi.id="o0" name="f" classifier="FILE"
//                                state="*">
//             <UML:TaggedValue tag="atloc" value="p1"/>
//           </UML:ObjectFlowState>
//           <UML:Transition source="n0" target="n1"/> (control flow)
//           <UML:ObjectFlow  source="o0" target="n1"/> (object flow)
//         </UML:ActivityGraph>
//         <UML:StateMachine name="..." context="Client">
//           <UML:SimpleState xmi.id="s0" name="GenerateRequest"/>
//           <UML:Pseudostate kind="initial" target="s0"/>
//           <UML:Transition source="s0" target="s1" trigger="request"
//                           rate="2.0"/>
//         </UML:StateMachine>
//       </UML:Model>
//     </XMI.content>
//   </XMI>
//
// Elements outside the UML metamodel (e.g. <Poseidon.layout>) are ignored
// by the reader; layout.hpp handles them explicitly (the Figure-4
// pre/postprocessor pipeline).
#pragma once

#include <string>

#include "uml/model.hpp"
#include "xml/dom.hpp"

namespace choreo::uml {

/// Serialises the model to an XMI document.
xml::Document to_xmi(const Model& model);

/// Parses an XMI document into the metamodel; validates the result.
/// Throws util::ModelError / util::Error on malformed content.
Model from_xmi(const xml::Document& document);

/// File-level conveniences.
void write_xmi_file(const Model& model, const std::string& path);
Model read_xmi_file(const std::string& path);

}  // namespace choreo::uml
