// Unit tests for the PEPA structured operational semantics: apparent rates
// and one-step derivatives, including the cooperation apparent-rate law.
#include <gtest/gtest.h>

#include <algorithm>

#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "util/error.hpp"

namespace cp = choreo::pepa;
namespace cu = choreo::util;

namespace {

/// Total rate of derivatives of `term` carrying `action`.
double total_rate(cp::Semantics& semantics, cp::ProcessId term,
                  const std::string& action) {
  const auto id = semantics.arena().find_action(action);
  if (!id) return 0.0;
  double sum = 0.0;
  for (const auto& d : semantics.derivatives(term)) {
    if (d.action == *id) sum += d.rate.value();
  }
  return sum;
}

std::size_t count_moves(cp::Semantics& semantics, cp::ProcessId term,
                        const std::string& action) {
  const auto id = semantics.arena().find_action(action);
  if (!id) return 0;
  return static_cast<std::size_t>(std::count_if(
      semantics.derivatives(term).begin(), semantics.derivatives(term).end(),
      [&](const cp::Derivative& d) { return d.action == *id; }));
}

}  // namespace

TEST(Semantics, PrefixHasSingleDerivative) {
  auto model = cp::parse_model("P = (a, 2.0).Stop;");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("P"));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 2.0);
  EXPECT_EQ(semantics.arena().node(moves[0].target).op, cp::Op::kStop);
}

TEST(Semantics, ChoiceOffersBothBranches) {
  auto model = cp::parse_model("P = (a, 1.0).Stop + (b, 2.0).Stop;");
  cp::Semantics semantics(model.arena());
  EXPECT_EQ(semantics.derivatives(model.term("P")).size(), 2u);
  EXPECT_DOUBLE_EQ(total_rate(semantics, model.term("P"), "a"), 1.0);
  EXPECT_DOUBLE_EQ(total_rate(semantics, model.term("P"), "b"), 2.0);
}

TEST(Semantics, ChoiceMultiplicityPreserved) {
  // Two syntactic copies of the same activity double the apparent rate.
  auto model = cp::parse_model("P = (a, 1.5).Stop + (a, 1.5).Stop;");
  cp::Semantics semantics(model.arena());
  EXPECT_EQ(count_moves(semantics, model.term("P"), "a"), 2u);
  const auto a = *model.arena().find_action("a");
  EXPECT_DOUBLE_EQ(semantics.apparent_rate(model.term("P"), a).value(), 3.0);
}

TEST(Semantics, ApparentRateOfFileModel) {
  auto model = cp::parse_model(R"(
    File      = (openread, 2.0).InStream + (openwrite, 4.0).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
  )");
  cp::Semantics semantics(model.arena());
  const auto file = model.term("File");
  EXPECT_DOUBLE_EQ(
      semantics.apparent_rate(file, *model.arena().find_action("openread")).value(),
      2.0);
  EXPECT_TRUE(
      semantics.apparent_rate(file, *model.arena().find_action("read")).is_zero());
}

TEST(Semantics, IndependentInterleaving) {
  auto model = cp::parse_model("P = (a, 1.0).Stop; S = P || P;");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("S"));
  // Both components move independently.
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_DOUBLE_EQ(total_rate(semantics, model.term("S"), "a"), 2.0);
}

TEST(Semantics, SynchronisedActionUsesMin) {
  auto model = cp::parse_model(R"(
    P = (a, 2.0).Stop;
    Q = (a, 5.0).Stop;
    S = P <a> Q;
  )");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("S"));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 2.0);
}

TEST(Semantics, SynchronisationBlocksLoneParticipant) {
  auto model = cp::parse_model(R"(
    P = (a, 2.0).Stop;
    S = P <a> Stop;
  )");
  cp::Semantics semantics(model.arena());
  EXPECT_TRUE(semantics.derivatives(model.term("S")).empty());
}

TEST(Semantics, PassiveTakesActivePartnerRate) {
  auto model = cp::parse_model(R"(
    P = (a, 3.0).Stop;
    Q = (a, infty).Stop;
    S = P <a> Q;
  )");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("S"));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_TRUE(moves[0].rate.is_active());
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 3.0);
}

TEST(Semantics, WeightedPassiveSplitsProportionally) {
  auto model = cp::parse_model(R"(
    P = (a, 6.0).Stop;
    Q = (a, infty).Q1 + (a, 2 * infty).Q2;
    Q1 = (b, 1.0).Q1;
    Q2 = (c, 1.0).Q2;
    S = P <a> Q;
  )");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("S"));
  ASSERT_EQ(moves.size(), 2u);
  // Weight-1 branch gets 1/3 of 6.0; weight-2 branch gets 2/3.
  double low = std::min(moves[0].rate.value(), moves[1].rate.value());
  double high = std::max(moves[0].rate.value(), moves[1].rate.value());
  EXPECT_DOUBLE_EQ(low, 2.0);
  EXPECT_DOUBLE_EQ(high, 4.0);
}

TEST(Semantics, CooperationApparentRateLaw) {
  // Left offers 'a' twice (rates 3, 3 -> apparent 6); right offers once
  // (rate 4).  Each pair runs at (3/6)*(4/4)*min(6,4) = 2, total 4.
  auto model = cp::parse_model(R"(
    P = (a, 3.0).P1 + (a, 3.0).P2;
    P1 = (x, 1.0).P1;
    P2 = (y, 1.0).P2;
    Q = (a, 4.0).Q;
    S = P <a> Q;
  )");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("S"));
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 2.0);
  EXPECT_DOUBLE_EQ(moves[1].rate.value(), 2.0);
  const auto a = *model.arena().find_action("a");
  EXPECT_DOUBLE_EQ(semantics.apparent_rate(model.term("S"), a).value(), 4.0);
}

TEST(Semantics, HidingRenamesToTau) {
  auto model = cp::parse_model("P = (a, 2.0).(b, 1.0).P; S = P/{a};");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("S"));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].action, cp::kTau);
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 2.0);
  // The hidden action's own apparent rate vanishes; tau carries it.
  const auto a = *model.arena().find_action("a");
  EXPECT_TRUE(semantics.apparent_rate(model.term("S"), a).is_zero());
  EXPECT_DOUBLE_EQ(semantics.apparent_rate(model.term("S"), cp::kTau).value(), 2.0);
}

TEST(Semantics, HidingPersistsThroughDerivation) {
  auto model = cp::parse_model("P = (a, 2.0).(b, 1.0).P; S = P/{b};");
  cp::Semantics semantics(model.arena());
  const auto& first = semantics.derivatives(model.term("S"));
  ASSERT_EQ(first.size(), 1u);
  const auto& second = semantics.derivatives(first[0].target);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].action, cp::kTau);  // b is still hidden after a step
}

TEST(Semantics, UnguardedRecursionDetected) {
  auto model = cp::parse_model("P = P + (a, 1.0).P;");
  cp::Semantics semantics(model.arena());
  EXPECT_THROW(semantics.derivatives(model.term("P")), cu::ModelError);
}

TEST(Semantics, MutualUnguardedRecursionDetected) {
  auto model = cp::parse_model("P = Q; Q = P;");
  cp::Semantics semantics(model.arena());
  EXPECT_THROW(semantics.derivatives(model.term("P")), cu::ModelError);
}

TEST(Semantics, MixedActivePassiveApparentRateRejected) {
  auto model = cp::parse_model("P = (a, 1.0).Stop + (a, infty).Stop; Q = (a, 1.0).Stop; S = P <a> Q;");
  cp::Semantics semantics(model.arena());
  EXPECT_THROW(semantics.derivatives(model.term("S")), cu::ModelError);
}

TEST(Semantics, InstantMessagePepaComponent) {
  // The paper's InstantMessage = (transmit, r_t).File token.
  auto model = cp::parse_model(R"(
    r_t = 0.7;
    File      = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
    InstantMessage = (transmit, r_t).File;
  )");
  cp::Semantics semantics(model.arena());
  const auto& moves = semantics.derivatives(model.term("InstantMessage"));
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 0.7);
  EXPECT_EQ(moves[0].target, model.term("File"));
}
