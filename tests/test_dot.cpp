// Tests for the GraphViz exports: well-formedness of the generated DOT
// (balanced braces, escaped labels, expected node/edge inventory) for
// derivation graphs, net structures, marking graphs and UML diagrams.
#include <gtest/gtest.h>

#include <algorithm>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "pepa/dot.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_dot.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/dot.hpp"

namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cm = choreo::uml;
namespace chor = choreo::chor;

namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

void expect_wellformed(const std::string& dot) {
  EXPECT_EQ(dot.substr(0, 7), "digraph");
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  EXPECT_EQ(dot.back(), '\n');
  // Every label is closed: quotes come in pairs (escaped ones excluded by
  // our writers never emitting raw quotes inside labels).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

}  // namespace

TEST(Dot, StateSpaceExport) {
  auto model = cp::parse_model(
      "On = (off, 2.0).Off; Off = (on, 3.0).On; @system On;");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const std::string dot = cp::to_dot(model.arena(), space);
  expect_wellformed(dot);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("off, 2"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);  // initial marked
  EXPECT_EQ(count_occurrences(dot, " -> "), 2u);
}

TEST(Dot, StateSpaceOptions) {
  auto model = cp::parse_model("P = (a, 1.0).P; @system P;");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  cp::DotOptions options;
  options.term_labels = false;
  options.rate_labels = false;
  options.mark_initial = false;
  const std::string dot = cp::to_dot(model.arena(), space, options);
  expect_wellformed(dot);
  EXPECT_EQ(dot.find("style=bold"), std::string::npos);
  EXPECT_EQ(dot.find(", 1\""), std::string::npos);
}

TEST(Dot, EscapesSpecialCharacters) {
  EXPECT_EQ(cp::dot_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(Dot, NetStructureExport) {
  auto extraction = chor::extract_activity_graph(
      chor::instant_message_model().activity_graphs()[0]);
  const std::string dot = cn::structure_to_dot(extraction.net);
  expect_wellformed(dot);
  EXPECT_EQ(count_occurrences(dot, "shape=ellipse"), 2u);  // two places
  EXPECT_EQ(count_occurrences(dot, "shape=box"), 2u);      // two firings
  EXPECT_NE(dot.find("transmit"), std::string::npos);
  EXPECT_NE(dot.find("prio 1"), std::string::npos);
}

TEST(Dot, MarkingGraphExport) {
  auto extraction = chor::extract_activity_graph(
      chor::instant_message_model().activity_graphs()[0]);
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const std::string dot = cn::marking_graph_to_dot(extraction.net, space);
  expect_wellformed(dot);
  // The m0 node declaration appears exactly once (edges into m0 also
  // contain "m0 [", hence the leading indent in the needle).
  EXPECT_EQ(count_occurrences(dot, "\n  m0 ["), 1u);
  // Firings are bold.
  EXPECT_GE(count_occurrences(dot, "style=bold"), 2u);
}

TEST(Dot, ActivityDiagramExport) {
  cm::Model model = chor::pda_handover_model();
  chor::analyse(model);  // reflected throughput tags appear in the labels
  const std::string dot = cm::to_dot(model.activity_graphs()[0]);
  expect_wellformed(dot);
  EXPECT_NE(dot.find("<<move>>"), std::string::npos);
  EXPECT_NE(dot.find("throughput="), std::string::npos);
  EXPECT_NE(dot.find("atloc=transmitter_1"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // object flows
}

TEST(Dot, StateMachineExport) {
  cm::Model model = chor::tomcat_model(false);
  chor::analyse(model);
  const std::string dot = cm::to_dot(model.state_machines()[0]);
  expect_wellformed(dot);
  EXPECT_NE(dot.find("WaitForResponse"), std::string::npos);
  EXPECT_NE(dot.find("P="), std::string::npos);       // reflected tag
  EXPECT_NE(dot.find("infty"), std::string::npos);    // passive response
  EXPECT_NE(dot.find("init -> s0"), std::string::npos);
}

TEST(Dot, InteractionDiagramExport) {
  cm::InteractionDiagram diagram("ab");
  diagram.add_lifeline("Client");
  diagram.add_lifeline("Server");
  diagram.add_message("Client", "Server", "request");
  diagram.add_message("Server", "Client", "response");
  const std::string dot = cm::to_dot(diagram);
  expect_wellformed(dot);
  EXPECT_NE(dot.find("l0 -> l1"), std::string::npos);
  EXPECT_NE(dot.find("l1 -> l0"), std::string::npos);
  EXPECT_NE(dot.find("request"), std::string::npos);
}
